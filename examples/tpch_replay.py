#!/usr/bin/env python
"""TPC-H replay study (the paper's Section 4.3, Figure 14), as a script.

Generates a scaled TPC-H-style warehouse, replays the 20 traceable queries
three ways — no updates, concurrent in-place updates, MaSM-cached updates —
and prints the normalized execution times side by side.

Run:  python examples/tpch_replay.py [scale]
"""

import sys

from repro.bench.figures import fig14_tpch_replay


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(f"generating TPC-H-style tables at scale {scale} "
          "(1.0 ~ a 1000x-shrunk SF 1) and replaying 20 queries...\n")
    result = fig14_tpch_replay.run(scale=scale)
    print(result.format())
    masm = result.series("MaSM updates")
    inplace = result.series("in-place updates")
    print(
        f"\nsummary: in-place slows queries {min(inplace):.2f}-"
        f"{max(inplace):.2f}x; MaSM stays within "
        f"{(max(masm) - 1) * 100:.1f}% of the no-update baseline while "
        "serving exactly as fresh data."
    )


if __name__ == "__main__":
    main()
