#!/usr/bin/env python
"""Quickstart: cache online updates on an SSD and query fresh data.

Builds a small warehouse table on a simulated disk, attaches a MaSM update
cache on a simulated SSD, streams updates while queries run, and finally
migrates everything back into the main data in place.

Run:  python examples/quickstart.py
"""

from repro import (
    GB,
    MB,
    MaSM,
    SimulatedDisk,
    SimulatedSSD,
    StorageVolume,
    build_synthetic_table,
)
from repro.storage import CpuMeter, OverlapWindow
from repro.util.units import fmt_bytes, fmt_time


def main() -> None:
    # --- a warehouse: table on disk, update cache on SSD --------------------
    cpu = CpuMeter()
    disk = SimulatedDisk(capacity=1 * GB)
    ssd = SimulatedSSD(capacity=8 * MB)
    disk_volume = StorageVolume(disk)
    ssd_volume = StorageVolume(ssd)

    table = build_synthetic_table(disk_volume, num_records=100_000, cpu=cpu)
    print(f"table: {table.row_count} records, {fmt_bytes(table.data_bytes)} on disk")

    masm = MaSM.masm_m(table, ssd_volume, cpu=cpu)
    print(
        f"MaSM-M: M={masm.params.M} pages, memory "
        f"{fmt_bytes(masm.params.total_memory_pages * masm.ssd_page_size)}, "
        f"SSD cache {fmt_bytes(masm.cache_bytes)}"
    )

    # --- online updates ------------------------------------------------------
    masm.insert((101, "a brand new record"))
    masm.modify(2000, {"payload": "patched online"})
    masm.delete(2002)
    print(f"\ncached {masm.stats.updates_ingested} updates "
          f"(buffer {fmt_bytes(masm.buffer.used_bytes)})")

    # --- a query sees all of it, immediately ---------------------------------
    window = OverlapWindow({"disk": disk, "ssd": ssd}, cpu)
    with window:
        rows = {r[0]: r for r in masm.range_scan(100, 2004)}
    print(f"\nrange scan [100, 2004] -> {len(rows)} records "
          f"in {fmt_time(window.elapsed)} (simulated)")
    print("  new record :", rows[101])
    print("  modified   :", rows[2000])
    print("  deleted    :", "gone" if 2002 not in rows else rows[2002])

    # --- the decoded-block cache serves repeated scans -----------------------
    masm.flush_buffer()  # materialize the buffer so the scan reads SSD blocks
    for _ in range(2):
        list(masm.range_scan(100, 2004))
    s = masm.stats
    print(f"\ndecoded-block cache: {s.block_cache_hits} hits, "
          f"{s.block_cache_misses} misses, {s.block_cache_evictions} evictions "
          f"(hit rate {s.block_cache_hit_rate:.0%}, "
          f"{s.blocks_decoded} blocks decoded)")

    # --- compare with a scan of the stale main data --------------------------
    stale = {r[0]: r for r in table.range_scan(100, 2004)}
    print(f"\nraw table still stale: 101 present={101 in stale}, "
          f"2000={stale[2000][1]!r}")

    # --- migrate in place -----------------------------------------------------
    before = disk.snapshot()
    masm.flush_buffer()
    masm.migrate()
    delta = disk.stats.delta(before)
    print(f"\nmigration rewrote the table in place: "
          f"{fmt_bytes(delta.bytes_read)} read, "
          f"{fmt_bytes(delta.bytes_written)} written, "
          f"{delta.rand_writes} random writes")
    fresh = {r[0]: r for r in table.range_scan(100, 2004)}
    print(f"main data now fresh: 101 present={101 in fresh}, "
          f"2000={fresh[2000][1]!r}, 2002 present={2002 in fresh}")
    print(f"\nSSD writes per update: {masm.stats.ssd_writes_per_update:.2f} "
          "(design goal: ~1.75 for MaSM-M)")


if __name__ == "__main__":
    main()
