#!/usr/bin/env python
"""Active data warehousing: 24/7 analytics with continuous online updates.

The scenario from the paper's introduction — a warehouse that can no longer
defer updates to a nightly window.  Two configurations run the same mixed
workload (continuous updates + periodic analysis scans):

* conventional in-place updates, which trash the scans; and
* MaSM, which caches updates on an SSD and merges them into scans.

The script reports per-query latency and the sustained update rate of each.

Run:  python examples/active_warehouse.py
"""

from repro import (
    GB,
    MB,
    InPlaceUpdater,
    MaSM,
    SimulatedDisk,
    SimulatedSSD,
    StorageVolume,
    build_synthetic_table,
)
from repro.baselines.inplace import interleaved_scan
from repro.core.masm import MaSMConfig
from repro.storage import CpuMeter, OverlapWindow
from repro.util.units import KB, fmt_time
from repro.workloads.synthetic import SyntheticUpdateGenerator

RECORDS = 150_000
QUERIES = 6
UPDATES_PER_CHUNK = 1.0  # online update arrival rate per 1MB of scan


def run_inplace() -> tuple[list[float], float]:
    disk = SimulatedDisk(capacity=1 * GB)
    volume = StorageVolume(disk)
    table = build_synthetic_table(volume, RECORDS)
    generator = SyntheticUpdateGenerator(RECORDS, seed=1)
    latencies = []
    applied_before = 0
    updater = InPlaceUpdater(table)
    total = OverlapWindow({"disk": disk})
    with total:
        for _ in range(QUERIES):
            window = OverlapWindow({"disk": disk})
            with window:
                for _ in interleaved_scan(
                    table,
                    *table.full_key_range(),
                    generator.stream(),
                    UPDATES_PER_CHUNK,
                    updater=updater,
                ):
                    pass
            latencies.append(window.elapsed)
    rate = updater.applied / total.elapsed if total.elapsed else 0.0
    return latencies, rate


def run_masm() -> tuple[list[float], float]:
    disk = SimulatedDisk(capacity=1 * GB)
    ssd = SimulatedSSD(capacity=16 * MB)
    cpu = CpuMeter()
    table = build_synthetic_table(StorageVolume(disk), RECORDS, cpu=cpu)
    config = MaSMConfig(
        alpha=1.0,
        ssd_page_size=8 * KB,
        block_size=8 * KB,
        cache_bytes=4 * MB,
        auto_migrate=True,
        migration_threshold=0.8,
    )
    masm = MaSM(table, StorageVolume(ssd), config=config, cpu=cpu)
    generator = SyntheticUpdateGenerator(RECORDS, seed=1, oracle=masm.oracle)
    latencies = []
    applied = 0
    total = OverlapWindow({"disk": disk, "ssd": ssd}, cpu)
    with total:
        for _ in range(QUERIES):
            # The same update volume arrives while each query runs; with
            # MaSM it lands in memory + SSD instead of the scanned disk.
            for update in generator.stream(1200):
                masm.apply(update)
                applied += 1
            window = OverlapWindow({"disk": disk, "ssd": ssd}, cpu)
            with window:
                for _ in masm.range_scan(*table.full_key_range()):
                    pass
            latencies.append(window.elapsed)
    rate = applied / total.elapsed if total.elapsed else 0.0
    return latencies, rate


def main() -> None:
    print(f"warehouse: {RECORDS} records; {QUERIES} full-table analysis "
          "queries with updates arriving continuously\n")

    inplace_lat, inplace_rate = run_inplace()
    masm_lat, masm_rate = run_masm()

    print(f"{'query':>6}  {'in-place':>12}  {'masm':>12}  {'speedup':>8}")
    for i, (a, b) in enumerate(zip(inplace_lat, masm_lat), 1):
        print(f"{i:>6}  {fmt_time(a):>12}  {fmt_time(b):>12}  {a / b:>7.2f}x")
    avg_in = sum(inplace_lat) / len(inplace_lat)
    avg_ms = sum(masm_lat) / len(masm_lat)
    print(f"{'avg':>6}  {fmt_time(avg_in):>12}  {fmt_time(avg_ms):>12}  "
          f"{avg_in / avg_ms:>7.2f}x")
    print(f"\nsustained update rate: in-place {inplace_rate:,.0f}/s vs "
          f"MaSM {masm_rate:,.0f}/s "
          f"({masm_rate / max(inplace_rate, 1e-9):.0f}x higher)")
    print("\nMaSM keeps analysis latency at the no-update level while "
          "absorbing orders of magnitude more updates (Figures 9 and 12).")


if __name__ == "__main__":
    main()
