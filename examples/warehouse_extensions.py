#!/usr/bin/env python
"""The Section 5 toolbox: a warehouse using every MaSM extension at once.

* a shared-nothing cluster of MaSM nodes (hash-partitioned);
* a secondary index that stays correct under cached updates;
* lazily maintained materialized views;
* coordinated migration (a query scan that migrates as it reads).

Run:  python examples/warehouse_extensions.py
"""

from repro import MB, SimulatedDisk, SimulatedSSD, StorageVolume
from repro.core.masm import MaSM, MaSMConfig
from repro.core.migration import CoordinatedMigration
from repro.core.secondary import SecondaryIndexManager
from repro.core.sharding import ShardedWarehouse
from repro.core.views import ViewCatalog
from repro.engine.record import Schema
from repro.engine.table import Table
from repro.util.units import KB, fmt_time

ORDERS = Schema([("o_id", "u32"), ("o_region", "u32"), ("o_total", "u32"), ("o_status", "s10")])


def sharded_cluster_demo() -> None:
    print("=== shared-nothing cluster (3 nodes, hash-partitioned) ===")
    warehouse = ShardedWarehouse(ORDERS, num_nodes=3, records_per_node=4000)
    warehouse.bulk_load(
        [(i, i % 7, (i * 37) % 10_000, "OPEN") for i in range(9000)]
    )
    print(f"rows per shard: {warehouse.shard_sizes()}")
    warehouse.modify(1234, {"o_status": "SHIPPED"})
    warehouse.insert((9500, 3, 42, "OPEN"))
    warehouse.delete(10)
    fresh = {r[0]: r for r in warehouse.range_scan(1230, 1240)}
    print(f"routed updates visible: order 1234 -> {fresh[1234][3]}")
    breakdown = warehouse.measure_scan(0, 10_000)
    serial = sum(breakdown.device_busy.values())
    print(
        f"fan-out full scan: {fmt_time(breakdown.elapsed)} parallel vs "
        f"{fmt_time(serial)} if serial ({serial / breakdown.elapsed:.1f}x)"
    )
    warehouse.migrate_all()
    print(f"after node-local migrations: caches empty = "
          f"{all(not n.masm.runs for n in warehouse.nodes)}\n")


def single_node() -> MaSM:
    disk_vol = StorageVolume(SimulatedDisk(capacity=256 * MB))
    ssd_vol = StorageVolume(SimulatedSSD(capacity=8 * MB))
    table = Table.create(disk_vol, "orders", ORDERS, 8000)
    table.bulk_load((i, i % 7, (i * 37) % 10_000, "OPEN") for i in range(8000))
    config = MaSMConfig(alpha=1.2, ssd_page_size=8 * KB, block_size=4 * KB,
                        auto_migrate=False)
    return MaSM(table, ssd_vol, config=config)


def secondary_index_demo(masm: MaSM) -> None:
    print("=== secondary index under cached updates ===")
    by_total = SecondaryIndexManager(masm, "o_total")
    masm.modify(100, {"o_total": 5})  # moves order 100 into the cheap bucket
    masm.insert((9100, 2, 3, "OPEN"))  # a cheap new order
    cheap = list(by_total.index_scan(0, 10))
    print(f"orders with o_total <= 10: {len(cheap)} "
          f"(includes modified #100: {any(r[0] == 100 for r in cheap)}, "
          f"inserted #9100: {any(r[0] == 9100 for r in cheap)})\n")


def views_demo(masm: MaSM) -> None:
    print("=== lazily maintained materialized views ===")
    catalog = ViewCatalog(masm)
    open_orders = catalog.define("open", predicate=lambda r: r[3] == "OPEN")
    big = catalog.define("big", predicate=lambda r: r[2] > 9000)
    print(f"initial refreshes: {catalog.maintain_all()} views built "
          f"(open={len(open_orders)}, big={len(big)})")
    masm.modify(200, {"o_status": "CANCELLED"})
    print(f"stale after an update: {catalog.stale_views()}")
    before = len(open_orders)
    rows = list(open_orders.read())  # lazy refresh on read
    print(f"read refreshed 'open': {before} -> {len(rows)} rows; "
          f"'big' still stale: {big.is_stale}\n")


def coordinated_migration_demo(masm: MaSM) -> None:
    print("=== coordinated migration (scan + migrate in one pass) ===")
    for i in range(0, 2000, 5):
        masm.modify(i, {"o_total": (i * 11) % 10_000})
    combined = CoordinatedMigration(masm)
    count = sum(1 for _ in combined)
    stats = combined.stats
    print(f"one pass returned {count} fresh rows AND migrated "
          f"{stats.updates_applied} updates "
          f"({stats.pages_written} pages rewritten in place); "
          f"cache now empty: {not masm.runs}")


def main() -> None:
    sharded_cluster_demo()
    masm = single_node()
    secondary_index_demo(masm)
    views_demo(masm)
    coordinated_migration_demo(masm)


if __name__ == "__main__":
    main()
