#!/usr/bin/env python
"""Explore MaSM-αM's memory-vs-SSD-writes trade-off (Sections 3.3-3.4).

For a chosen SSD cache size, sweeps alpha across its valid range and prints,
for each point: the memory footprint, the theoretical and measured SSD
writes per update, and the projected SSD lifetime at a given update rate —
everything a deployment needs to pick its spot on the spectrum.

Run:  python examples/tradeoff_explorer.py
"""

from repro import MB, SimulatedDisk, SimulatedSSD, StorageVolume, build_synthetic_table
from repro.core import theory
from repro.core.masm import MaSM, MaSMConfig
from repro.util.units import GB, KB, fmt_bytes
from repro.workloads.synthetic import SyntheticUpdateGenerator

CACHE = 4 * MB
SSD_PAGE = 8 * KB
RECORDS = 80_000


def measure(alpha: float) -> tuple[int, float]:
    disk_volume = StorageVolume(SimulatedDisk(capacity=256 * MB))
    ssd_volume = StorageVolume(SimulatedSSD(capacity=4 * CACHE))
    table = build_synthetic_table(disk_volume, RECORDS)
    config = MaSMConfig(
        alpha=alpha,
        ssd_page_size=SSD_PAGE,
        block_size=SSD_PAGE,
        cache_bytes=CACHE,
        auto_migrate=False,
    )
    masm = MaSM(table, ssd_volume, config=config)
    generator = SyntheticUpdateGenerator(RECORDS, seed=3, oracle=masm.oracle)
    # Worst-case pressure: a standing scan pins the query pages, periodic
    # scans trigger the run-budget merges.
    standing = masm.range_scan(0, 2)
    next(standing, None)
    target = int(masm.cache_bytes * 0.9)
    while masm.cached_run_bytes + masm.buffer.used_bytes < target:
        masm.apply(generator.next_update())
        if len(masm.runs) > masm.params.query_pages:
            for _ in masm.range_scan(0, 2):
                pass
    for _ in standing:
        pass
    memory = masm.params.total_memory_pages * SSD_PAGE
    return memory, masm.stats.ssd_writes_per_update


def main() -> None:
    pages = CACHE // SSD_PAGE
    import math

    M = math.isqrt(pages)
    lo = theory.alpha_lower_bound(M)
    print(f"SSD cache {fmt_bytes(CACHE)} = {pages} pages of "
          f"{fmt_bytes(SSD_PAGE)}; M = {M}; valid alpha in "
          f"[{lo:.2f}, 2.00]\n")
    header = (f"{'alpha':>5}  {'memory':>8}  {'theory w/u':>10}  "
              f"{'measured w/u':>12}  {'lifetime@20MB/s':>15}")
    print(header)
    print("-" * len(header))
    alphas = [max(lo, a) for a in (1.0, 1.2, 1.5, 1.75, 2.0)]
    for alpha in sorted(set(round(a, 3) for a in alphas)):
        memory, measured = measure(alpha)
        predicted = theory.masm_writes_per_update(alpha, M=M)
        years = theory.ssd_lifetime_years(
            32 * GB, 100_000, 20 * MB, max(measured, 0.01)
        )
        print(f"{alpha:>5.2f}  {fmt_bytes(memory):>8}  {predicted:>10.2f}  "
              f"{measured:>12.2f}  {years:>13.1f}y")
    print("\nReading the table: doubling alpha doubles the memory but cuts "
          "SSD writes toward 1 per update (Theorem 3.3), which directly "
          "extends the flash lifetime (Section 3.7).")


if __name__ == "__main__":
    main()
