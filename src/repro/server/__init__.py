"""Multi-tenant query serving over the MaSM engine.

The serving layer turns the single-caller :class:`ShardedWarehouse` into a
query *service*: a session manager drives thousands of simulated clients
(open-loop Poisson/bursty and closed-loop think-time) on one shared
:class:`SimClock`; a request router executes each admitted request under
exactly one snapshot timestamp via the key-range-partitioned fan-out/merge
executor; per-tenant token-bucket quotas decide, per request, between
ADMIT, DELAY (a reschedule interval — the event loop never blocks) and
SHED (a typed retryable :class:`~repro.errors.QuotaExceededError`).  All
outcomes land in ``repro.obs`` so every run exports per-tenant
p50/p99/p999 latency surfaces, queue depths and shed/delay counters.
"""

from repro.server.frontdoor import LATENCY_RESERVOIR, FrontDoor
from repro.server.health import (
    BreakerState,
    CircuitBreaker,
    FleetHealth,
    HedgePolicy,
    LatencyTracker,
    RepairQueue,
    ReplicaHealth,
)
from repro.server.quotas import QuotaPolicy, TenantAdmission, TenantQuota
from repro.server.router import (
    Deadline,
    DeadlineMode,
    DeadlinePolicy,
    FanoutOutcome,
    QueryRequest,
    QueryResult,
    ReplicatedBackend,
    RequestRouter,
    SingleEngineBackend,
    WarehouseBackend,
)
from repro.server.session import (
    ArrivalKind,
    ServingStats,
    SessionManager,
    SessionMode,
    SessionSpec,
)

__all__ = [
    "ArrivalKind",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "DeadlineMode",
    "DeadlinePolicy",
    "FanoutOutcome",
    "FleetHealth",
    "FrontDoor",
    "HedgePolicy",
    "LATENCY_RESERVOIR",
    "LatencyTracker",
    "QueryRequest",
    "QueryResult",
    "QuotaPolicy",
    "RepairQueue",
    "ReplicaHealth",
    "ReplicatedBackend",
    "RequestRouter",
    "ServingStats",
    "SessionManager",
    "SessionMode",
    "SessionSpec",
    "SingleEngineBackend",
    "TenantAdmission",
    "TenantQuota",
    "WarehouseBackend",
]
