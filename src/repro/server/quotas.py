"""Per-tenant admission quotas for the serving front door.

One :class:`~repro.core.governor.TokenBucket` per tenant meters queries the
same way the engine's :class:`~repro.core.governor.LoadGovernor` meters
updates — the difference is *where the wait happens*.  The governor's DELAY
blocks the updating caller on the shared clock; a query server cannot stall
its whole event loop for one tenant, so here DELAY is a *reschedule*: the
admission decision tells the session manager how long to park the request,
and only the parked request's own latency pays for it.  A tenant that keeps
arriving faster than its refill rate exhausts its per-request delay budget
and is shed with a typed, retryable :class:`~repro.errors.QuotaExceededError`
that carries ``retry_after``.

Every decision lands in the metrics registry under the front door's scope:
``<scope>.tenant.<name>.admitted / delayed / shed`` counters and a
``tokens`` gauge per tenant, so the noisy-neighbor driver can show exactly
which tenant absorbed the flood.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.governor import TokenBucket
from repro.errors import QuotaExceededError
from repro.obs import get_registry

#: ``retry_after`` jitter: the advertised backoff is the true token wait
#: stretched by up to this fraction, drawn from the admission table's
#: seeded RNG.  Shed closed-loop clients all learn the same ``wait`` from
#: the same empty bucket; without jitter they sleep in lockstep and return
#: as a synchronized herd that sheds again — the jitter de-phases them
#: deterministically (same seed, same spread).  Always >= the true wait,
#: so a client that honours ``retry_after`` finds a token accrued.
RETRY_JITTER_FRACTION = 1.0


class QuotaPolicy(enum.Enum):
    """What admission does with a request that finds the bucket empty."""

    #: Park the request until a token accrues (bounded per request by
    #: ``max_delay_seconds``); past the budget it is shed anyway.
    DELAY = "delay"
    #: Reject immediately with :class:`QuotaExceededError`.
    SHED = "shed"


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission contract.

    ``rate`` is the sustainable queries per simulated second; ``burst`` is
    the bucket depth (how many back-to-back requests a quiet tenant may
    fire before metering starts).
    """

    rate: float
    burst: float = 16.0
    policy: QuotaPolicy = QuotaPolicy.DELAY
    #: Total DELAY budget for one request; exceeding it sheds the request.
    max_delay_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"quota rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"quota burst must be >= 1, got {self.burst}")
        if self.max_delay_seconds < 0:
            raise ValueError(
                f"max_delay_seconds must be >= 0, got {self.max_delay_seconds}"
            )


class _TenantState:
    """Bucket plus instruments for one tenant (internal)."""

    __slots__ = ("quota", "bucket", "admitted", "delayed", "shed", "tokens")

    def __init__(self, scope: str, tenant: str, quota: TenantQuota, now: float):
        registry = get_registry()
        prefix = f"{scope}.tenant.{tenant}"
        self.quota = quota
        self.bucket = TokenBucket(quota.rate, quota.burst, now=now)
        self.admitted = registry.counter(f"{prefix}.admitted")
        self.delayed = registry.counter(f"{prefix}.delayed")
        self.shed = registry.counter(f"{prefix}.shed")
        self.tokens = registry.gauge(f"{prefix}.tokens")


class TenantAdmission:
    """Admission control over a set of tenant quotas.

    :meth:`decide` is the session manager's one entry point: ``0.0`` means
    the request is admitted (a token was consumed), a positive value is the
    reschedule wait under DELAY, and :class:`QuotaExceededError` means the
    request is shed.  Tenants without a quota are admitted unmetered.
    """

    def __init__(
        self,
        clock,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        scope: str = "server",
        seed: int = 0,
    ) -> None:
        self.clock = clock
        self.scope = scope
        self._tenants: Dict[str, _TenantState] = {}
        #: Deterministic jitter source for shed ``retry_after`` values.
        self._jitter_rng = random.Random(f"{seed}:retry-jitter")
        for tenant, quota in (quotas or {}).items():
            self.set_quota(tenant, quota)

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self._tenants[tenant] = _TenantState(
            self.scope, tenant, quota, self.clock.now
        )

    def quota_for(self, tenant: str) -> Optional[TenantQuota]:
        state = self._tenants.get(tenant)
        return state.quota if state is not None else None

    def decide(self, tenant: str, waited: float = 0.0) -> float:
        """Admit, reschedule, or shed one request for ``tenant``.

        ``waited`` is the DELAY time this request has already accumulated
        across earlier reschedules; the caller threads it back in on retry
        so the per-request delay budget is cumulative, not per attempt.
        """
        state = self._tenants.get(tenant)
        if state is None:
            return 0.0  # unmetered tenant
        now = self.clock.now
        if state.bucket.take(now):
            state.admitted.add(1)
            state.tokens.set(state.bucket.tokens)
            return 0.0
        wait = state.bucket.wait_needed(now)
        state.tokens.set(state.bucket.tokens)
        quota = state.quota
        if (
            quota.policy is QuotaPolicy.DELAY
            and waited + wait <= quota.max_delay_seconds
        ):
            state.delayed.add(1)
            return wait
        state.shed.add(1)
        retry_after = wait * (
            1.0 + RETRY_JITTER_FRACTION * self._jitter_rng.random()
        )
        raise QuotaExceededError(
            f"tenant {tenant!r} over quota ({quota.rate:g}/s, "
            f"policy={quota.policy.value}); retry after {retry_after:.6f}s",
            tenant=tenant,
            retry_after=retry_after,
        )

    def report(self) -> Dict[str, dict]:
        """JSON-ready per-tenant admission counters."""
        out: Dict[str, dict] = {}
        for tenant in sorted(self._tenants):
            state = self._tenants[tenant]
            out[tenant] = {
                "rate": state.quota.rate,
                "policy": state.quota.policy.value,
                "admitted": state.admitted.value,
                "delayed": state.delayed.value,
                "shed": state.shed.value,
                "tokens": state.bucket.tokens,
            }
        return out
