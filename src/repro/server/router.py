"""Request router: one snapshot timestamp, one fan-out/merge scan.

The router is the serving layer's only path into the engine.  Every request
draws exactly ONE timestamp from the global oracle and executes the whole
fan-out under it — however many key-range partitions, per-node scans,
hedged backups and failover retries the executor splits into, the request
observes a single committed prefix.  That single pinned timestamp is also
what makes failover and hedging *safe*: a backup replica scanned at the
same ``query_ts`` returns byte-identical rows, so retrying elsewhere can
never change an answer, only rescue it.

Backends adapt the engines the router can serve:

* :class:`WarehouseBackend` — a :class:`~repro.core.sharding.ShardedWarehouse`;
  scans ride the key-range-partitioned fan-out/merge executor, so each
  partition's inner merge uses the columnar kernel path of its node.
* :class:`ReplicatedBackend` — a
  :class:`~repro.core.replication.ReplicatedWarehouse`; adds per-partition
  hedged reads (after an EWMA-p95 delay, a backup replica is scanned under
  the same snapshot; first success wins, the loser is cancelled and
  counted), circuit-breaker-routed failover, and deadline-budgeted
  execution with per-tenant strict/degraded partial-result policies.
* :class:`SingleEngineBackend` — one bare :class:`~repro.core.masm.MaSM`;
  this is what the deterministic simulator serves through, so the serving
  code path interleaves with flush/migrate/crash actors under the model
  oracle.

Deadlines: a :class:`Deadline` is armed per request at dispatch and
threaded through the fan-out; it is checked at every partition boundary
and every :data:`DEADLINE_CHECK_STRIDE` rows inside a drain.  Under
:attr:`DeadlineMode.STRICT` an overrun raises the typed, retryable
:class:`~repro.errors.DeadlineExceededError`; under
:attr:`DeadlineMode.DEGRADED` the request returns the rows of every fully
covered key range plus the exact uncovered ranges, so the client knows
precisely what it did not see.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import (
    DeadlineExceededError,
    NoHealthyReplicaError,
    ReplicationError,
    StorageError,
)
from repro.obs import get_registry

#: Rows between deadline / hedge-delay re-checks inside one drain loop.
DEADLINE_CHECK_STRIDE = 64


@dataclass(frozen=True)
class QueryRequest:
    """One tenant range query as the session manager dispatches it."""

    tenant: str
    session: int
    seq: int
    begin_key: int
    end_key: int
    #: Simulated instant the request arrived at the front door (open-loop
    #: arrivals may be long before dispatch when the server is backlogged).
    arrival: float = 0.0


@dataclass(frozen=True)
class QueryResult:
    """The client-visible outcome of one executed query."""

    request: QueryRequest
    rows: int
    query_ts: int
    #: Dispatch start (after queueing and admission delays), simulated.
    started: float
    finished: float
    #: DEGRADED deadline policy only: True when the deadline expired before
    #: the fan-out covered the whole range; ``uncovered`` then lists the
    #: exact closed key ranges the result is missing.
    partial: bool = False
    uncovered: tuple = ()
    #: The returned records themselves, kept only when the router was built
    #: with ``keep_records=True`` (correctness oracles; rows stay a count
    #: in serving benchmarks to keep memory flat).
    records: Optional[tuple] = None

    @property
    def service_seconds(self) -> float:
        return self.finished - self.started

    @property
    def latency_seconds(self) -> float:
        """Arrival-to-completion: queueing + admission delay + service."""
        return self.finished - self.request.arrival


class DeadlineMode(enum.Enum):
    """What a deadline overrun does to the request."""

    #: Fail the whole request with :class:`DeadlineExceededError`.
    STRICT = "strict"
    #: Return what was fully covered, plus the uncovered key ranges.
    DEGRADED = "degraded"


@dataclass(frozen=True)
class DeadlinePolicy:
    """One tenant's end-to-end budget contract."""

    budget_seconds: float
    mode: DeadlineMode = DeadlineMode.STRICT

    def __post_init__(self) -> None:
        if self.budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be > 0, got {self.budget_seconds}"
            )


class Deadline:
    """A per-request budget armed on the shared simulated clock."""

    __slots__ = ("clock", "budget", "started")

    def __init__(self, clock, budget_seconds: float) -> None:
        self.clock = clock
        self.budget = budget_seconds
        self.started = clock.now

    @property
    def elapsed(self) -> float:
        return self.clock.now - self.started

    @property
    def remaining(self) -> float:
        return self.budget - self.elapsed

    @property
    def expired(self) -> bool:
        return self.elapsed > self.budget

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        elapsed = self.elapsed
        if elapsed > self.budget:
            raise DeadlineExceededError(
                f"deadline exceeded: {elapsed:.6f}s elapsed of "
                f"{self.budget:.6f}s budget",
                budget=self.budget,
                elapsed=elapsed,
            )


class WarehouseBackend:
    """Adapt a :class:`ShardedWarehouse` to the router's backend protocol."""

    def __init__(self, warehouse, blocks_per_partition: Optional[int] = None):
        if warehouse.clock is None:
            raise ValueError(
                "serving needs one timeline: build the ShardedWarehouse "
                "with a shared clock=SimClock()"
            )
        self.warehouse = warehouse
        self.clock = warehouse.clock
        self.blocks_per_partition = blocks_per_partition

    def snapshot_ts(self) -> int:
        return self.warehouse.oracle.next()

    def scan(self, begin_key: int, end_key: int, query_ts: int) -> Iterator[tuple]:
        if self.blocks_per_partition is None:
            return self.warehouse.partitioned_range_scan(
                begin_key, end_key, query_ts=query_ts
            )
        return self.warehouse.partitioned_range_scan(
            begin_key,
            end_key,
            blocks_per_partition=self.blocks_per_partition,
            query_ts=query_ts,
        )


class SingleEngineBackend:
    """Adapt one MaSM engine (the simulator's serving target)."""

    def __init__(self, masm) -> None:
        self.masm = masm
        self.clock = masm.ssd.device.clock

    def snapshot_ts(self) -> int:
        return self.masm.oracle.next()

    def scan(self, begin_key: int, end_key: int, query_ts: int) -> Iterator[tuple]:
        return self.masm.range_scan(begin_key, end_key, query_ts=query_ts)


@dataclass
class FanoutOutcome:
    """What one replicated fan-out produced (rows + per-request counters)."""

    records: list
    uncovered: list
    hedges: int = 0
    hedge_wins: int = 0
    hedge_losses: int = 0
    failovers: int = 0


class ReplicatedBackend:
    """Hedged, failover-routed fan-out over a :class:`ReplicatedWarehouse`.

    Scheduling unit: one (partition, shard) scan on one replica.  For each
    the executor asks :class:`~repro.server.health.FleetHealth` for the
    route order (primary first, open breakers last), drains the chosen
    replica, and

    * **fails over** on a typed replica error — the breaker records the
      failure and the next candidate is scanned under the same snapshot;
    * **hedges** when the drain outlives the replica's EWMA-p95 delay — a
      backup replica runs the same scan at the same ts; the first complete
      result wins and the loser is cancelled (its partial drain is simply
      abandoned; with one snapshot both answers were interchangeable);
    * **checks the deadline** at every partition boundary and drain stride.
    """

    def __init__(
        self,
        warehouse,
        health=None,
        blocks_per_partition: Optional[int] = None,
        scope: str = "server",
        repair_queue=None,
    ) -> None:
        from repro.server.health import FleetHealth

        self.warehouse = warehouse
        self.clock = warehouse.clock
        self.health = health if health is not None else FleetHealth(
            self.clock, scope=scope
        )
        self.blocks_per_partition = blocks_per_partition
        #: Optional :class:`~repro.server.health.RepairQueue`: typed scan
        #: failures and hedge-detected divergence drop a repair intent here
        #: instead of repairing inline (read-repair must not blow the
        #: request deadline).
        self.repair_queue = repair_queue
        registry = get_registry()
        self._obs_hedges = registry.counter(f"{scope}.hedges")
        self._obs_hedge_wins = registry.counter(f"{scope}.hedge_wins")
        self._obs_hedge_losses = registry.counter(f"{scope}.hedge_losses")
        self._obs_cancelled = registry.counter(f"{scope}.hedged_cancelled")
        self._obs_failovers = registry.counter(f"{scope}.read_failovers")
        self._obs_unavailable = registry.counter(f"{scope}.shard_unavailable")
        self._obs_divergence = registry.counter(f"{scope}.read_divergence")

    def _schedule_repair(self, shard_id: int, reason: str) -> None:
        if self.repair_queue is not None:
            self.repair_queue.schedule(shard_id, reason)

    def snapshot_ts(self) -> int:
        return self.warehouse.oracle.next()

    def scan(self, begin_key: int, end_key: int, query_ts: int) -> Iterator[tuple]:
        """Protocol-compatible plain scan (primary replicas, no hedging)."""
        outcome = self.fanout_scan(begin_key, end_key, query_ts)
        return iter(outcome.records)

    # ------------------------------------------------------------- execution
    def fanout_scan(
        self,
        begin_key: int,
        end_key: int,
        query_ts: int,
        deadline: Optional[Deadline] = None,
        strict: bool = True,
    ) -> FanoutOutcome:
        """Run the full hedged/failover fan-out; returns rows + counters.

        STRICT (``strict=True``): any deadline overrun or fully
        unavailable shard raises.  DEGRADED: the outcome carries the rows
        of every completed partition and the exact uncovered key ranges
        (a partition is all-or-nothing, so returned rows are never a
        partial, misleading slice of a key range).
        """
        bounds = self._bounds(begin_key, end_key)
        outcome = FanoutOutcome(records=[], uncovered=[])
        for index, (lo, hi) in enumerate(bounds):
            if deadline is not None and deadline.expired:
                if strict:
                    deadline.check()
                outcome.uncovered.extend(bounds[index:])
                break
            try:
                outcome.records.extend(
                    self._scan_partition(lo, hi, query_ts, deadline, outcome)
                )
            except DeadlineExceededError:
                if strict:
                    raise
                outcome.uncovered.extend(bounds[index:])
                break
            except NoHealthyReplicaError:
                self._obs_unavailable.add(1)
                if strict:
                    raise
                outcome.uncovered.append((lo, hi))
        return outcome

    def _bounds(self, begin_key: int, end_key: int) -> list:
        if self.blocks_per_partition is None:
            return self.warehouse.partition_bounds(begin_key, end_key)
        return self.warehouse.partition_bounds(
            begin_key, end_key, self.blocks_per_partition
        )

    def _scan_partition(
        self, lo: int, hi: int, query_ts: int, deadline, outcome: FanoutOutcome
    ) -> list:
        """One partition: every shard's rows, merged key-ordered."""
        per_shard = [
            self._scan_shard(shard_id, lo, hi, query_ts, deadline, outcome)
            for shard_id in range(self.warehouse.num_shards)
        ]
        return list(heapq.merge(*per_shard, key=self.warehouse.schema.key))

    def _scan_shard(
        self,
        shard_id: int,
        lo: int,
        hi: int,
        query_ts: int,
        deadline,
        outcome: FanoutOutcome,
    ) -> list:
        """One shard's rows for one partition, with failover + hedging."""
        primary_id, replica_ids = self.warehouse.shard_route_ids(shard_id)
        order = self.health.route_order(shard_id, primary_id, replica_ids)
        attempted = 0
        for replica_id in order:
            health = self.health.for_replica(shard_id, replica_id)
            if not health.allow():
                continue
            attempted += 1
            rows = self._attempt(
                shard_id, replica_id, lo, hi, query_ts, deadline, outcome
            )
            if rows is not None:
                return rows
            outcome.failovers += 1
            self._obs_failovers.add(1)
        if attempted == 0 and order:
            # Every breaker open: one last-resort attempt beats certain
            # failure, and its outcome feeds the breaker either way.
            rows = self._attempt(
                shard_id, order[0], lo, hi, query_ts, deadline, outcome
            )
            if rows is not None:
                return rows
        raise NoHealthyReplicaError(
            f"shard {shard_id}: no replica could serve [{lo}, {hi}] "
            f"at ts={query_ts}"
        )

    def _attempt(
        self,
        shard_id: int,
        replica_id: int,
        lo: int,
        hi: int,
        query_ts: int,
        deadline,
        outcome: FanoutOutcome,
    ) -> Optional[list]:
        """Drain one replica; hedge if slow.  None = typed failure."""
        health = self.health.for_replica(shard_id, replica_id)
        hedge_delay = self.health.hedge_delay(shard_id, replica_id)
        start = self.clock.now
        rows: list = []
        hedged = False
        try:
            stream = self.warehouse.scan_shard_partition(
                shard_id, lo, hi, query_ts, replica_id=replica_id
            )
            for row in stream:
                rows.append(row)
                if len(rows) % DEADLINE_CHECK_STRIDE:
                    continue
                if deadline is not None:
                    deadline.check()
                if (
                    not hedged
                    and hedge_delay is not None
                    and self.clock.now - start > hedge_delay
                ):
                    hedged = True
                    backup_rows = self._hedge(
                        shard_id, replica_id, lo, hi, query_ts, deadline, outcome
                    )
                    if backup_rows is not None:
                        # Backup won: cancel the primary drain (abandon its
                        # stream — same snapshot, interchangeable answers).
                        # Interchangeable means the abandoned prefix must be
                        # a prefix of the winner; disagreement is evidence
                        # of replica damage → schedule a read-repair.
                        if rows != backup_rows[: len(rows)]:
                            self._obs_divergence.add(1)
                            self._schedule_repair(shard_id, "hedge-divergence")
                        self._obs_cancelled.add(1)
                        return backup_rows
        except (StorageError, ReplicationError):
            health.failure()
            self._schedule_repair(shard_id, "scan-failure")
            return None
        except DeadlineExceededError:
            # Overruns count against the breaker too: a replica that keeps
            # blowing budgets is as useless as one that errors.
            health.failure()
            raise
        health.success(self.clock.now - start)
        return rows

    def _hedge(
        self,
        shard_id: int,
        serving_id: int,
        lo: int,
        hi: int,
        query_ts: int,
        deadline,
        outcome: FanoutOutcome,
    ) -> Optional[list]:
        """Issue the backup read; returns its rows, or None if it lost."""
        backup_id = self._pick_backup(shard_id, serving_id)
        if backup_id is None:
            return None
        outcome.hedges += 1
        self._obs_hedges.add(1)
        backup = self.health.for_replica(shard_id, backup_id)
        if not backup.allow():
            outcome.hedge_losses += 1
            self._obs_hedge_losses.add(1)
            return None
        start = self.clock.now
        rows: list = []
        try:
            stream = self.warehouse.scan_shard_partition(
                shard_id, lo, hi, query_ts, replica_id=backup_id
            )
            for row in stream:
                rows.append(row)
                if deadline is not None and not len(rows) % DEADLINE_CHECK_STRIDE:
                    deadline.check()
        except (StorageError, ReplicationError):
            backup.failure()
            self._schedule_repair(shard_id, "hedge-scan-failure")
            outcome.hedge_losses += 1
            self._obs_hedge_losses.add(1)
            return None
        backup.success(self.clock.now - start)
        outcome.hedge_wins += 1
        self._obs_hedge_wins.add(1)
        return rows

    def _pick_backup(self, shard_id: int, serving_id: int) -> Optional[int]:
        primary_id, replica_ids = self.warehouse.shard_route_ids(shard_id)
        for replica_id in self.health.route_order(
            shard_id, primary_id, replica_ids
        ):
            if replica_id == serving_id:
                continue
            if self.health.for_replica(shard_id, replica_id).would_allow():
                return replica_id
        return None


class RequestRouter:
    """Executes admitted requests against a backend, fully draining each.

    The router is deliberately synchronous: one request occupies the server
    between ``started`` and ``finished`` on the shared simulated timeline,
    which is exactly what makes queueing visible to open-loop sessions.
    """

    def __init__(
        self, backend, scope: str = "server", keep_records: bool = False
    ) -> None:
        self.backend = backend
        self.clock = backend.clock
        self.keep_records = keep_records
        registry = get_registry()
        self._requests = registry.counter(f"{scope}.requests")
        self._rows = registry.counter(f"{scope}.rows")
        self._service_hist = registry.histogram(f"{scope}.service_seconds")
        self._deadline_exceeded = registry.counter(f"{scope}.deadline_exceeded")
        self._partials = registry.counter(f"{scope}.partial_results")

    def execute(
        self,
        request: QueryRequest,
        deadline_policy: Optional[DeadlinePolicy] = None,
    ) -> QueryResult:
        """Run one query under one fresh snapshot timestamp."""
        started = self.clock.now
        query_ts = self.backend.snapshot_ts()
        deadline = (
            Deadline(self.clock, deadline_policy.budget_seconds)
            if deadline_policy is not None
            else None
        )
        strict = (
            deadline_policy is None
            or deadline_policy.mode is DeadlineMode.STRICT
        )
        try:
            if hasattr(self.backend, "fanout_scan"):
                records, uncovered = self._execute_fanout(
                    request, query_ts, deadline, strict
                )
            else:
                records, uncovered = self._execute_plain(
                    request, query_ts, deadline, strict
                )
        except DeadlineExceededError:
            self._deadline_exceeded.add(1)
            raise
        finished = self.clock.now
        partial = bool(uncovered)
        if partial:
            self._partials.add(1)
        self._requests.add(1)
        self._rows.add(len(records))
        self._service_hist.observe(finished - started)
        return QueryResult(
            request=request,
            rows=len(records),
            query_ts=query_ts,
            started=started,
            finished=finished,
            partial=partial,
            uncovered=tuple(uncovered),
            records=tuple(records) if self.keep_records else None,
        )

    def _execute_fanout(self, request, query_ts, deadline, strict):
        outcome = self.backend.fanout_scan(
            request.begin_key,
            request.end_key,
            query_ts,
            deadline=deadline,
            strict=strict,
        )
        return outcome.records, outcome.uncovered

    def _execute_plain(self, request, query_ts, deadline, strict):
        """Unreplicated drain with the same deadline semantics.

        The stream is key-ordered, so on a DEGRADED overrun the uncovered
        remainder is exactly ``(last_key + 1, end_key)``.
        """
        records: list = []
        key_of = None
        for row in self.backend.scan(
            request.begin_key, request.end_key, query_ts
        ):
            records.append(row)
            if deadline is None or len(records) % DEADLINE_CHECK_STRIDE:
                continue
            if not deadline.expired:
                continue
            if strict:
                deadline.check()
            key_of = self._schema_key(records[-1])
            if key_of >= request.end_key:
                return records, []
            return records, [(key_of + 1, request.end_key)]
        return records, []

    def _schema_key(self, row: tuple):
        backend = self.backend
        warehouse = getattr(backend, "warehouse", None)
        if warehouse is not None:
            return warehouse.schema.key(row)
        return backend.masm.table.schema.key(row)
