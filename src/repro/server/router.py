"""Request router: one snapshot timestamp, one fan-out/merge scan.

The router is the serving layer's only path into the engine.  Every request
draws exactly ONE timestamp from the global oracle and executes the whole
fan-out under it — however many key-range partitions and per-node scans the
executor splits into, the request observes a single committed prefix (the
same guarantee :meth:`ShardedWarehouse.partitioned_range_scan` gives one
caller, promoted to the unit of serving isolation).

Backends adapt the engines the router can serve:

* :class:`WarehouseBackend` — a :class:`~repro.core.sharding.ShardedWarehouse`;
  scans ride the key-range-partitioned fan-out/merge executor, so each
  partition's inner merge uses the columnar kernel path of its node.
* :class:`SingleEngineBackend` — one bare :class:`~repro.core.masm.MaSM`;
  this is what the deterministic simulator serves through, so the serving
  code path interleaves with flush/migrate/crash actors under the model
  oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.obs import get_registry


@dataclass(frozen=True)
class QueryRequest:
    """One tenant range query as the session manager dispatches it."""

    tenant: str
    session: int
    seq: int
    begin_key: int
    end_key: int
    #: Simulated instant the request arrived at the front door (open-loop
    #: arrivals may be long before dispatch when the server is backlogged).
    arrival: float = 0.0


@dataclass(frozen=True)
class QueryResult:
    """The client-visible outcome of one executed query."""

    request: QueryRequest
    rows: int
    query_ts: int
    #: Dispatch start (after queueing and admission delays), simulated.
    started: float
    finished: float

    @property
    def service_seconds(self) -> float:
        return self.finished - self.started

    @property
    def latency_seconds(self) -> float:
        """Arrival-to-completion: queueing + admission delay + service."""
        return self.finished - self.request.arrival


class WarehouseBackend:
    """Adapt a :class:`ShardedWarehouse` to the router's backend protocol."""

    def __init__(self, warehouse, blocks_per_partition: Optional[int] = None):
        if warehouse.clock is None:
            raise ValueError(
                "serving needs one timeline: build the ShardedWarehouse "
                "with a shared clock=SimClock()"
            )
        self.warehouse = warehouse
        self.clock = warehouse.clock
        self.blocks_per_partition = blocks_per_partition

    def snapshot_ts(self) -> int:
        return self.warehouse.oracle.next()

    def scan(self, begin_key: int, end_key: int, query_ts: int) -> Iterator[tuple]:
        if self.blocks_per_partition is None:
            return self.warehouse.partitioned_range_scan(
                begin_key, end_key, query_ts=query_ts
            )
        return self.warehouse.partitioned_range_scan(
            begin_key,
            end_key,
            blocks_per_partition=self.blocks_per_partition,
            query_ts=query_ts,
        )


class SingleEngineBackend:
    """Adapt one MaSM engine (the simulator's serving target)."""

    def __init__(self, masm) -> None:
        self.masm = masm
        self.clock = masm.ssd.device.clock

    def snapshot_ts(self) -> int:
        return self.masm.oracle.next()

    def scan(self, begin_key: int, end_key: int, query_ts: int) -> Iterator[tuple]:
        return self.masm.range_scan(begin_key, end_key, query_ts=query_ts)


class RequestRouter:
    """Executes admitted requests against a backend, fully draining each.

    The router is deliberately synchronous: one request occupies the server
    between ``started`` and ``finished`` on the shared simulated timeline,
    which is exactly what makes queueing visible to open-loop sessions.
    """

    def __init__(self, backend, scope: str = "server") -> None:
        self.backend = backend
        self.clock = backend.clock
        registry = get_registry()
        self._requests = registry.counter(f"{scope}.requests")
        self._rows = registry.counter(f"{scope}.rows")
        self._service_hist = registry.histogram(f"{scope}.service_seconds")

    def execute(self, request: QueryRequest) -> QueryResult:
        """Run one query under one fresh snapshot timestamp."""
        started = self.clock.now
        query_ts = self.backend.snapshot_ts()
        rows = 0
        for _ in self.backend.scan(request.begin_key, request.end_key, query_ts):
            rows += 1
        finished = self.clock.now
        self._requests.add(1)
        self._rows.add(rows)
        self._service_hist.observe(finished - started)
        return QueryResult(
            request=request,
            rows=rows,
            query_ts=query_ts,
            started=started,
            finished=finished,
        )
