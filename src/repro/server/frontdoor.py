"""The multi-tenant front door: admission + routing + latency surfaces.

``FrontDoor`` is what a client (or a simulated session) talks to.  It owns
the tenant admission table and the request router, and records every
client-visible outcome into the metrics registry under one unique scope:

* ``<scope>.tenant.<t>.latency_seconds`` — arrival-to-completion latency
  histogram per tenant (p50/p99/p999 surfaces in every exported
  ``<experiment>.metrics.json``);
* ``<scope>.tenant.<t>.queue_wait_seconds`` — time between arrival and
  dispatch (backlog + admission delays);
* ``<scope>.tenant.<t>.requests / rows / rejected`` counters, next to the
  admission layer's ``admitted / delayed / shed``;
* ``<scope>.queue_depth`` gauge + histogram — sampled backlog depth.

The front door itself never sleeps and never blocks: DELAY decisions come
back to the caller as a reschedule interval (see
:class:`~repro.server.quotas.TenantAdmission`), SHED decisions as the typed
retryable :class:`~repro.errors.QuotaExceededError`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DeadlineExceededError
from repro.obs import get_registry
from repro.server.quotas import TenantAdmission, TenantQuota
from repro.server.router import (
    DeadlinePolicy,
    QueryRequest,
    QueryResult,
    RequestRouter,
)


#: Reservoir size for latency histograms: p999 needs more resolution than
#: the default 512-sample reservoir gives.
LATENCY_RESERVOIR = 4096


class FrontDoor:
    """One serving endpoint over a router backend, with per-tenant quotas."""

    def __init__(
        self,
        backend,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        scope: Optional[str] = None,
        deadlines: Optional[Dict[str, DeadlinePolicy]] = None,
        seed: int = 0,
        keep_records: bool = False,
    ) -> None:
        registry = get_registry()
        self.scope = scope if scope is not None else registry.unique_scope("server")
        self.backend = backend
        self.clock = backend.clock
        self.router = RequestRouter(
            backend, scope=self.scope, keep_records=keep_records
        )
        self.admission = TenantAdmission(
            self.clock, quotas, scope=self.scope, seed=seed
        )
        #: Per-tenant end-to-end deadline budgets; tenants without an entry
        #: run unbounded (the pre-deadline behaviour).
        self.deadlines: Dict[str, DeadlinePolicy] = dict(deadlines or {})
        self._depth_gauge = registry.gauge(f"{self.scope}.queue_depth")
        self._depth_hist = registry.histogram(f"{self.scope}.queue_depth_sampled")
        self._tenant_instruments: Dict[str, dict] = {}

    # ------------------------------------------------------------ admission
    def try_admit(self, tenant: str, waited: float = 0.0) -> float:
        """0.0 = admitted; > 0 = park the request that long and retry.

        Raises :class:`QuotaExceededError` when the request is shed; the
        caller surfaces it to the client (open-loop sessions drop the
        request, closed-loop sessions back off ``retry_after`` and retry).
        """
        try:
            return self.admission.decide(tenant, waited)
        except Exception:
            self._instruments(tenant)["rejected"].add(1)
            raise

    # ------------------------------------------------------------ execution
    def execute(self, request: QueryRequest) -> QueryResult:
        """Route one admitted request; record its latency surfaces.

        The tenant's :class:`DeadlinePolicy` (if any) is armed here and
        threaded through the router's fan-out.  STRICT overruns surface as
        the typed retryable :class:`DeadlineExceededError` and land on the
        tenant's ``deadline_exceeded`` counter; DEGRADED overruns come
        back as a partial :class:`QueryResult` carrying the uncovered key
        ranges and count on ``partial_results``.
        """
        instruments = self._instruments(request.tenant)
        try:
            result = self.router.execute(
                request, deadline_policy=self.deadlines.get(request.tenant)
            )
        except DeadlineExceededError:
            instruments["deadline_exceeded"].add(1)
            raise
        instruments["requests"].add(1)
        instruments["rows"].add(result.rows)
        if result.partial:
            instruments["partial_results"].add(1)
        instruments["latency"].observe(result.latency_seconds)
        instruments["queue_wait"].observe(
            max(0.0, result.started - request.arrival)
        )
        return result

    def query(
        self, tenant: str, begin_key: int, end_key: int, session: int = 0, seq: int = 0
    ) -> QueryResult:
        """Convenience single-shot client: admit (paying any DELAY on the
        shared clock, as a lone caller would) and execute."""
        waited = 0.0
        while True:
            wait = self.try_admit(tenant, waited)
            if wait <= 0:
                break
            self.clock.advance(wait)
            waited += wait
        request = QueryRequest(
            tenant=tenant,
            session=session,
            seq=seq,
            begin_key=begin_key,
            end_key=end_key,
            arrival=self.clock.now,
        )
        return self.execute(request)

    # ----------------------------------------------------------- instruments
    def _instruments(self, tenant: str) -> dict:
        found = self._tenant_instruments.get(tenant)
        if found is None:
            registry = get_registry()
            prefix = f"{self.scope}.tenant.{tenant}"
            found = {
                "requests": registry.counter(f"{prefix}.requests"),
                "rows": registry.counter(f"{prefix}.rows"),
                "rejected": registry.counter(f"{prefix}.rejected"),
                "deadline_exceeded": registry.counter(
                    f"{prefix}.deadline_exceeded"
                ),
                "partial_results": registry.counter(f"{prefix}.partial_results"),
                "latency": registry.histogram(
                    f"{prefix}.latency_seconds", reservoir=LATENCY_RESERVOIR
                ),
                "queue_wait": registry.histogram(
                    f"{prefix}.queue_wait_seconds", reservoir=LATENCY_RESERVOIR
                ),
            }
            self._tenant_instruments[tenant] = found
        return found

    def observe_queue_depth(self, depth: int) -> None:
        """Session-manager hook: record a sampled backlog depth."""
        self._depth_gauge.set(depth)
        self._depth_hist.observe(depth)

    # ------------------------------------------------------------- reporting
    def tenant_report(self) -> Dict[str, dict]:
        """Per-tenant SLO surface: latency percentiles (ms) and counters."""
        admission = self.admission.report()
        out: Dict[str, dict] = {}
        for tenant in sorted(self._tenant_instruments):
            instruments = self._tenant_instruments[tenant]
            latency = instruments["latency"]
            queue_wait = instruments["queue_wait"]
            entry = {
                "requests": instruments["requests"].value,
                "rows": instruments["rows"].value,
                "rejected": instruments["rejected"].value,
                "deadline_exceeded": instruments["deadline_exceeded"].value,
                "partial_results": instruments["partial_results"].value,
                "latency_p50_ms": latency.percentile(50) * 1e3,
                "latency_p99_ms": latency.percentile(99) * 1e3,
                "latency_p999_ms": latency.percentile(99.9) * 1e3,
                "latency_mean_ms": latency.mean * 1e3,
                "queue_wait_p99_ms": queue_wait.percentile(99) * 1e3,
            }
            entry.update(admission.get(tenant, {}))
            out[tenant] = entry
        return out
