"""Per-replica failure detection: circuit breakers + latency trackers.

Fan-out amplifies tails: one crashed, stuck, or pathologically slow replica
lands in *every* request that routes through it.  This module supplies the
two detectors the serving layer uses to route around trouble:

* :class:`CircuitBreaker` — the classic three-state machine on simulated
  time.  CLOSED counts consecutive typed failures (errors or deadline
  overruns); at ``failure_threshold`` it OPENs and fail-fasts every caller
  for ``reset_seconds``; then the first caller through becomes the
  HALF_OPEN *probe* — its success re-CLOSEs the breaker, its failure
  re-OPENs it for another full window.
* :class:`LatencyTracker` — EWMA mean + EWMA mean-absolute-deviation of
  scan service times.  ``hedge_delay()`` returns mean + k·deviation — a
  cheap online stand-in for ~p95 — and ``None`` until ``min_samples``
  observations exist, so cold replicas are never hedged against noise.

:class:`FleetHealth` owns one (breaker, tracker) pair per replica of every
shard, exports a per-replica health gauge (1.0 CLOSED / 0.5 HALF_OPEN /
0.0 OPEN), and computes the route order the fan-out executor tries: the
shard's primary first, then followers, breaker-blocked replicas last (a
fully-open shard still gets one last-resort attempt rather than none).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.obs import get_registry


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge value per breaker state (per-replica health surface).
_HEALTH_VALUE = {
    BreakerState.CLOSED: 1.0,
    BreakerState.HALF_OPEN: 0.5,
    BreakerState.OPEN: 0.0,
}


class CircuitBreaker:
    """Three-state circuit breaker on a shared :class:`SimClock`."""

    def __init__(
        self,
        clock,
        failure_threshold: int = 3,
        reset_seconds: float = 0.25,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds <= 0:
            raise ValueError(f"reset_seconds must be > 0, got {reset_seconds}")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        #: Set while the half-open probe is in flight so concurrent callers
        #: keep failing fast instead of stampeding the recovering replica.
        self._probe_out = False

    def allow(self) -> bool:
        """May the caller attempt an operation right now?

        In OPEN, the first call at or past ``opened_at + reset_seconds``
        transitions to HALF_OPEN and *is* the probe: it returns True while
        every other HALF_OPEN caller gets False until the probe resolves.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.clock.now >= self.opened_at + self.reset_seconds:
                self.state = BreakerState.HALF_OPEN
                self._probe_out = True
                return True
            return False
        # HALF_OPEN: exactly one probe at a time.
        if not self._probe_out:
            self._probe_out = True
            return True
        return False

    def would_allow(self) -> bool:
        """Pure peek at :meth:`allow` — no state transition, no probe claim.

        Route ordering consults every replica's breaker; only the actual
        attempt may claim the half-open probe, so ordering uses this.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            return self.clock.now >= self.opened_at + self.reset_seconds
        return not self._probe_out

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_out = False
        self.state = BreakerState.CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self._probe_out = False
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: re-open for a fresh reset window.
            self.state = BreakerState.OPEN
            self.opened_at = self.clock.now
            return
        if self.consecutive_failures >= self.failure_threshold:
            self.state = BreakerState.OPEN
            self.opened_at = self.clock.now


class LatencyTracker:
    """EWMA latency estimator feeding the hedge-delay policy.

    Keeps an exponentially weighted mean and mean absolute deviation of
    observed service times; ``mean + k * deviation`` tracks a high
    percentile of a unimodal latency distribution closely enough to decide
    *when a scan is taking suspiciously long*, which is all hedging needs.
    """

    def __init__(self, alpha: float = 0.2, min_samples: int = 8) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.min_samples = min_samples
        self.samples = 0
        self.mean = 0.0
        self.deviation = 0.0

    def observe(self, seconds: float) -> None:
        self.samples += 1
        if self.samples == 1:
            self.mean = seconds
            self.deviation = 0.0
            return
        error = seconds - self.mean
        self.mean += self.alpha * error
        self.deviation += self.alpha * (abs(error) - self.deviation)

    def hedge_delay(self, multiplier: float, floor: float) -> float | None:
        """Delay after which a backup read should be issued, or None."""
        if self.samples < self.min_samples:
            return None
        return max(floor, self.mean + multiplier * self.deviation)


@dataclass(frozen=True)
class HedgePolicy:
    """When the fan-out executor issues a backup read."""

    enabled: bool = True
    #: k in ``mean + k * deviation`` (~p95 for well-behaved latencies).
    deviation_multiplier: float = 3.0
    #: Never hedge before this many observed scans on the serving replica.
    min_samples: int = 8
    #: Lower bound on the hedge delay (guards against a near-zero EWMA
    #: hedging every scan after a burst of cache hits).
    min_delay_seconds: float = 1e-4


class ReplicaHealth:
    """Breaker + latency tracker + health gauge for one replica."""

    __slots__ = ("breaker", "tracker", "_gauge")

    def __init__(self, clock, scope: str, shard_id: int, replica_id: int,
                 breaker_kwargs: dict, tracker_kwargs: dict) -> None:
        self.breaker = CircuitBreaker(clock, **breaker_kwargs)
        self.tracker = LatencyTracker(**tracker_kwargs)
        self._gauge = get_registry().gauge(
            f"{scope}.replica.{shard_id}.{replica_id}.health"
        )
        self._gauge.set(_HEALTH_VALUE[self.breaker.state])

    def allow(self) -> bool:
        allowed = self.breaker.allow()
        self._gauge.set(_HEALTH_VALUE[self.breaker.state])
        return allowed

    def would_allow(self) -> bool:
        return self.breaker.would_allow()

    def success(self, seconds: float) -> None:
        self.breaker.record_success()
        self.tracker.observe(seconds)
        self._gauge.set(_HEALTH_VALUE[self.breaker.state])

    def failure(self) -> None:
        self.breaker.record_failure()
        self._gauge.set(_HEALTH_VALUE[self.breaker.state])


class FleetHealth:
    """Health bookkeeping for every replica the fan-out executor can pick."""

    def __init__(
        self,
        clock,
        scope: str = "server",
        failure_threshold: int = 3,
        reset_seconds: float = 0.25,
        hedge: HedgePolicy | None = None,
    ) -> None:
        self.clock = clock
        self.scope = scope
        self.hedge = hedge if hedge is not None else HedgePolicy()
        self._breaker_kwargs = dict(
            failure_threshold=failure_threshold, reset_seconds=reset_seconds
        )
        self._tracker_kwargs = dict(min_samples=self.hedge.min_samples)
        self._replicas: Dict[Tuple[int, int], ReplicaHealth] = {}

    def for_replica(self, shard_id: int, replica_id: int) -> ReplicaHealth:
        key = (shard_id, replica_id)
        found = self._replicas.get(key)
        if found is None:
            found = ReplicaHealth(
                self.clock, self.scope, shard_id, replica_id,
                self._breaker_kwargs, self._tracker_kwargs,
            )
            self._replicas[key] = found
        return found

    def hedge_delay(self, shard_id: int, replica_id: int) -> float | None:
        """Hedge delay for a scan currently served by this replica."""
        if not self.hedge.enabled:
            return None
        return self.for_replica(shard_id, replica_id).tracker.hedge_delay(
            self.hedge.deviation_multiplier, self.hedge.min_delay_seconds
        )

    def route_order(
        self, shard_id: int, primary_id: int, replica_ids: Sequence[int]
    ) -> list[int]:
        """Replica attempt order: primary first, breaker-allowed first.

        Breaker-blocked replicas sort to the back rather than dropping out:
        when every breaker of a shard is open, the first blocked candidate
        still gets a last-resort attempt (and, in HALF_OPEN, that attempt
        is the probe that can re-close the breaker).  Ordering is a pure
        peek (:meth:`CircuitBreaker.would_allow`); only the executor's
        actual attempt claims the half-open probe.
        """
        ordered = sorted(replica_ids, key=lambda r: (r != primary_id, r))
        return sorted(
            ordered, key=lambda r: not self.for_replica(shard_id, r).would_allow()
        )

    def report(self) -> Dict[str, dict]:
        """JSON-ready per-replica breaker states (for operator surfaces)."""
        out: Dict[str, dict] = {}
        for (shard_id, replica_id), health in sorted(self._replicas.items()):
            out[f"{shard_id}.{replica_id}"] = {
                "state": health.breaker.state.value,
                "consecutive_failures": health.breaker.consecutive_failures,
                "latency_mean": health.tracker.mean,
                "latency_deviation": health.tracker.deviation,
                "samples": health.tracker.samples,
            }
        return out


class RepairQueue:
    """Deduplicated read-repair intents, one slot per shard.

    The fan-out executor *observes* symptoms of replica damage — a typed
    scan failure, or a hedged backup whose rows disagree with the
    primary's — but repairing mid-request would blow the request deadline.
    So it drops a shard id here and a background tick later drains the
    queue through
    :meth:`~repro.core.replication.ReplicatedWarehouse.run_repairs`
    (one anti-entropy pass per distinct shard).  Scheduling the same shard
    twice before a drain is a no-op: anti-entropy is idempotent and one
    pass repairs every damaged run on the shard.
    """

    def __init__(self, scope: str = "server") -> None:
        self._pending: dict[int, str] = {}
        self._obs_scheduled = get_registry().counter(
            f"{scope}.repairs.scheduled"
        )

    def schedule(self, shard_id: int, reason: str) -> bool:
        """Queue a repair for ``shard_id``; False when already queued."""
        if shard_id in self._pending:
            return False
        self._pending[shard_id] = reason
        self._obs_scheduled.add(1)
        return True

    def drain(self) -> list[int]:
        """Pop every queued shard id (oldest first)."""
        shard_ids = list(self._pending)
        self._pending.clear()
        return shard_ids

    def pending(self) -> Dict[int, str]:
        """Queued shard → reason, without consuming the queue."""
        return dict(self._pending)

    def __len__(self) -> int:
        return len(self._pending)
