"""Simulated client sessions and the serving event loop.

Thousands of sessions share one simulated timeline.  The session manager
keeps a min-heap of pending events — open-loop arrivals, closed-loop
follow-ups, DELAY reschedules — and dispatches them in time order through
the :class:`~repro.server.frontdoor.FrontDoor`.  Because the router is
synchronous, a query occupies the server from dispatch to completion; any
arrival whose instant falls inside that window waits in the heap, and its
latency (completion minus *arrival*) records the backlog it sat through.
That is the whole point of the open-loop clients: arrivals keep coming at
their scheduled instants whether or not the server kept up, so overload
shows up as queueing delay instead of being hidden by a polite client.

Two client shapes (both deterministic functions of ``(spec, seed)``):

* **open-loop** — arrival instants drawn from a Poisson or bursty process,
  independent of completions (Luo & Carey's stability methodology);
* **closed-loop** — each session issues its next request a think-time after
  the previous response; a shed response backs off ``retry_after`` and
  retries the same request up to ``max_retries`` times.
"""

from __future__ import annotations

import enum
import heapq
import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import QuotaExceededError
from repro.server.frontdoor import FrontDoor
from repro.server.router import QueryRequest
from repro.workloads.synthetic import BurstyProcess, PoissonProcess

#: How often (in dispatches) the manager samples the backlog depth.
QUEUE_SAMPLE_STRIDE = 64


class SessionMode(enum.Enum):
    OPEN = "open"
    CLOSED = "closed"


class ArrivalKind(enum.Enum):
    POISSON = "poisson"
    BURSTY = "bursty"


@dataclass(frozen=True)
class SessionSpec:
    """A homogeneous group of sessions for one tenant."""

    tenant: str
    sessions: int
    requests: int
    mode: SessionMode = SessionMode.OPEN
    #: Open-loop: per-session arrival rate (requests / simulated second).
    rate: float = 1.0
    arrivals: ArrivalKind = ArrivalKind.POISSON
    #: Bursty arrivals: burst length and mean idle gap between bursts.
    burst_len: int = 8
    idle_seconds: float = 1.0
    #: Closed-loop: mean think time between response and next request.
    think_seconds: float = 0.2
    #: Records per range query (keys step by 2 in the synthetic keyspace).
    range_records: int = 64
    #: Fraction of requests that are updates instead of range queries
    #: (requires the manager's ``write_op``).
    write_fraction: float = 0.0
    #: Closed-loop retries after a shed response before dropping it.
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError(f"need >= 1 session, got {self.sessions}")
        if self.requests < 1:
            raise ValueError(f"need >= 1 request per session, got {self.requests}")
        if self.mode is SessionMode.OPEN and self.rate <= 0:
            raise ValueError(f"open-loop rate must be > 0, got {self.rate}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {self.write_fraction}"
            )


class _Session:
    """Mutable per-session state (internal to the manager)."""

    __slots__ = (
        "sid", "spec", "rng", "process", "arrivals", "issued", "waited", "retries"
    )

    def __init__(self, sid: int, spec: SessionSpec, seed) -> None:
        self.sid = sid
        self.spec = spec
        self.rng = random.Random(f"{seed}:session:{sid}")
        self.issued = 0
        self.waited = 0.0  # DELAY budget consumed by the in-flight request
        self.retries = 0
        self.process = None
        self.arrivals: Optional[Iterator[float]] = None
        if spec.mode is SessionMode.OPEN:
            if spec.arrivals is ArrivalKind.POISSON:
                self.process = PoissonProcess(
                    spec.rate,
                    seed=f"{seed}:s{sid}",
                    phase=self.rng.uniform(0.0, 1.0 / spec.rate),
                )
            else:
                # Spread session starts across one full on/off cycle so a
                # large population doesn't fire its first burst in unison.
                cycle = spec.burst_len / spec.rate + spec.idle_seconds
                self.process = BurstyProcess(
                    spec.rate,
                    spec.burst_len,
                    spec.idle_seconds,
                    seed=f"{seed}:s{sid}",
                    phase=self.rng.uniform(0.0, cycle),
                )


@dataclass
class ServingStats:
    """Aggregate outcome of one :meth:`SessionManager.run`."""

    dispatched: int = 0
    executed: int = 0
    writes: int = 0
    shed: int = 0
    reschedules: int = 0
    retries: int = 0
    rows: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    max_sampled_depth: int = 0

    @property
    def elapsed(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    def to_dict(self) -> dict:
        return {
            "dispatched": self.dispatched,
            "executed": self.executed,
            "writes": self.writes,
            "shed": self.shed,
            "reschedules": self.reschedules,
            "retries": self.retries,
            "rows": self.rows,
            "elapsed_seconds": self.elapsed,
            "max_sampled_depth": self.max_sampled_depth,
        }


class SessionManager:
    """Drives a population of sessions through one front door."""

    def __init__(
        self,
        frontdoor: FrontDoor,
        specs: List[SessionSpec],
        key_universe: int,
        seed: int = 0,
        write_op: Optional[Callable[[random.Random], int]] = None,
    ) -> None:
        """``key_universe`` bounds the keys sessions query (exclusive).

        ``write_op(rng)`` performs one update against the backing store and
        returns the number of records it touched; sessions with a
        ``write_fraction`` draw it instead of a range query.
        """
        if key_universe < 2:
            raise ValueError(f"key universe too small: {key_universe}")
        self.frontdoor = frontdoor
        self.clock = frontdoor.clock
        self.seed = seed
        self.key_universe = key_universe
        self.write_op = write_op
        self.sessions: List[_Session] = []
        for spec in specs:
            if spec.write_fraction > 0 and write_op is None:
                raise ValueError(
                    f"spec for tenant {spec.tenant!r} asks for writes but "
                    "no write_op was given"
                )
            for _ in range(spec.sessions):
                self.sessions.append(_Session(len(self.sessions), spec, seed))

    @property
    def num_sessions(self) -> int:
        return len(self.sessions)

    # ------------------------------------------------------------ event loop
    def run(self) -> ServingStats:
        """Dispatch every session's requests to completion; returns stats."""
        stats = ServingStats(started_at=self.clock.now)
        # Heap entries: (when, tie, session, request-or-None).  ``tie`` is a
        # monotonically increasing sequence so equal instants pop FIFO —
        # the loop is a pure function of (specs, seed).
        heap: List[Tuple[float, int, _Session, Optional[QueryRequest]]] = []
        tie = 0
        for session in self.sessions:
            when = self._first_arrival(session)
            heapq.heappush(heap, (when, tie, session, None))
            tie += 1

        while heap:
            when, _, session, parked = heapq.heappop(heap)
            if when > self.clock.now:
                self.clock.advance_to(when)
            stats.dispatched += 1
            if stats.dispatched % QUEUE_SAMPLE_STRIDE == 0:
                depth = sum(1 for entry in heap if entry[0] <= self.clock.now)
                self.frontdoor.observe_queue_depth(depth)
                stats.max_sampled_depth = max(stats.max_sampled_depth, depth)

            spec = session.spec
            request = parked
            if request is None:
                request = self._build_request(session, arrival=when)
            # ---------------------------------------------------- admission
            try:
                wait = self.frontdoor.try_admit(spec.tenant, session.waited)
            except QuotaExceededError as rejection:
                stats.shed += 1
                session.waited = 0.0
                if (
                    spec.mode is SessionMode.CLOSED
                    and session.retries < spec.max_retries
                ):
                    # The client backs off retry_after and resubmits the
                    # same request (its arrival stays the original one, so
                    # the retry loop shows up in the latency surface).
                    session.retries += 1
                    stats.retries += 1
                    retry_at = self.clock.now + max(
                        rejection.retry_after, 1e-6
                    )
                    heapq.heappush(heap, (retry_at, tie, session, request))
                    tie += 1
                    continue
                # Open-loop clients drop shed requests (the flood keeps
                # coming regardless); a closed-loop client out of retries
                # gives up on this request and thinks before the next.
                session.retries = 0
                tie = self._schedule_next(heap, tie, session)
                continue
            if wait > 0.0:
                session.waited += wait
                stats.reschedules += 1
                heapq.heappush(
                    heap, (self.clock.now + wait, tie, session, request)
                )
                tie += 1
                continue
            # ---------------------------------------------------- execution
            session.waited = 0.0
            session.retries = 0
            if request.end_key < request.begin_key:  # write sentinel
                touched = self.write_op(session.rng)
                stats.writes += 1
                stats.rows += touched
                self._record_write(session, request)
            else:
                result = self.frontdoor.execute(request)
                stats.executed += 1
                stats.rows += result.rows
            tie = self._schedule_next(heap, tie, session)

        stats.finished_at = self.clock.now
        return stats

    # -------------------------------------------------------------- internals
    def _first_arrival(self, session: _Session) -> float:
        spec = session.spec
        session.issued += 1
        if spec.mode is SessionMode.OPEN:
            # The process yields ABSOLUTE instants; anchor it at the
            # current simulated time so sessions created after a long
            # warehouse build don't appear to have arrived in the past.
            session.arrivals = session.process.arrival_times(start=self.clock.now)
            return next(session.arrivals)
        return self.clock.now + session.rng.uniform(0.0, spec.think_seconds)

    def _schedule_next(self, heap, tie: int, session: _Session) -> int:
        spec = session.spec
        if session.issued >= spec.requests:
            return tie
        session.issued += 1
        if spec.mode is SessionMode.OPEN:
            when = next(session.arrivals)
        else:
            when = self.clock.now + session.rng.expovariate(
                1.0 / max(spec.think_seconds, 1e-9)
            )
        heapq.heappush(heap, (when, tie, session, None))
        return tie + 1

    def _build_request(self, session: _Session, arrival: float) -> QueryRequest:
        spec = session.spec
        rng = session.rng
        if spec.write_fraction > 0 and rng.random() < spec.write_fraction:
            # A write request: encoded as an inverted key range so the
            # dispatch loop can tell it apart without a second heap type.
            return QueryRequest(
                tenant=spec.tenant,
                session=session.sid,
                seq=session.issued,
                begin_key=1,
                end_key=0,
                arrival=arrival,
            )
        span = max(2, spec.range_records * 2)
        begin = rng.randrange(0, max(1, self.key_universe - span))
        return QueryRequest(
            tenant=spec.tenant,
            session=session.sid,
            seq=session.issued,
            begin_key=begin,
            end_key=begin + span - 1,
            arrival=arrival,
        )

    def _record_write(self, session: _Session, request: QueryRequest) -> None:
        """Writes ride the same per-tenant latency surface as queries."""
        instruments = self.frontdoor._instruments(request.tenant)
        instruments["requests"].add(1)
        now = self.clock.now
        instruments["latency"].observe(max(0.0, now - request.arrival))
        instruments["queue_wait"].observe(max(0.0, now - request.arrival))
