"""Overload governance: admission control, backpressure, paced migration.

The paper's sustained-update experiment (Section 7.3 / Figure 12) assumes
MaSM keeps absorbing updates while scans run.  The ungoverned engine meets a
full SSD cache with a stop-the-world ``migrate_all`` at flush time and a
full in-memory buffer with :class:`~repro.errors.UpdateCacheFullError` at
the caller — under a sustained flood both latency spikes and dropped
updates are possible (exactly the LSM write-stall failure mode of Luo &
Carey's stability study).  This module makes the degradation *governed*:

* **Watermarks.**  SSD-cache occupancy is classified against three
  configurable fractions of ``cache_bytes`` — *low* (idle), *high* (start
  paced migration), *critical* (apply the overload policy before accepting
  more work).  The current band is exported as a gauge.

* **Paced incremental migration.**  Instead of migrating the whole cache in
  one stall, the governor sweeps a key-range cursor across the cached runs
  and migrates one *slice* at a time via
  :func:`repro.core.migration.migrate_range`.  A pacing controller sizes
  the slice in heap *pages* (via the sparse index) so one step's simulated
  duration tracks ``target_stall_seconds``: each measured step
  multiplicatively adjusts the slice fraction (EWMA-smoothed), so per-step
  stall stays bounded whatever the device speeds are.  Steps trickle on
  the apply path — one slice per admitted update while anticipated
  occupancy (cached runs plus the in-memory buffer) is above the high
  watermark — plus between scans; a flush whose bytes would still push
  occupancy past critical falls into :meth:`LoadGovernor.make_room`, the
  emergency valve.  Full migrations piggyback on
  :class:`~repro.core.migration.CoordinatedMigration` (which resets the
  sweep).

* **Token-bucket admission control.**  ``admit()`` runs in front of
  ``MaSM.apply``.  When the bucket is empty the configured
  :class:`OverloadPolicy` decides what happens:

  - ``DELAY``   — wait for tokens, charged to the shared
    :class:`~repro.storage.clock.SimClock`; a single wait never exceeds
    ``max_delay_seconds`` (bounded backpressure);
  - ``SHED``    — raise a typed :class:`~repro.errors.BackpressureError`;
    every shed is counted, never silent;
  - ``SYNC_MIGRATE`` — the caller pays for one paced migration slice (the
    paper's fallback: the writer performs the maintenance it is outrunning)
    and is then admitted.

Once an update is *admitted* it is never dropped: buffer-capacity pressure
downstream is resolved by :meth:`LoadGovernor.make_room`, which paces
slices until the flush fits and only escalates to a full migration as a
counted last resort — so the governed engine never raises
``UpdateCacheFullError`` on the apply path.

Every decision is observable: ``governor.<scope>.admitted / delayed /
shed / sync_migrate_steps / migrate_steps / forced_full_migrations``
counters, ``utilization`` / ``watermark_state`` / ``tokens`` gauges, and
``delay_seconds`` / ``migrate_step_seconds`` stall histograms.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import BackpressureError
from repro.obs import get_registry, trace
from repro.sim.hooks import interleave as sim_interleave

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.masm import MaSM

FULL_KEY_RANGE = (0, 2**63 - 1)


class OverloadPolicy(enum.Enum):
    """What ``admit()`` does when the token bucket runs dry."""

    #: Backpressure: wait (on the SimClock) for tokens, at most
    #: ``max_delay_seconds`` per update.  Never drops, never errors.
    DELAY = "delay"
    #: Load shedding: raise :class:`BackpressureError`.  The caller decides
    #: whether to retry; the engine counts every shed update.
    SHED = "shed"
    #: The paper's fallback: the updating caller synchronously performs one
    #: paced migration slice, then proceeds.
    SYNC_MIGRATE = "sync_migrate"


#: Watermark bands, exported through the ``watermark_state`` gauge.
STATE_NORMAL = 0
STATE_LOW = 1
STATE_HIGH = 2
STATE_CRITICAL = 3

_STATE_NAMES = {
    STATE_NORMAL: "normal",
    STATE_LOW: "low",
    STATE_HIGH: "high",
    STATE_CRITICAL: "critical",
}


@dataclass
class GovernorConfig:
    """Tunables for one :class:`LoadGovernor`.

    Watermarks are fractions of the engine's ``cache_bytes`` and must be
    ordered ``0 < low <= high <= critical <= 1``.  ``admit_rate`` is the
    token-bucket refill rate in updates per simulated second (``None``
    leaves admission unmetered — watermark governance still applies).
    """

    low_watermark: float = 0.5
    high_watermark: float = 0.75
    critical_watermark: float = 0.9
    overload_policy: OverloadPolicy = OverloadPolicy.DELAY
    #: Sustainable updates per simulated second; None = unmetered.
    admit_rate: Optional[float] = None
    #: Token-bucket capacity (burst tolerance), in updates.
    burst: float = 256.0
    #: Upper bound on one DELAY wait, in simulated seconds.
    max_delay_seconds: float = 0.05
    #: Pacing target for one migration slice, in simulated seconds.
    target_stall_seconds: float = 0.02
    #: Bounds on the key-space fraction one slice may cover.
    min_slice_fraction: float = 1.0 / 4096.0
    max_slice_fraction: float = 0.25
    #: Run a paced slice when a scan finishes and occupancy is above the
    #: high watermark ("slices scheduled between scans").
    migrate_between_scans: bool = True
    #: Trickle: run one pacer-sized slice per admitted update while
    #: occupancy is above the high watermark.  Spreading retirement over
    #: the (many) applies between flushes is what keeps any single stall
    #: near ``target_stall_seconds`` instead of paying a whole sweep at
    #: flush time.
    migrate_on_apply: bool = True
    #: Safety valve: paced steps per make_room() call before escalating to
    #: a full stop-the-world migration (counted, never silent).
    max_steps_per_room: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.low_watermark <= self.high_watermark <= self.critical_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low <= high <= critical <= 1, "
                f"got {self.low_watermark}/{self.high_watermark}/{self.critical_watermark}"
            )
        if self.admit_rate is not None and self.admit_rate <= 0:
            raise ValueError(f"admit_rate must be > 0, got {self.admit_rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_delay_seconds < 0:
            raise ValueError(
                f"max_delay_seconds must be >= 0, got {self.max_delay_seconds}"
            )
        if self.target_stall_seconds <= 0:
            raise ValueError(
                f"target_stall_seconds must be > 0, got {self.target_stall_seconds}"
            )
        if not 0.0 < self.min_slice_fraction <= self.max_slice_fraction <= 1.0:
            raise ValueError(
                "slice fractions must satisfy 0 < min <= max <= 1, got "
                f"{self.min_slice_fraction}/{self.max_slice_fraction}"
            )
        if self.max_steps_per_room < 1:
            raise ValueError(
                f"max_steps_per_room must be >= 1, got {self.max_steps_per_room}"
            )


class TokenBucket:
    """A token bucket over simulated time.

    ``rate`` tokens accrue per second up to ``burst``; :meth:`take` consumes
    one if available, :meth:`wait_needed` reports how long until one
    accrues.  The bucket reads time from a callable so it works against any
    :class:`SimClock` (or a test stub) without owning it.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = now

    @property
    def tokens(self) -> float:
        return self._tokens

    def refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = max(self._last, now)

    def take(self, now: float) -> bool:
        """Consume one token if available (refilling first)."""
        self.refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def wait_needed(self, now: float) -> float:
        """Seconds until one full token accrues (0 if already available)."""
        self.refill(now)
        if self._tokens >= 1.0:
            return 0.0
        wait = (1.0 - self._tokens) / self.rate
        # At tiny deficits the quotient can fall below one ULP of ``now``;
        # a caller that parks until ``now + wait`` would then wake at the
        # same float instant with the same deficit, forever.  Round up
        # until the wait moves the clock to a strictly later instant.
        while wait and now + wait == now:
            wait *= 2.0
        return wait

    def force_take(self, now: float) -> None:
        """Consume one token even if it drives the balance negative.

        Used after a bounded DELAY wait: the update is admitted anyway (the
        stall bound wins over strict rate conformance) and the debt is
        repaid by later refills.
        """
        self.refill(now)
        self._tokens -= 1.0


class PacingController:
    """Multiplicatively adapts the migration slice size to a stall target.

    The controller holds a *fraction of the cached key span* to migrate per
    step.  After each step it compares the measured simulated duration with
    ``target_stall_seconds`` and nudges the fraction toward the target
    (EWMA-smoothed so one outlier slice cannot whipsaw the pace).
    """

    __slots__ = ("target", "min_fraction", "max_fraction", "fraction")

    def __init__(
        self, target: float, min_fraction: float, max_fraction: float
    ) -> None:
        self.target = target
        self.min_fraction = min_fraction
        self.max_fraction = max_fraction
        # Start small: the first slice under pressure must already be cheap;
        # the controller grows the slice if steps come in under target.
        self.fraction = min(max_fraction, max(min_fraction, min_fraction * 4))

    def observe(self, duration: float) -> None:
        """Adjust the slice fraction after a step that took ``duration``."""
        if duration <= 0:
            # Free step (nothing left in this stretch): keep the fraction.
            # Growing here would arm a mega-slice for the next dense
            # stretch — free steps cost no time, so a small slice loses
            # nothing while sweeping empty key space.
            return
        proposed = self.fraction * (self.target / duration)
        blended = 0.5 * self.fraction + 0.5 * proposed
        self.fraction = min(self.max_fraction, max(self.min_fraction, blended))


class LoadGovernor:
    """Per-engine overload governance (one instance per :class:`MaSM`)."""

    def __init__(self, masm: "MaSM", config: Optional[GovernorConfig] = None) -> None:
        self.masm = masm
        self.config = config or GovernorConfig()
        self.clock = masm.ssd.device.clock
        self.pacer = PacingController(
            self.config.target_stall_seconds,
            self.config.min_slice_fraction,
            self.config.max_slice_fraction,
        )
        self.bucket: Optional[TokenBucket] = (
            TokenBucket(
                self.config.admit_rate, self.config.burst, now=self.clock.now
            )
            if self.config.admit_rate is not None
            else None
        )
        self._cursor: Optional[int] = None  # next key the sweep migrates
        self._admit_lock = threading.Lock()
        # Per-apply fast path: cache the run-bytes total keyed on the
        # engine's runs_version, and precompute the trickle threshold in
        # bytes, so admission costs no lock/sum/divide per update.
        self._runs_version = -1
        self._runs_bytes = 0
        self._trickle_threshold = int(
            masm.cache_bytes * self.config.high_watermark
        )
        registry = get_registry()
        scope = f"governor.{masm.name}"
        self.scope = scope
        self._admitted = registry.counter(f"{scope}.admitted")
        self._delayed = registry.counter(f"{scope}.delayed")
        self._shed = registry.counter(f"{scope}.shed")
        self._sync_steps = registry.counter(f"{scope}.sync_migrate_steps")
        self._steps = registry.counter(f"{scope}.migrate_steps")
        self._forced_full = registry.counter(f"{scope}.forced_full_migrations")
        self._migrated_updates = registry.counter(f"{scope}.migrated_updates")
        self._util_gauge = registry.gauge(f"{scope}.utilization")
        self._state_gauge = registry.gauge(f"{scope}.watermark_state")
        self._tokens_gauge = registry.gauge(f"{scope}.tokens")
        self._delay_hist = registry.histogram(f"{scope}.delay_seconds")
        self._step_hist = registry.histogram(f"{scope}.migrate_step_seconds")

    # ----------------------------------------------------------- watermarks
    def utilization(self) -> float:
        """Current SSD-cache occupancy as a fraction of ``cache_bytes``."""
        return self.masm.cached_run_bytes / self.masm.cache_bytes

    def watermark_state(self, utilization: Optional[float] = None) -> int:
        """Classify occupancy into a watermark band (and export gauges)."""
        util = self.utilization() if utilization is None else utilization
        cfg = self.config
        if util >= cfg.critical_watermark:
            state = STATE_CRITICAL
        elif util >= cfg.high_watermark:
            state = STATE_HIGH
        elif util >= cfg.low_watermark:
            state = STATE_LOW
        else:
            state = STATE_NORMAL
        self._util_gauge.set(util)
        self._state_gauge.set(state)
        return state

    def watermark_name(self) -> str:
        return _STATE_NAMES[self.watermark_state()]

    # ------------------------------------------------------------ admission
    def admit(self, update) -> None:
        """Gate one update in front of ``MaSM.apply``.

        Raises :class:`BackpressureError` only under the ``SHED`` policy;
        ``DELAY`` charges a bounded wait to the SimClock and
        ``SYNC_MIGRATE`` makes the caller pay one migration slice.  Either
        way, an update that returns from here *is admitted* and will be
        visible to every later scan.
        """
        sim_interleave("governor.admit")
        bucket = self.bucket
        if bucket is not None:
            with self._admit_lock:
                granted = bucket.take(self.clock.now)
            if not granted:
                self._overloaded(update)
            self._tokens_gauge.set(bucket.tokens)
        # Anticipatory trigger: count the in-memory buffer too — those
        # bytes land in the cache at the next flush, and a flush can be a
        # sizeable fraction of a small cache.  Starting the trickle one
        # flush early is what keeps pressure from ever reaching critical.
        masm = self.masm
        if (
            self.config.migrate_on_apply
            and masm.runs
            and self._run_bytes() + masm.buffer.used_bytes
            >= self._trickle_threshold
        ):
            self.migrate_step()
        self._admitted.add(1)

    def _run_bytes(self) -> int:
        """Cached ``masm.cached_run_bytes`` (exact: refreshed whenever the
        run list changes), cheap enough for the per-update admit path."""
        masm = self.masm
        version = masm.runs_version
        if version != self._runs_version:
            self._runs_bytes = masm.cached_run_bytes
            self._runs_version = version
        return self._runs_bytes

    def _overloaded(self, update) -> None:
        policy = self.config.overload_policy
        if policy is OverloadPolicy.SHED:
            self._shed.add(1)
            raise BackpressureError(
                f"{self.masm.name}: admission rate exceeded "
                f"(policy=SHED, key={update.key}, ts={update.timestamp})"
            )
        if policy is OverloadPolicy.DELAY:
            wait = min(
                self.bucket.wait_needed(self.clock.now),
                self.config.max_delay_seconds,
            )
            if wait > 0:
                self.clock.advance(wait)
                self._delay_hist.observe(wait)
            self._delayed.add(1)
            self.bucket.force_take(self.clock.now)
            return
        # SYNC_MIGRATE: the caller performs the maintenance it is outrunning.
        self._sync_steps.add(1)
        self.migrate_step()
        self.bucket.force_take(self.clock.now)

    # ------------------------------------------------------- paced migration
    def _key_span(self) -> Optional[tuple[int, int]]:
        runs = self.masm.runs
        if not runs:
            return None
        return min(r.min_key for r in runs), max(r.max_key for r in runs)

    def _measure_start(self) -> tuple[float, float]:
        disk = self.masm.table.heap.file.device
        ssd = self.masm.ssd.device
        return disk.stats.busy_time, ssd.stats.busy_time

    def _measure_elapsed(self, before: tuple[float, float]) -> float:
        disk = self.masm.table.heap.file.device
        ssd = self.masm.ssd.device
        return max(
            disk.stats.busy_time - before[0], ssd.stats.busy_time - before[1]
        )

    def migrate_step(self, min_fraction: Optional[float] = None) -> bool:
        """Migrate one paced key-range slice; True if any work was done.

        The slice is the next stretch of the cached key span under the
        sweep cursor, sized by the pacing controller (``min_fraction``
        raises the floor when the caller needs guaranteed sweep progress —
        see :meth:`make_room`).  Governed slices go through
        :func:`migrate_range`, so they log MIGRATION_START/END and honour
        the ``migration.emit`` crash point exactly like full migrations.
        """
        from repro.core.migration import migrate_range

        from bisect import bisect_right

        masm = self.masm
        sim_interleave("governor.migrate_step")
        with masm._lock:
            span = self._key_span()
            if span is None:
                self._cursor = None
                return False
            lo, hi = span
            fraction = self.pacer.fraction
            if min_fraction is not None:
                fraction = max(fraction, min(1.0, min_fraction))
            cursor = self._cursor
            if cursor is None or cursor < lo or cursor > hi:
                cursor = lo
            begin = cursor
            # Size the slice in *pages*, the unit that actually costs I/O:
            # a key-width slice meets wildly different page counts in dense
            # vs sparse stretches, which defeats the stall target.
            entries = masm.table.index.entries()
            if entries:
                starts = [key for key, _ in entries]
                i = max(0, bisect_right(starts, begin) - 1)
                pages = max(1, round(fraction * len(entries)))
                j = i + pages
                end = min(hi, starts[j] - 1) if j < len(starts) else hi
            else:
                width = hi - lo + 1
                end = min(hi, begin + max(1, int(width * fraction)) - 1)
            before = self._measure_start()
            with trace(
                f"{self.scope}.migrate_step", begin=begin, end=end
            ):
                stats = migrate_range(masm, begin, end, redo_log=masm.redo_log)
            duration = self._measure_elapsed(before)
            self._cursor = end + 1 if end < hi else None  # None = wrapped
            self.pacer.observe(duration)
            self._steps.add(1)
            self._step_hist.observe(duration)
            if stats is not None:
                self._migrated_updates.add(stats.updates_applied)
            self.watermark_state()
            return stats is not None

    def make_room(self, incoming_bytes: int) -> None:
        """Emergency valve for a flush of ``incoming_bytes``.

        In steady state the per-apply trickle (``migrate_on_apply``) keeps
        occupancy below the critical watermark and this does nothing.  When
        pressure still reaches critical — the trickle disabled, or a burst
        outran it — the governor sweeps in large strides until the flush
        fits with critical-watermark headroom, and as a counted last resort
        (a cache smaller than one flush, or pages rejecting their
        insertions) falls back to one full migration — never silent, still
        logged/crash-point-covered like any migration.
        """
        masm = self.masm
        sim_interleave("governor.make_room")
        cfg = self.config
        cache = masm.cache_bytes
        budget = int(cache * cfg.critical_watermark)
        if masm.cached_run_bytes + incoming_bytes <= budget:
            self.watermark_state()
            return
        with trace(f"{self.scope}.make_room", incoming=incoming_bytes):
            for _ in range(cfg.max_steps_per_room):
                if not masm.runs:
                    break
                if masm.cached_run_bytes + incoming_bytes <= budget:
                    break
                self.migrate_step(min_fraction=0.25)
            if masm.runs and masm.cached_run_bytes + incoming_bytes > cache:
                # Last resort: the paced sweep could not keep up.
                self._forced_full.add(1)
                masm.migrate()
        self.watermark_state()

    # ----------------------------------------------------------- scheduling
    def on_scan_end(self) -> None:
        """Between-scans hook: paced migration, then a compaction slice.

        The two background duties share the gap between scans under one
        priority rule: migration (which frees cache space) runs first when
        occupancy is high; compaction slices run whenever occupancy is below
        CRITICAL — above that every device-second must go to making room.
        """
        state = self.watermark_state()
        if self.config.migrate_between_scans and state >= STATE_HIGH:
            self.migrate_step()
        compactor = self.masm.compactor
        if compactor is not None and state < STATE_CRITICAL:
            compactor.maybe_step()

    def on_full_migration(self) -> None:
        """A full/coordinated migration emptied the cache: reset the sweep."""
        self._cursor = None
        self.watermark_state()

    # ------------------------------------------------------------- reporting
    def report(self) -> dict:
        """JSON-ready snapshot of the governor's counters and state."""
        return {
            "scope": self.scope,
            "policy": self.config.overload_policy.value,
            "utilization": self.utilization(),
            "watermark_state": self.watermark_name(),
            "admitted": self._admitted.value,
            "delayed": self._delayed.value,
            "shed": self._shed.value,
            "sync_migrate_steps": self._sync_steps.value,
            "migrate_steps": self._steps.value,
            "forced_full_migrations": self._forced_full.value,
            "migrated_updates": self._migrated_updates.value,
            "tokens": self.bucket.tokens if self.bucket is not None else None,
            "slice_fraction": self.pacer.fraction,
        }
