"""Materialized sorted runs of cached updates on the SSD (Section 3.1).

A run is an immutable, key-sorted sequence of update records packed into
fixed-size blocks.  Blocks never split a record; each block starts with a
record count.  The run index (one first-key per block) is built while the
run is written and kept in memory.

Runs are written with large sequential SSD I/Os (no random SSD writes —
design goal 2) and scanned with batched block reads narrowed by the run
index.  Partial migration (Section 3.5) marks key ranges of a run as
migrated; scans skip updates inside migrated ranges.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice
from typing import Iterable, Iterator, Optional

from repro.core.blockcache import DecodedBlockCache
from repro.core.runindex import COARSE_GRANULARITY, RunIndex
from repro.core.update import (
    BLOCK_HEADER,
    ColumnarBlock,
    UpdateCodec,
    UpdateRecord,
)
from repro.errors import ChecksumError, StorageError
from repro.obs.registry import get_registry
from repro.storage import checksum as _checksum
from repro.storage.file import SimFile, StorageVolume
from repro.util.units import MB, ceil_div

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

_BLOCK_HEADER = BLOCK_HEADER  # record count (framing owned by the codec)

#: Updates are encoded in batches of this many records when writing a run.
ENCODE_BATCH = 1024

#: Blocks are grouped into write I/Os of this size when materializing a run.
DEFAULT_WRITE_CHUNK = 1 * MB

#: Block reads are batched in groups of this many requests.
READ_BATCH_BLOCKS = 128


def _coalesce_into(ranges: list[tuple[int, int]], begin_key: int, end_key: int) -> None:
    """Insert [begin, end] into a sorted, disjoint, non-adjacent range list."""
    if end_key < begin_key:
        return
    i = bisect_left(ranges, (begin_key,))
    if i > 0 and ranges[i - 1][1] >= begin_key - 1:
        i -= 1
        begin_key = ranges[i][0]
    j = i
    while j < len(ranges) and ranges[j][0] <= end_key + 1:
        end_key = max(end_key, ranges[j][1])
        j += 1
    ranges[i:j] = [(begin_key, end_key)]


def _covers(ranges: list[tuple[int, int]], lo: int, hi: int) -> bool:
    """True when the coalesced range list covers every key in [lo, hi]."""
    covered = lo
    for r_lo, r_hi in sorted(ranges):
        if r_lo > covered:
            return False
        covered = max(covered, r_hi + 1)
        if covered > hi:
            return True
    return covered > hi


class MaterializedSortedRun:
    """One immutable sorted run plus its in-memory run index."""

    def __init__(
        self,
        name: str,
        file: SimFile,
        codec: UpdateCodec,
        index: RunIndex,
        num_blocks: int,
        count: int,
        min_key: int,
        max_key: int,
        min_ts: int,
        max_ts: int,
        passes: int = 1,
    ) -> None:
        self.name = name
        self.file = file
        self.codec = codec
        self.index = index
        self.num_blocks = num_blocks
        self.count = count
        self.min_key = min_key
        self.max_key = max_key
        self.min_ts = min_ts
        self.max_ts = max_ts
        #: 1 for runs flushed straight from memory, 2 for merged runs.
        self.passes = passes
        #: Key ranges already migrated back to the main data (Section 3.5).
        self.migrated_ranges: list[tuple[int, int]] = []
        #: Key ranges already merged into a slice product by the incremental
        #: compaction scheduler; the product run is the durable home of these
        #: records, so scans skip them here exactly like migrated ranges.
        self.merged_ranges: list[tuple[int, int]] = []
        #: Locked as a victim of an open compaction plan: structural merges
        #: and migrations must leave the run alone until the plan releases
        #: it, or recovery's ordered replay would double-apply its records.
        self.compacting = False
        #: Set when a block failed checksum verification after retries; the
        #: run's SSD copy can no longer be trusted and scans must fall back
        #: to redo-log replay of its timestamp range.
        self.quarantined = False
        self.quarantine_reason: Optional[str] = None
        #: The timestamp range of *logged* updates this run is the durable
        #: home of.  Equals [min_ts, max_ts] of the content except when
        #: flush-time duplicate merging narrowed the content's span; the
        #: redo-log fallback replays this range, not the content's.
        self.covered_min_ts = min_ts
        self.covered_max_ts = max_ts

    # ------------------------------------------------------------- integrity
    def quarantine(self, reason: str) -> bool:
        """Mark the run as damaged; returns True if it was newly quarantined."""
        if self.quarantined:
            return False
        self.quarantined = True
        self.quarantine_reason = reason
        get_registry().counter("masm.runs.quarantined").add(1)
        return True

    def verify_blocks(self) -> list[int]:
        """Checksum-verify every block (scrub); returns damaged block numbers.

        Reads the whole run with large sequential I/Os.  Verification
        failures are collected, not raised, so one bad block does not hide
        others — the caller decides whether to quarantine.
        """
        damaged: list[int] = []
        offset = 0
        total = self.num_blocks * self.block_size
        while offset < total:
            chunk = min(DEFAULT_WRITE_CHUNK, total - offset)
            data = self.file.read(offset, chunk)
            for base in range(0, chunk, self.block_size):
                block_no = (offset + base) // self.block_size
                try:
                    _checksum.verify(
                        data[base : base + self.block_size],
                        context=f"run {self.name!r} block {block_no}",
                    )
                except ChecksumError:
                    damaged.append(block_no)
            offset += chunk
        return damaged

    # -------------------------------------------------------------- geometry
    @property
    def block_size(self) -> int:
        return self.index.block_size

    @property
    def size_bytes(self) -> int:
        """SSD bytes occupied (whole blocks)."""
        return self.num_blocks * self.block_size

    def pages(self, page_size: int) -> int:
        return ceil_div(self.size_bytes, page_size)

    # ----------------------------------------------------------------- scans
    def scan(
        self,
        begin_key: int,
        end_key: int,
        query_ts: Optional[int] = None,
        after: Optional[tuple[int, int]] = None,
        cache: Optional[DecodedBlockCache] = None,
        stats=None,
    ) -> Iterator[UpdateRecord]:
        """Stream updates with keys in [begin, end], in (key, ts) order.

        ``query_ts`` hides updates later than the query (Section 3.2's
        timestamp visibility).  ``after`` resumes past a (key, ts) position —
        used when a Mem_scan hands over to a Run_scan mid-query.

        The block-granular fast path: each 64 KB block is decoded whole (or
        fetched from the shared ``cache``, skipping the SSD read entirely),
        the query's slice of the block found by binary search, and untouched
        records never materialized.  ``stats`` (a ``MaSMStats``-like object)
        receives ``blocks_decoded`` increments.
        """
        span = self.index.block_span(begin_key, end_key)
        if span is None:
            return
        first_block, last_block = span
        # Snapshot the masked ranges (migrated + merged) once per scan; both
        # lists are kept coalesced, disjoint, and sorted, so membership in
        # their union is one bisect over the merged snapshot.
        migrated = self.masked_spans()
        migrated_starts = [lo for lo, _ in migrated] if migrated else None
        for _, entry in self._iter_decoded_blocks(
            first_block, last_block, cache, stats
        ):
            records = entry.records()
            keys = entry.key_list()
            if not keys:
                continue
            if keys[0] > end_key:
                return  # blocks are key-ordered: nothing further matches
            lo = 0
            if keys[0] < begin_key:
                lo = bisect_left(keys, begin_key)
            if after is not None:
                after_key, after_ts = after
                pos = bisect_left(keys, after_key, lo)
                while (
                    pos < len(keys)
                    and keys[pos] == after_key
                    and records[pos].timestamp <= after_ts
                ):
                    pos += 1
                lo = pos
            hi = len(keys)
            if keys[-1] > end_key:
                hi = bisect_right(keys, end_key, lo)
            if lo >= hi:
                continue
            if query_ts is None and migrated_starts is None:
                if lo == 0 and hi == len(records):
                    yield from records
                else:
                    yield from records[lo:hi]
            else:
                for i in range(lo, hi):
                    update = records[i]
                    if query_ts is not None and update.timestamp > query_ts:
                        continue
                    if migrated_starts is not None:
                        j = bisect_right(migrated_starts, keys[i]) - 1
                        if j >= 0 and keys[i] <= migrated[j][1]:
                            continue
                    yield update

    def _iter_decoded_blocks(
        self,
        first_block: int,
        last_block: int,
        cache: Optional[DecodedBlockCache],
        stats,
    ) -> Iterator[tuple[int, ColumnarBlock]]:
        """Yield (block_no, ColumnarBlock) over a block range, in order.

        The shared loading core of :meth:`scan` and :meth:`slice_columns`:
        cache lookups first, then batched SSD reads for the misses, each
        block checksum-verified before anything is yielded from it.  Yielded
        entries are lazy — neither columns nor records are materialized
        here, so each consumer pays only for the forms it touches.
        """
        block_size = self.block_size
        name = self.name
        block = first_block
        while block <= last_block:
            group_end = min(block + READ_BATCH_BLOCKS - 1, last_block)
            group = range(block, group_end + 1)
            decoded: dict[int, ColumnarBlock] = {}
            if cache is not None:
                missing = []
                for b in group:
                    entry = cache.get(name, b)
                    if entry is None:
                        missing.append(b)
                    else:
                        decoded[b] = entry
            else:
                missing = list(group)
            if missing:
                requests = [(b * block_size, block_size) for b in missing]
                for b, data in zip(missing, self.file.read_batch(requests)):
                    _checksum.verify(data, context=f"run {name!r} block {b}")
                    entry = ColumnarBlock(data, self.codec)
                    if stats is not None:
                        stats.blocks_decoded += 1
                    if cache is not None:
                        cache.put(name, b, entry)
                    decoded[b] = entry
            for b in group:
                yield b, decoded[b]
            block = group_end + 1

    def slice_columns(
        self,
        begin_key: int,
        end_key: int,
        query_ts: Optional[int] = None,
        after: Optional[tuple[int, int]] = None,
        cache: Optional[DecodedBlockCache] = None,
        stats=None,
    ):
        """Columnar form of :meth:`scan`: the run's contribution to one key
        partition as (keys, timestamps, records) — int64 arrays plus the
        aligned record *object ndarray*, all filters already applied.

        This is what the merge kernels consume (one call per partition per
        run).  Returns None when the partition is empty for this run.
        Requires numpy; callers gate on :func:`repro.core.kernels.enabled`.
        Raises the same :class:`ChecksumError`/:class:`TransientIOError` a
        scan would — but always *before* any data escapes (the whole slice
        is built atomically), so the caller can swap in the fallback stream
        from the last partition boundary.
        """
        span = self.index.block_span(begin_key, end_key)
        if span is None:
            return None
        first_block, last_block = span
        migrated = self.masked_spans()
        key_parts = []
        ts_parts = []
        rec_parts = []
        for _, entry in self._iter_decoded_blocks(
            first_block, last_block, cache, stats
        ):
            if not entry.count:
                continue
            keys = entry.keys
            if keys[0] > end_key:
                break  # blocks are key-ordered: nothing further matches
            lo = 0
            if keys[0] < begin_key:
                lo = int(_np.searchsorted(keys, begin_key, side="left"))
            hi = len(keys)
            if keys[hi - 1] > end_key:
                hi = int(_np.searchsorted(keys, end_key, side="right"))
            if after is not None and lo < hi:
                after_key, after_ts = after
                if keys[lo] <= after_key:
                    ts = entry.timestamps
                    pos = int(_np.searchsorted(keys, after_key, side="left"))
                    pos = max(pos, lo)
                    while (
                        pos < hi
                        and keys[pos] == after_key
                        and ts[pos] <= after_ts
                    ):
                        pos += 1
                    lo = pos
            if lo >= hi:
                continue
            key_parts.append(keys[lo:hi])
            ts_parts.append(entry.timestamps[lo:hi])
            rec_parts.append(entry.records_arr()[lo:hi])
        if not key_parts:
            return None
        if len(key_parts) == 1:
            keys, ts, records = key_parts[0], ts_parts[0], rec_parts[0]
        else:
            keys = _np.concatenate(key_parts)
            ts = _np.concatenate(ts_parts)
            records = _np.concatenate(rec_parts)
        mask = None
        if query_ts is not None:
            visible = ts <= query_ts
            if not visible.all():
                mask = visible
        if migrated:
            for m_lo, m_hi in migrated:
                inside = (keys >= m_lo) & (keys <= m_hi)
                if inside.any():
                    outside = ~inside
                    mask = outside if mask is None else (mask & outside)
        if mask is not None:
            keys = keys[mask]
            ts = ts[mask]
            records = records[mask]
        if not len(keys):
            return None
        return keys, ts, records

    def scan_records(
        self,
        begin_key: int,
        end_key: int,
        query_ts: Optional[int] = None,
        after: Optional[tuple[int, int]] = None,
    ) -> Iterator[UpdateRecord]:
        """Record-at-a-time reference scan (the pre-batch implementation).

        Kept verbatim as the equivalence oracle for the batch fast path: the
        property suite asserts :meth:`scan` yields identical output.
        """
        span = self.index.block_span(begin_key, end_key)
        if span is None:
            return
        first_block, last_block = span
        block = first_block
        while block <= last_block:
            group_end = min(block + READ_BATCH_BLOCKS - 1, last_block)
            requests = [
                (b * self.block_size, self.block_size)
                for b in range(block, group_end + 1)
            ]
            for b, data in zip(range(block, group_end + 1), self.file.read_batch(requests)):
                _checksum.verify(data, context=f"run {self.name!r} block {b}")
                yield from self._decode_block_records(
                    data, begin_key, end_key, query_ts, after
                )
            block = group_end + 1

    def _decode_block_records(
        self,
        data: bytes,
        begin_key: int,
        end_key: int,
        query_ts: Optional[int],
        after: Optional[tuple[int, int]],
    ) -> Iterator[UpdateRecord]:
        (count,) = _BLOCK_HEADER.unpack_from(data, 0)
        offset = _BLOCK_HEADER.size
        for _ in range(count):
            update, offset = self.codec.decode(data, offset)
            if update.key < begin_key:
                continue
            if update.key > end_key:
                return
            if query_ts is not None and update.timestamp > query_ts:
                continue
            if after is not None and update.sort_key() <= after:
                continue
            if self._is_migrated(update.key):
                continue
            yield update

    def raw_records(
        self,
        min_ts: Optional[int] = None,
        max_ts: Optional[int] = None,
    ) -> Iterator[UpdateRecord]:
        """Every record in the run, filtered only by timestamp span.

        Unlike :meth:`scan`, migrated ranges are *not* filtered: this is the
        donor side of peer repair, which must hand over the run's complete
        durable content — the receiver keeps its own migrated-range
        bookkeeping.  Blocks are checksum-verified, so a damaged donor run
        raises instead of spreading corruption.
        """
        for block in range(self.num_blocks):
            data = self.file.read(block * self.block_size, self.block_size)
            _checksum.verify(data, context=f"run {self.name!r} block {block}")
            (count,) = _BLOCK_HEADER.unpack_from(data, 0)
            offset = _BLOCK_HEADER.size
            for _ in range(count):
                update, offset = self.codec.decode(data, offset)
                if min_ts is not None and update.timestamp < min_ts:
                    continue
                if max_ts is not None and update.timestamp > max_ts:
                    continue
                yield update

    def block_digests(self) -> list[int]:
        """Per-block CRC digests for cross-replica anti-entropy comparison.

        Reads are uncharged (:meth:`SimFile.peek`) — digesting is a
        comparison aid, not data-path I/O — and blocks are *not* verified:
        a damaged block must still produce its (wrong) digest so peers can
        detect the divergence.
        """
        digests: list[int] = []
        for block in range(self.num_blocks):
            data = self.file.peek(block * self.block_size, self.block_size)
            digests.append(_checksum.checksum(data))
        return digests

    # ------------------------------------------------------------- migration
    def mark_migrated(self, begin_key: int, end_key: int) -> None:
        """Record that updates with keys in [begin, end] were migrated.

        Ranges are kept coalesced (sorted, disjoint, non-adjacent) so that
        per-record checks during scans are a single binary search instead of
        a linear pass — and repeated partial migrations cannot grow the list
        quadratically.
        """
        _coalesce_into(self.migrated_ranges, begin_key, end_key)

    def mark_merged(self, begin_key: int, end_key: int) -> None:
        """Record that keys in [begin, end] moved into a merge-slice product.

        Same coalesced bookkeeping as :meth:`mark_migrated`, kept as a
        separate list because the two retirements answer different
        questions: migrated data lives in the main table, merged data lives
        in another run — migration accounting must not see merge masks.
        """
        _coalesce_into(self.merged_ranges, begin_key, end_key)

    def masked_spans(self) -> list[tuple[int, int]]:
        """The scan-invisible key ranges: migrated ∪ merged, coalesced."""
        if not self.merged_ranges:
            return list(self.migrated_ranges)
        if not self.migrated_ranges:
            return list(self.merged_ranges)
        combined: list[tuple[int, int]] = []
        for lo, hi in sorted(self.migrated_ranges + self.merged_ranges):
            if combined and lo <= combined[-1][1] + 1:
                combined[-1] = (combined[-1][0], max(combined[-1][1], hi))
            else:
                combined.append((lo, hi))
        return combined

    def _is_migrated(self, key: int) -> bool:
        ranges = self.masked_spans()
        if not ranges:
            return False
        i = bisect_right(ranges, (key, float("inf"))) - 1
        return i >= 0 and ranges[i][0] <= key <= ranges[i][1]

    def fully_migrated(self, table_min: int, table_max: int) -> bool:
        """True if the migrated ranges cover [table_min, table_max]."""
        return _covers(self.migrated_ranges, table_min, table_max)

    def fully_merged(self, key_min: int, key_max: int) -> bool:
        """True if the merge-slice masks cover [key_min, key_max]."""
        return _covers(self.merged_ranges, key_min, key_max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MaterializedSortedRun({self.name!r}, {self.count} updates, "
            f"{self.num_blocks} blocks of {self.block_size}B, "
            f"keys [{self.min_key}, {self.max_key}], pass={self.passes})"
        )


def load_run(
    volume: StorageVolume,
    name: str,
    codec: UpdateCodec,
    block_size: int = COARSE_GRANULARITY,
    passes: int = 1,
) -> MaterializedSortedRun:
    """Rebuild a run's in-memory metadata from its SSD file (crash recovery).

    Materialized runs survive a crash on the non-volatile SSD; only their
    in-memory run index and statistics are lost.  This reads the run once
    (large sequential I/Os), checksum-verifying every block, and
    reconstructs them.  A damaged block raises :class:`ChecksumError` —
    recovery treats the whole run as damaged and rebuilds it from the redo
    log rather than trusting a partially verified file.
    """
    file = volume.open(name)
    num_blocks = file.size // block_size
    first_keys: list[int] = []
    count = 0
    min_key = max_key = None
    min_ts = max_ts = None
    offset = 0
    while offset < num_blocks * block_size:
        chunk = min(DEFAULT_WRITE_CHUNK, num_blocks * block_size - offset)
        data = file.read(offset, chunk)
        for base in range(0, chunk, block_size):
            _checksum.verify(
                data[base : base + block_size],
                context=f"run {name!r} block {(offset + base) // block_size}",
            )
            records = codec.decode_block(data, base)
            for update in records:
                if min_key is None:
                    min_key = max_key = update.key
                    min_ts = max_ts = update.timestamp
                max_key = max(max_key, update.key)
                min_key = min(min_key, update.key)
                min_ts = min(min_ts, update.timestamp)
                max_ts = max(max_ts, update.timestamp)
            count += len(records)
            first_keys.append(records[0].key if records else 0)
        offset += chunk
    if count == 0:
        raise StorageError(f"run file {name!r} contains no update records")
    return MaterializedSortedRun(
        name=name,
        file=file,
        codec=codec,
        index=RunIndex(first_keys, block_size),
        num_blocks=num_blocks,
        count=count,
        min_key=min_key,
        max_key=max_key,
        min_ts=min_ts,
        max_ts=max_ts,
        passes=passes,
    )


def write_run(
    volume: StorageVolume,
    name: str,
    updates: Iterable[UpdateRecord],
    codec: UpdateCodec,
    block_size: int = COARSE_GRANULARITY,
    write_chunk: int = DEFAULT_WRITE_CHUNK,
    passes: int = 1,
    size_hint: Optional[int] = None,
) -> MaterializedSortedRun:
    """Materialize a (key, ts)-sorted update stream as a run on ``volume``.

    ``size_hint`` pre-allocates the file for streaming writers (merges); the
    extent is shrunk to the written size afterwards.  Raises
    :class:`StorageError` if the stream is empty or out of order.
    """
    if write_chunk % block_size != 0:
        write_chunk = block_size * max(1, write_chunk // block_size)

    first_keys: list[int] = []
    blocks_in_chunk: list[bytes] = []
    block_records: list[bytes] = []
    block_bytes = _BLOCK_HEADER.size
    block_first_key: Optional[int] = None

    stats = {
        "count": 0,
        "min_key": None,
        "max_key": None,
        "min_ts": None,
        "max_ts": None,
    }
    file: Optional[SimFile] = None
    written_blocks = 0
    last_sort_key: Optional[tuple[int, int]] = None

    def ensure_file(total_hint: int) -> SimFile:
        nonlocal file
        if file is None:
            file = volume.create(name, total_hint)
        return file

    def flush_chunk() -> None:
        nonlocal written_blocks
        if not blocks_in_chunk:
            return
        data = b"".join(blocks_in_chunk)
        target = ensure_file(size_hint if size_hint else len(data))
        if target.append_pos + len(data) > target.size:
            raise StorageError(
                f"run {name!r} overflows its pre-allocated extent "
                f"({target.size} bytes; size_hint too small)"
            )
        target.append(data)
        written_blocks += len(blocks_in_chunk)
        blocks_in_chunk.clear()

    def close_block() -> None:
        nonlocal block_records, block_bytes, block_first_key
        if not block_records:
            return
        body = codec.frame_block(block_records)
        blocks_in_chunk.append(_checksum.seal(body, block_size))
        first_keys.append(block_first_key)
        block_records = []
        block_bytes = _BLOCK_HEADER.size
        block_first_key = None
        # Without a size hint the file cannot be allocated yet; buffer all
        # blocks and write once at the end (1-pass runs fit in memory by
        # construction — they come from the in-memory buffer).
        if size_hint is not None and len(blocks_in_chunk) * block_size >= write_chunk:
            flush_chunk()

    # Encode in batches so the codec can run one tight pre-bound loop per
    # ENCODE_BATCH updates instead of re-resolving packers per record.
    stream = iter(updates)
    while True:
        batch = list(islice(stream, ENCODE_BATCH))
        if not batch:
            break
        for update, encoded in zip(batch, codec.encode_many(batch)):
            sort_key = (update.key, update.timestamp)
            if last_sort_key is not None and sort_key < last_sort_key:
                raise StorageError(
                    f"updates for run {name!r} are not (key, ts)-sorted"
                )
            last_sort_key = sort_key
            # Each block's payload budget leaves room for the checksum
            # trailer stamped by close_block.
            payload_budget = block_size - _checksum.TRAILER_SIZE
            if _BLOCK_HEADER.size + len(encoded) > payload_budget:
                raise StorageError(
                    f"update of {len(encoded)} bytes exceeds block size {block_size}"
                )
            if block_bytes + len(encoded) > payload_budget:
                close_block()
            if block_first_key is None:
                block_first_key = update.key
            block_records.append(encoded)
            block_bytes += len(encoded)
            stats["count"] += 1
            if stats["min_key"] is None:
                stats["min_key"] = update.key
                stats["min_ts"] = stats["max_ts"] = update.timestamp
            stats["max_key"] = update.key
            stats["min_ts"] = min(stats["min_ts"], update.timestamp)
            stats["max_ts"] = max(stats["max_ts"], update.timestamp)

    close_block()
    if stats["count"] == 0:
        raise StorageError(f"refusing to materialize empty run {name!r}")
    if size_hint is None and file is None:
        # Everything still buffered: allocate exactly and write once.
        data = b"".join(blocks_in_chunk)
        file = volume.create(name, len(data))
        file.append(data)
        written_blocks = len(blocks_in_chunk)
        blocks_in_chunk.clear()
    else:
        flush_chunk()

    if file is None:  # pragma: no cover - guarded by the count check above
        raise StorageError(f"run {name!r} was never allocated a file")
    used = written_blocks * block_size
    if used < file.size:
        shrink = getattr(volume, "shrink", None)
        if shrink is not None:
            shrink(name, used)

    index = RunIndex(first_keys, block_size)
    return MaterializedSortedRun(
        name=name,
        file=volume.open(name),
        codec=codec,
        index=index,
        num_blocks=written_blocks,
        count=stats["count"],
        min_key=stats["min_key"],
        max_key=stats["max_key"],
        min_ts=stats["min_ts"],
        max_ts=stats["max_ts"],
        passes=passes,
    )
