"""Shared-nothing MaSM (Section 5, "Shared-Nothing Architectures").

Large analytical warehouses distribute the main data across machine nodes
by hash or range partitioning; updates are routed to their node and queries
fan out.  Because both decompose into per-node operations, "we can apply
MaSM algorithms on a per-machine-node basis" — each node gets its own disk,
SSD update cache, and MaSM instance.

:class:`ShardedWarehouse` builds exactly that: N nodes, a partitioning
function, routed updates, and fan-out range scans whose results merge back
into one key-ordered stream.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass
from itertools import chain
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.core import kernels
from repro.core.governor import STATE_HIGH
from repro.core.masm import MaSM, MaSMConfig
from repro.engine.record import Schema
from repro.engine.table import Table
from repro.storage.clock import SimClock
from repro.storage.disk import SimulatedDisk
from repro.storage.file import StorageVolume
from repro.storage.iosched import CpuMeter, OverlapWindow, TimeBreakdown
from repro.storage.ssd import SimulatedSSD
from repro.txn.log import RedoLog
from repro.txn.timestamps import TimestampOracle
from repro.util.units import MB


@dataclass
class ShardNode:
    """One shared-nothing node: local disk, local SSD, local MaSM."""

    node_id: int
    disk: SimulatedDisk
    ssd: SimulatedSSD
    table: Table
    masm: MaSM
    cpu: CpuMeter


def build_shard_node(
    node_id: int,
    schema: Schema,
    *,
    records_per_node: int,
    disk_capacity: int,
    ssd_capacity: int,
    masm_config: Optional[MaSMConfig],
    oracle: TimestampOracle,
    clock: Optional[SimClock] = None,
    wrap_device: Optional[Callable[[str, object], object]] = None,
    attach_log: bool = False,
    device_label: Optional[str] = None,
    table_name: Optional[str] = None,
    masm_name: Optional[str] = None,
    wal_name: Optional[str] = None,
) -> ShardNode:
    """Build one shared-nothing node: disk + SSD + table + MaSM (+ WAL).

    The single construction recipe both :class:`ShardedWarehouse` (one
    node per shard) and :class:`~repro.core.replication.ReplicaSet` (N
    identical nodes per shard) use, so a replica is byte-for-byte the same
    kind of node as an unreplicated shard.  ``masm_config`` is copied per
    node — each node builds its own governor, nothing is shared.
    """
    label = device_label if device_label is not None else str(node_id)
    disk = SimulatedDisk(capacity=disk_capacity, clock=clock)
    ssd = SimulatedSSD(capacity=ssd_capacity, clock=clock)
    if wrap_device is not None:
        disk = wrap_device(f"disk-{label}", disk)
        ssd = wrap_device(f"ssd-{label}", ssd)
    cpu = CpuMeter()
    ssd_volume = StorageVolume(ssd)
    table = Table.create(
        StorageVolume(disk),
        table_name if table_name is not None else f"shard-{node_id}",
        schema,
        records_per_node,
        cpu=cpu,
    )
    config = (
        dataclasses.replace(masm_config)
        if masm_config is not None
        else MaSMConfig(alpha=1.2, auto_migrate=False)
    )
    masm = MaSM(
        table,
        ssd_volume,
        config=config,
        oracle=oracle,
        cpu=cpu,
        name=masm_name if masm_name is not None else f"masm-shard-{node_id}",
    )
    if attach_log:
        masm.attach_log(
            RedoLog(
                ssd_volume.create(
                    wal_name if wal_name is not None else f"wal-{node_id}",
                    ssd.capacity // 4,
                )
            )
        )
    return ShardNode(node_id, disk, ssd, table, masm, cpu)


def hash_partitioner(num_nodes: int) -> Callable[[int], int]:
    """Key -> node by hash (golden-ratio multiplicative, stable)."""

    def route(key: int) -> int:
        mixed = (key * 2654435761) & 0xFFFFFFFF
        # Use the high bits: the low bits of a multiplicative hash preserve
        # the key's parity, which would starve half the nodes for even keys.
        return (mixed >> 17) % num_nodes

    return route


def range_partitioner(boundaries: Sequence[int]) -> Callable[[int], int]:
    """Key -> node by range: node i holds keys < boundaries[i]."""
    import bisect

    bounds = list(boundaries)

    def route(key: int) -> int:
        return bisect.bisect_right(bounds, key)

    return route


class ShardedWarehouse:
    """N MaSM-equipped nodes behind one routing layer."""

    def __init__(
        self,
        schema: Schema,
        num_nodes: int,
        partitioner: Optional[Callable[[int], int]] = None,
        records_per_node: int = 20_000,
        disk_capacity: int = 256 * MB,
        ssd_capacity: int = 8 * MB,
        masm_config: Optional[MaSMConfig] = None,
        clock: Optional[SimClock] = None,
        wrap_device: Optional[Callable[[str, object], object]] = None,
        attach_logs: bool = False,
    ) -> None:
        """Build ``num_nodes`` shared-nothing nodes behind one router.

        ``clock`` shares ONE simulated timeline across every node's devices
        — the serving layer needs a single clock for session arrivals and
        latency accounting; leave it ``None`` for the legacy per-node
        timelines (``measure_scan``'s parallel critical path).

        ``wrap_device`` is the fault-injection hook: it is called as
        ``wrap_device("disk-0", device)`` / ``wrap_device("ssd-0", device)``
        for every node device and its return value is used instead — wrap
        a node's SSD in a :class:`~repro.storage.faults.FaultyDevice` to
        test degraded fan-out scans.

        ``attach_logs`` gives every node a local redo log on its SSD
        volume, enabling the quarantine + log-fallback read path when a
        shard's run blocks fail checksum verification mid-scan.
        """
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.schema = schema
        self.route = partitioner or hash_partitioner(num_nodes)
        self.oracle = TimestampOracle()  # global commit order
        #: The shared timeline, or None when every node keeps its own (the
        #: legacy layout measure_scan's parallel critical path relies on).
        self.clock: Optional[SimClock] = clock
        self.nodes: list[ShardNode] = [
            build_shard_node(
                node_id,
                schema,
                records_per_node=records_per_node,
                disk_capacity=disk_capacity,
                ssd_capacity=ssd_capacity,
                masm_config=masm_config,
                oracle=self.oracle,
                clock=clock,
                wrap_device=wrap_device,
                attach_log=attach_logs,
            )
            for node_id in range(num_nodes)
        ]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------- loading
    def bulk_load(self, records: Iterable[tuple]) -> None:
        """Partition and load records (each node bulk-loads its share)."""
        shares: list[list[tuple]] = [[] for _ in self.nodes]
        for record in records:
            shares[self.route(self.schema.key(record))].append(record)
        for node, share in zip(self.nodes, shares):
            share.sort(key=self.schema.key)
            node.table.bulk_load(share)

    @property
    def row_count(self) -> int:
        return sum(node.table.row_count for node in self.nodes)

    # -------------------------------------------------------------- updates
    def insert(self, record: tuple) -> int:
        node = self.nodes[self.route(self.schema.key(record))]
        return node.masm.insert(record)

    def delete(self, key: int) -> int:
        return self.nodes[self.route(key)].masm.delete(key)

    def modify(self, key: int, changes: dict) -> int:
        return self.nodes[self.route(key)].masm.modify(key, changes)

    # ---------------------------------------------------------------- scans
    def range_scan(
        self,
        begin_key: int,
        end_key: int,
        query_ts: Optional[int] = None,
    ) -> Iterator[tuple]:
        """Fan the scan out to every node; merge into one key-ordered stream.

        Nodes execute in parallel in a real deployment; here each node's
        I/O lands on its own simulated devices, so :meth:`measure_scan`
        reports the parallel critical path.  ``query_ts`` pins the scan to
        one already-drawn snapshot timestamp (the serving router's unit of
        isolation); by default every node scans at a fresh shared one.
        """
        if query_ts is None:
            query_ts = self.oracle.next()
        streams = [
            node.masm.range_scan(begin_key, end_key, query_ts=query_ts)
            for node in self.nodes
        ]
        return heapq.merge(*streams, key=self.schema.key)

    def partitioned_range_scan(
        self,
        begin_key: int,
        end_key: int,
        blocks_per_partition: int = kernels.DEFAULT_BLOCKS_PER_PARTITION,
        query_ts: Optional[int] = None,
    ) -> Iterator[tuple]:
        """Key-range-partitioned fan-out scan over one global snapshot.

        Draws ONE timestamp from the global oracle, then splits
        ``[begin, end]`` at block boundaries harvested from every node's
        run indexes (:func:`kernels.partition_points`).  Each partition
        fans out to all nodes with the shared ``query_ts`` — so every
        partition sees the same committed prefix even if flushes or
        migrations land between partitions — merges key-ordered across
        nodes, and partitions concatenate back into one ordered stream.
        Partitions are the natural unit of scan parallelism; here they
        run sequentially and each inner merge rides the columnar kernel
        path of its node's MaSM.  ``query_ts`` pins the whole fan-out to a
        caller-drawn snapshot (one timestamp per serving request).
        """
        if query_ts is None:
            query_ts = self.oracle.next()

        def scan_partition(lo: int, hi: int) -> Iterator[tuple]:
            streams = [
                node.masm.range_scan(lo, hi, query_ts=query_ts)
                for node in self.nodes
            ]
            return heapq.merge(*streams, key=self.schema.key)

        return chain.from_iterable(
            scan_partition(lo, hi)
            for lo, hi in self.partition_bounds(
                begin_key, end_key, blocks_per_partition
            )
        )

    def partition_bounds(
        self,
        begin_key: int,
        end_key: int,
        blocks_per_partition: int = kernels.DEFAULT_BLOCKS_PER_PARTITION,
    ) -> list[tuple[int, int]]:
        """Key-range partitions of ``[begin, end]`` from the run indexes.

        Each ``(lo, hi)`` is a closed sub-range; together they cover the
        requested range exactly.  Bounds come from block boundaries
        harvested across every node's run indexes, so partition sizes
        track where the cached updates actually are.  This is the shared
        planning step for :meth:`partitioned_range_scan` and the
        replicated fan-out executor (which schedules hedges and deadline
        checks per partition).
        """
        indexes = [
            run.index for node in self.nodes for run in node.masm.runs
        ]
        bounds = kernels.partition_points(
            indexes, begin_key, end_key, blocks_per_partition
        )
        return [
            (lo, end_key if hi is None else hi)
            for lo, hi in kernels.partition_ranges(bounds, begin_key, end_key)
        ]

    def measure_scan(self, begin_key: int, end_key: int) -> TimeBreakdown:
        """Run a fan-out scan and return the cross-node critical path."""
        devices = {}
        for node in self.nodes:
            devices[f"disk-{node.node_id}"] = node.disk
            devices[f"ssd-{node.node_id}"] = node.ssd
        window = OverlapWindow(devices)
        with window:
            for _ in self.range_scan(begin_key, end_key):
                pass
        return window.result

    # ------------------------------------------------------------ migration
    def migrate_all(self) -> None:
        """Migrate every node's cache (independent, node-local migrations)."""
        for node in self.nodes:
            node.masm.flush_buffer()
            if node.masm.runs:
                node.masm.migrate()

    def migrate_pressured(self, max_steps: Optional[int] = None) -> int:
        """Run paced migration slices across governed nodes, hottest first.

        Orders nodes by SSD-cache utilization (descending) and gives each
        node above its high watermark one paced slice, up to ``max_steps``
        slices total.  Returns the number of slices run.  Ungoverned nodes
        are skipped — they keep the legacy flush-time migration.
        """
        governed = sorted(
            (n for n in self.nodes if n.masm.governor is not None),
            key=lambda n: n.masm.utilization,
            reverse=True,
        )
        steps = 0
        for node in governed:
            if max_steps is not None and steps >= max_steps:
                break
            governor = node.masm.governor
            if node.masm.runs and governor.watermark_state() >= STATE_HIGH:
                if governor.migrate_step():
                    steps += 1
        return steps

    def overload_report(self) -> list[dict]:
        """Per-node governor snapshots (empty when nodes are ungoverned)."""
        return [
            node.masm.governor.report()
            for node in self.nodes
            if node.masm.governor is not None
        ]

    # ------------------------------------------------------------- balance
    def cache_utilizations(self) -> list[float]:
        return [node.masm.utilization for node in self.nodes]

    def shard_sizes(self) -> list[int]:
        return [node.table.row_count for node in self.nodes]
