"""Lazily maintained materialized views over MaSM (Section 5, citing [25]).

Eager view maintenance puts view updates on the critical path of every
incoming update; lazy maintenance postpones the work "until the DW has free
cycles or a query references the view".  With differential updates this is
natural: "treating the view maintenance operations as normal queries" — a
refresh is just a MaSM range scan at a fresh timestamp.

:class:`LazyMaterializedView` keeps a filtered/projected copy of a table
with a freshness timestamp.  Reads refresh on demand (lazily); an idle-time
maintenance hook (:meth:`maintain`) refreshes without a waiting query.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.core.masm import MaSM


class LazyMaterializedView:
    """A predicate+projection view, refreshed lazily from MaSM scans."""

    def __init__(
        self,
        masm: MaSM,
        name: str,
        predicate: Optional[Callable[[tuple], bool]] = None,
        projection: Optional[Sequence[str]] = None,
        key_range: Optional[tuple[int, int]] = None,
    ) -> None:
        self.masm = masm
        self.name = name
        self.predicate = predicate or (lambda record: True)
        schema = masm.table.schema
        if projection is not None:
            self._positions: Optional[list[int]] = [
                schema.index_of(field) for field in projection
            ]
        else:
            self._positions = None
        self.key_range = key_range or masm.table.full_key_range()
        self._rows: list[tuple] = []
        #: Timestamp of the last refresh; updates after it are not reflected.
        #: -1 means never materialized, so the first read always refreshes.
        self.fresh_as_of = -1
        self.refreshes = 0

    # ------------------------------------------------------------ freshness
    @property
    def is_stale(self) -> bool:
        """True if an update committed after the last refresh."""
        return self.masm.last_update_ts > self.fresh_as_of

    def _project(self, record: tuple) -> tuple:
        if self._positions is None:
            return record
        return tuple(record[i] for i in self._positions)

    def refresh(self) -> int:
        """Recompute the view contents from a fresh MaSM scan.

        The refresh is "a normal query": it sees every update committed
        before its timestamp, like any other MaSM range scan.  The view is
        stale exactly when an update committed after the refresh timestamp
        (tracked by the engine's ``last_update_ts``).
        """
        as_of = self.masm.oracle.next()
        rows = []
        for record in self.masm.range_scan(*self.key_range, query_ts=as_of):
            if self.predicate(record):
                rows.append(self._project(record))
        self._rows = rows
        self.fresh_as_of = as_of
        self.refreshes += 1
        return len(rows)

    # ----------------------------------------------------------------- reads
    def read(self) -> Iterator[tuple]:
        """Lazy read: refresh first if any newer update exists."""
        if self.is_stale:
            self.refresh()
        return iter(self._rows)

    def read_stale(self) -> Iterator[tuple]:
        """Read whatever was materialized, without maintenance (monitoring
        dashboards that tolerate bounded staleness)."""
        return iter(self._rows)

    def maintain(self) -> bool:
        """Idle-time maintenance: refresh only if stale; True if it ran."""
        if self.is_stale:
            self.refresh()
            return True
        return False

    def __len__(self) -> int:
        return len(self._rows)


class ViewCatalog:
    """A set of lazy views over one MaSM table, maintained together."""

    def __init__(self, masm: MaSM) -> None:
        self.masm = masm
        self._views: dict[str, LazyMaterializedView] = {}

    def define(
        self,
        name: str,
        predicate: Optional[Callable[[tuple], bool]] = None,
        projection: Optional[Sequence[str]] = None,
        key_range: Optional[tuple[int, int]] = None,
    ) -> LazyMaterializedView:
        if name in self._views:
            raise ValueError(f"view {name!r} already defined")
        view = LazyMaterializedView(
            self.masm, name, predicate=predicate, projection=projection,
            key_range=key_range,
        )
        self._views[name] = view
        return view

    def __getitem__(self, name: str) -> LazyMaterializedView:
        return self._views[name]

    def __iter__(self) -> Iterator[LazyMaterializedView]:
        return iter(self._views.values())

    def maintain_all(self) -> int:
        """Idle-time pass over every view; returns how many refreshed."""
        return sum(1 for view in self._views.values() if view.maintain())

    def stale_views(self) -> list[str]:
        return [v.name for v in self._views.values() if v.is_stale]
