"""In-place migration of cached updates back to the main data (Section 3.2).

Full migration performs a table scan whose output is written back to disk:
pages stream in with large sequential reads, cached updates merge in (an
outer join in page mode), and rebuilt pages stream out with large sequential
writes *behind* the read frontier — in place, without a second copy of the
data (design goal 4).  Every rebuilt page carries the timestamp of the last
update applied to it, which is what lets concurrent and later queries decide
whether a cached update is already reflected in a page.

Partial migration (Section 3.5's "migrate a portion of updates at a time")
applies a key range with page-granular read-modify-writes, marking migrated
ranges on each run; a page that cannot absorb its insertions is skipped
whole (all-or-nothing per page) so the timestamp rule stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.operators import MergeUpdates
from repro.core.update import UpdateRecord, UpdateType, apply_update
from repro.engine.heapfile import DEFAULT_FILL_FACTOR
from repro.engine.page import SlottedPage
from repro.errors import StorageError
from repro.obs import get_registry, trace
from repro.storage.faults import crash_point
from repro.sim.hooks import interleave as sim_interleave

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.masm import MaSM


@dataclass
class MigrationStats:
    """Outcome of one migration operation."""

    timestamp: int
    pages_read: int = 0
    pages_written: int = 0
    updates_applied: int = 0
    inserts_deferred: int = 0  # partial migration: inserts left cached
    rows_after: int = 0
    runs_retired: int = 0

    def publish(self, kind: str) -> None:
        """Accumulate this outcome onto the process-wide migration counters
        (``migration.pages_read``, ...), tagged by migration kind."""
        registry = get_registry()
        registry.counter(f"migration.{kind}.count").add(1)
        for field_name in (
            "pages_read",
            "pages_written",
            "updates_applied",
            "inserts_deferred",
            "runs_retired",
        ):
            registry.counter(f"migration.{field_name}").add(
                getattr(self, field_name)
            )


def migrate_all(masm: "MaSM", redo_log=None) -> Optional[MigrationStats]:
    """Migrate every cached run into the table, rewriting it in place."""
    table = masm.table
    heap = table.heap
    schema = table.schema
    # Victims locked by an open compaction plan must stay cached: their
    # unmasked records are about to be re-homed into slice products, and
    # migrating them here would apply those records twice after publication.
    held = [run for run in masm.runs if run.compacting]
    runs = [run for run in masm.runs if not run.compacting]
    if not runs:
        return None
    sim_interleave("migration.full")
    t = masm.oracle.next()
    if redo_log is not None:
        redo_log.log_migration_start(t, [run.name for run in runs])

    full = (0, 2**63 - 1)
    updates = iter(
        MergeUpdates(
            masm.run_update_sources(runs, *full, query_ts=t, use_cache=False),
            schema,
            cpu=masm.cpu,
        )
    )
    stats = MigrationStats(timestamp=t)
    with trace("migration.full", runs=len(runs)):
        stats.rows_after, entries, out_pages = rewrite_heap_with_updates(
            heap, schema, updates, stats
        )
        heap.truncate(out_pages)
        table.replace_contents(entries, stats.rows_after)
        if redo_log is not None:
            redo_log.log_migration_end(t)
        masm.retire_runs(runs, barrier_ts=t)
        # Every durable (non-buffered) update with ts <= t is now applied in
        # place; the checkpoint fence caps below any still-buffered update.
        # Held compaction victims are the exception — their span stays
        # cached, so the fence must stop below it.
        if held:
            fence = min(run.covered_min_ts for run in held) - 1
            masm.migrated_through = max(masm.migrated_through, min(t, fence))
        else:
            masm.migrated_through = max(masm.migrated_through, t)
        stats.runs_retired = len(runs)
    stats.publish("full")
    return stats


def rewrite_heap_with_updates(
    heap, schema, updates: Iterator[UpdateRecord], stats: MigrationStats
) -> tuple[int, list[tuple[int, int]], int]:
    """Stream-rewrite the heap applying ``updates``; in-place write-behind.

    Returns (row_count, sparse index entries, output page count).
    """
    generator = rewrite_heap_streaming(heap, schema, updates, stats)
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value


def rewrite_heap_streaming(
    heap, schema, updates: Iterator[UpdateRecord], stats: MigrationStats
):
    """Generator form of the in-place rewrite: yields every output record.

    This is what makes the "combine the migration with a table scan query"
    optimization of Section 3.5 possible — a query can consume the merged
    record stream while the very same pass writes the pages back.  Returns
    (row_count, sparse index entries, output page count) as the generator's
    value.
    """
    page_size = heap.page_size
    budget = int((page_size - 24) * DEFAULT_FILL_FACTOR)
    chunk_pages = heap.pages_per_chunk

    out_chunk: list[SlottedPage] = []
    entries: list[tuple[int, int]] = []
    rows = 0
    read_frontier = 0  # input pages consumed
    write_frontier = 0  # output pages written

    current = SlottedPage(page_size)
    current_used = 0
    current_first_key: Optional[int] = None

    def close_current() -> None:
        nonlocal current, current_used, current_first_key
        entries.append(
            (current_first_key if current_first_key is not None else 0,
             write_frontier + len(out_chunk))
        )
        out_chunk.append(current)
        current = SlottedPage(page_size)
        current_used = 0
        current_first_key = None

    def flush_out(force: bool = False) -> None:
        """Write buffered output pages behind the read frontier.

        In-place safety: a non-forced flush never writes a page the scan has
        not read yet.  A forced flush (input exhausted) may extend into the
        file's slack capacity.
        """
        nonlocal write_frontier
        while out_chunk:
            count = min(chunk_pages, len(out_chunk))
            if not force:
                if len(out_chunk) < chunk_pages:
                    return
                if write_frontier + count > read_frontier:
                    return  # would overwrite unread input: wait for reads
            batch = out_chunk[:count]
            del out_chunk[:count]
            heap.write_pages_sequential(write_frontier, batch)
            write_frontier += count
            stats.pages_written += count

    def emit(record: tuple, ts: int) -> None:
        nonlocal current_used, current_first_key, rows
        # Crash-point site for plan-driven mid-migration crash tests: fires
        # once per output record, so occurrence=N dies after N records.
        sim_interleave("migration.emit")
        crash_point("migration.emit")
        data = schema.pack(record)
        cost = len(data) + 8
        if current_used + cost > budget or not current.fits(len(data)):
            close_current()
            flush_out()
        current.insert(data)
        current.timestamp = max(current.timestamp, ts)
        current_used += cost
        if current_first_key is None:
            current_first_key = schema.key(record)
        rows += 1

    update = next(updates, None)
    total_pages = heap.num_pages
    for page_no, page in heap.scan_pages(0, total_pages - 1):
        read_frontier = page_no + 1
        stats.pages_read += 1
        page_ts = page.timestamp
        records = sorted(
            (schema.unpack(data) for _, data in page.records()), key=schema.key
        )
        for record in records:
            key = schema.key(record)
            while update is not None and update.key < key:
                produced = apply_update(None, update, schema)
                if produced is not None:
                    emit(produced, update.timestamp)
                    yield produced
                stats.updates_applied += 1
                update = next(updates, None)
            if update is not None and update.key == key:
                if update.timestamp > page_ts:
                    produced = apply_update(record, update, schema)
                    if produced is not None:
                        emit(produced, max(page_ts, update.timestamp))
                        yield produced
                else:
                    emit(record, page_ts)
                    yield record
                stats.updates_applied += 1
                update = next(updates, None)
            else:
                emit(record, page_ts)
                yield record
        flush_out()
    while update is not None:
        produced = apply_update(None, update, schema)
        if produced is not None:
            emit(produced, update.timestamp)
            yield produced
        stats.updates_applied += 1
        update = next(updates, None)
    if current.slot_count or not entries:
        close_current()
    read_frontier = max(read_frontier, total_pages)
    flush_out(force=True)
    return rows, entries, write_frontier


class CoordinatedMigration:
    """Migration combined with a table-scan query (Section 3.5).

    "We can combine the migration with a table scan query in order to avoid
    the cost of performing a table scan for migration purposes only."
    Iterating this object yields the full, fresh record stream (exactly what
    a full-table ``range_scan`` would return) while the same pass rewrites
    the data pages in place.  ``stats`` is populated once iteration ends.
    """

    def __init__(self, masm: "MaSM", redo_log=None) -> None:
        self.masm = masm
        self.redo_log = redo_log
        self.stats: Optional[MigrationStats] = None

    def __iter__(self):
        masm = self.masm
        table = masm.table
        schema = table.schema
        # Flush the in-memory buffer first so the combined scan is fully
        # fresh (it merges exactly the materialized runs being migrated).
        masm.flush_buffer()
        held = [run for run in masm.runs if run.compacting]
        runs = [run for run in masm.runs if not run.compacting]
        if not runs:
            # Nothing cached: degrade to a plain fresh scan.
            yield from masm.range_scan(*table.full_key_range())
            return
        sim_interleave("migration.coordinated")
        t = masm.oracle.next()
        if self.redo_log is not None:
            self.redo_log.log_migration_start(t, [run.name for run in runs])
        full = (0, 2**63 - 1)
        updates = iter(
            MergeUpdates(
                masm.run_update_sources(runs, *full, query_ts=t, use_cache=False),
                schema,
                cpu=masm.cpu,
            )
        )
        stats = MigrationStats(timestamp=t)
        generator = rewrite_heap_streaming(table.heap, schema, updates, stats)
        with trace("migration.coordinated", runs=len(runs)):
            rows, entries, out_pages = yield from generator
            stats.rows_after = rows
            table.heap.truncate(out_pages)
            table.replace_contents(entries, rows)
            if self.redo_log is not None:
                self.redo_log.log_migration_end(t)
            masm.retire_runs(runs, barrier_ts=t)
            if held:
                fence = min(run.covered_min_ts for run in held) - 1
                masm.migrated_through = max(
                    masm.migrated_through, min(t, fence)
                )
            else:
                masm.migrated_through = max(masm.migrated_through, t)
            stats.runs_retired = len(runs)
            masm.stats.migrations += 1
            if masm.governor is not None:
                masm.governor.on_full_migration()
        stats.publish("coordinated")
        self.stats = stats


def migrate_range(
    masm: "MaSM", begin_key: int, end_key: int, redo_log=None
) -> Optional[MigrationStats]:
    """Migrate only updates with keys in [begin, end] (Section 3.5).

    Pages are updated with read-modify-writes in page order.  A page whose
    insertions do not fit is left untouched (its updates stay cached), so
    page timestamps never claim an unapplied update.  Runs whose whole key
    range has been migrated are retired.
    """
    table = masm.table
    schema = table.schema
    if table.index.is_empty:
        return None
    # The timestamp rule is page-granular: a page's timestamp asserts that
    # every cached update for the page's whole key span up to that time is
    # applied.  A range that split a page's span would stamp the page while
    # leaving out-of-range updates for the same page cached — and a later
    # migration would wrongly skip them as already applied.  Expand the
    # requested range outward to whole page spans so that can never happen.
    begin_key, end_key = _align_to_page_spans(table, begin_key, end_key)
    # In-place application is invisible to a concurrent scan only when every
    # applied update lies within the scan's snapshot (the page-timestamp
    # rule then dedupes the run's copy).  A run holding updates *newer* than
    # the oldest active query timestamp must stay cached until that query
    # finishes — the non-blocking form of Section 3.2's "wait for ongoing
    # queries earlier than t".
    oldest_scan_ts = masm.oldest_active_query_ts()
    runs = [
        run
        for run in masm.runs
        if run.min_key <= end_key
        and run.max_key >= begin_key
        and (oldest_scan_ts is None or run.max_ts <= oldest_scan_ts)
        and not run.compacting
    ]
    if not runs:
        return None
    sim_interleave("migration.slice")
    t = masm.oracle.next()
    if redo_log is not None:
        redo_log.log_migration_start(
            t, [run.name for run in runs], key_range=(begin_key, end_key)
        )
    updates = iter(
        MergeUpdates(
            masm.run_update_sources(runs, begin_key, end_key, query_ts=t),
            schema,
            cpu=masm.cpu,
        )
    )
    stats = MigrationStats(timestamp=t)
    failed_spans: list[tuple[int, int]] = []
    with trace("migration.range", runs=len(runs)):
        update = next(updates, None)
        heap = table.heap
        index = table.index
        row_delta = 0
        while update is not None:
            page_no = index.locate_page(update.key)
            page_span = _page_key_span(table, page_no, end_key)
            page_updates = []
            while update is not None and update.key <= page_span[1]:
                page_updates.append(update)
                update = next(updates, None)
            page = heap.read_page(page_no)
            stats.pages_read += 1
            sim_interleave("migration.page")
            # Same crash-point site as the full rewrite's ``emit``: fires
            # once per page about to be rewritten, so a plan can kill a
            # paced migration slice mid-flight (START logged, END not).
            crash_point("migration.emit")
            applied, delta = _apply_to_page(page, page_updates, schema)
            if (
                applied is None
                and page_no == heap.num_pages - 1
                and not masm._active_scans
            ):
                # The physically-last page owns the open-ended tail of the
                # key space, so append-heavy floods concentrate there and
                # can never fit in place.  Because it is physically last it
                # can be split into appended pages without breaking the
                # page-order == key-order clustering invariant.
                split = _split_tail_page(table, page_no, page, page_updates)
                if split is not None:
                    written, delta = split
                    stats.pages_written += written
                    stats.updates_applied += len(page_updates)
                    row_delta += delta
                    continue
            if applied is None:
                failed_spans.append(page_span)
                stats.inserts_deferred += sum(
                    1
                    for u in page_updates
                    if u.type in (UpdateType.INSERT, UpdateType.REPLACE)
                )
                continue
            heap.write_page(page_no, applied)
            stats.pages_written += 1
            stats.updates_applied += len(page_updates)
            row_delta += delta
        table.row_count += row_delta
        stats.rows_after = table.row_count
        migrated = _subtract_spans((begin_key, end_key), failed_spans)
        fully_retired = []
        lo, hi = table.full_key_range()
        for run in runs:
            for span in migrated:
                run.mark_migrated(*span)
            if run.fully_migrated(run.min_key, run.max_key):
                fully_retired.append(run)
        if redo_log is not None:
            redo_log.log_migration_end(t)
        if fully_retired:
            masm.retire_runs(fully_retired, barrier_ts=t)
        stats.runs_retired = len(fully_retired)
    stats.publish("range")
    return stats


def _split_tail_page(
    table, page_no: int, page: SlottedPage, updates: list[UpdateRecord]
) -> Optional[tuple[int, int]]:
    """Split the last heap page so its updates fit; (pages_written, delta).

    Merges the page's records with ``updates`` and repacks the result into
    one or more pages starting at ``page_no``.  Appended pages extend the
    heap at its end, so clustering (physical page order == key order) is
    preserved — this is only valid for the physically-last page.  Each new
    page's timestamp is the newest update applied to it (carried-over
    records keep the old page's timestamp), so the page-span rule stays
    exact.  Returns None when the file extent cannot hold the split; the
    caller then defers the page as usual.
    """
    heap = table.heap
    schema = table.schema
    base_ts = page.timestamp
    merged: dict[int, tuple[tuple, int]] = {}
    for _, data in page.records():
        record = schema.unpack(data)
        merged[schema.key(record)] = (record, base_ts)
    delta = 0
    for update in updates:
        if update.timestamp <= base_ts:
            continue  # already applied by an earlier (partial) migration
        old = merged.get(update.key)
        result = apply_update(None if old is None else old[0], update, schema)
        if result is None:
            if old is not None:
                del merged[update.key]
                delta -= 1
        else:
            if old is None:
                delta += 1
            merged[update.key] = (result, update.timestamp)
    # Pack split pages half full: the tail is exactly where the next flood
    # of appends lands, so leaving slack keeps later slices in place.
    budget = (heap.page_size - 24) // 2
    pages: list[tuple[int, SlottedPage]] = []
    current = SlottedPage(heap.page_size)
    used = 0
    first_key: Optional[int] = None
    for key in sorted(merged):
        record, ts = merged[key]
        data = schema.pack(record)
        cost = len(data) + 8
        if used > 0 and (used + cost > budget or not current.fits(len(data))):
            pages.append((first_key if first_key is not None else 0, current))
            current = SlottedPage(heap.page_size)
            used = 0
            first_key = None
        current.insert(data)
        current.timestamp = max(current.timestamp, ts)
        used += cost
        if first_key is None:
            first_key = key
    if used > 0 or not pages:
        # An emptied tail page keeps its old first_key so the rebuilt index
        # stays key-ordered.
        empty_key = table.index.first_key_of(page_no)
        pages.append((first_key if first_key is not None else empty_key, current))
    if page_no + len(pages) > heap.capacity_pages:
        return None
    # Write the appended pages before overwriting the head page, and refresh
    # the index only after every page is durable.
    for offset in range(1, len(pages)):
        heap.write_page(page_no + offset, pages[offset][1])
    heap.write_page(page_no, pages[0][1])
    entries = [e for e in table.index.entries() if e[1] != page_no]
    entries.extend(
        (key, page_no + offset) for offset, (key, _) in enumerate(pages)
    )
    table.index.rebuild(entries)
    return len(pages), delta


def _align_to_page_spans(
    table, begin_key: int, end_key: int
) -> tuple[int, int]:
    """Expand ``[begin_key, end_key]`` to cover whole page key spans.

    The last page's span is open-ended (it absorbs all larger keys), so an
    end key landing there expands to the top of the key space.
    """
    from bisect import bisect_right

    entries = table.index.entries()
    if not entries:
        return begin_key, end_key
    starts = [first_key for first_key, _ in entries]
    i = max(0, bisect_right(starts, begin_key) - 1)
    begin_aligned = min(begin_key, entries[i][0])
    j = max(0, bisect_right(starts, end_key) - 1)
    if j + 1 < len(entries):
        end_aligned = max(end_key, entries[j + 1][0] - 1)
    else:
        end_aligned = 2**63 - 1
    return begin_aligned, end_aligned


def _page_key_span(table, page_no: int, end_key: int) -> tuple[int, int]:
    """Key interval [first_key, last] a page is responsible for."""
    entries = table.index.entries()
    for i, (first_key, number) in enumerate(entries):
        if number == page_no:
            if i + 1 < len(entries):
                return first_key, min(entries[i + 1][0] - 1, end_key)
            return first_key, end_key
    raise StorageError(f"page {page_no} not in sparse index")


def _apply_to_page(
    page: SlottedPage, updates: list[UpdateRecord], schema
) -> tuple[Optional[SlottedPage], int]:
    """Apply updates to a copy of ``page``; None if an insert can't fit.

    Returns (new_page_or_None, row_count_delta).
    """
    working = SlottedPage.from_bytes(page.to_bytes())
    delta = 0
    max_ts = working.timestamp
    for update in updates:
        if update.timestamp <= page.timestamp:
            continue  # already applied by an earlier (partial) migration
        slot = _find_slot(working, schema, update.key)
        result = apply_update(
            None if slot is None else schema.unpack(working.get(slot)),
            update,
            schema,
        )
        if result is None:
            if slot is not None:
                working.delete(slot)
                delta -= 1
            # Deleting an absent record is a no-op (already migrated).
        else:
            data = schema.pack(result)
            if slot is not None:
                working.replace(slot, data)
            else:
                if not working.fits(len(data)):
                    working.compact()
                if not working.fits(len(data)):
                    return None, 0  # all-or-nothing per page
                working.insert(data)
                delta += 1
        max_ts = max(max_ts, update.timestamp)
    working.timestamp = max_ts
    return working, delta


def _find_slot(page: SlottedPage, schema, key: int) -> Optional[int]:
    for slot, data in page.records():
        if schema.key(schema.unpack(data)) == key:
            return slot
    return None


def _subtract_spans(
    whole: tuple[int, int], holes: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """The parts of ``whole`` not covered by ``holes`` (for migrated marks)."""
    spans = []
    cursor = whole[0]
    for lo, hi in sorted(holes):
        if lo > cursor:
            spans.append((cursor, min(lo - 1, whole[1])))
        cursor = max(cursor, hi + 1)
        if cursor > whole[1]:
            break
    if cursor <= whole[1]:
        spans.append((cursor, whole[1]))
    return spans
