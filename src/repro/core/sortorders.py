"""Multiple sort orders / projections (Section 5, "Multiple Sort Orders").

Column-store warehouses keep redundant copies of a table in different sort
orders to serve different queries.  Differential updates must then maintain
an update cache *per sort order*, and — the paper's first approach — "every
update must contain the sort keys for all the sort orders so that the RIDs
for individual sort orders could be obtained".

:class:`MultiOrderTable` implements that approach over row-store MaSM:

* one *prevailing* table/engine clustered on the primary key;
* additional projections, each a physical copy clustered on a composite
  ``(sort_value, primary_key)`` key — the paper's "X with RID column" that
  makes non-unique sort attributes addressable — with its own MaSM cache;
* updates fan out to every order; a modification that changes a sort key
  becomes a delete + insert in that order (footnote 3 of the paper).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.masm import MaSM, MaSMConfig
from repro.engine.record import Schema
from repro.engine.table import Table
from repro.errors import KeyNotFoundError, SchemaError
from repro.storage.file import StorageVolume

_RID_BITS = 32


def composite_key(sort_value: int, primary_key: int) -> int:
    """(sort value, RID) packed into one orderable integer key."""
    if not 0 <= primary_key < (1 << _RID_BITS):
        raise SchemaError(f"primary key {primary_key} exceeds {_RID_BITS} bits")
    if sort_value < 0:
        raise SchemaError("projection sort values must be non-negative")
    return (sort_value << _RID_BITS) | primary_key


def composite_range(begin_sort: int, end_sort: int) -> tuple[int, int]:
    """The composite-key interval covering sort values [begin, end]."""
    return composite_key(begin_sort, 0), composite_key(end_sort, (1 << _RID_BITS) - 1)


def projection_schema(base: Schema, sort_field: str) -> Schema:
    """Schema of a projection: a leading composite key plus the base fields.

    The embedded primary key plays the role of the RID column the paper says
    a reordered copy must carry (at some compression cost).
    """
    field = base.fields[base.index_of(sort_field)]
    if field.is_string or field.type_code == "f64":
        raise SchemaError(
            f"projection sort field {sort_field!r} must be an integer column"
        )
    fields = [("_sortkey", "u64")] + [(f.name, f.type_code) for f in base.fields]
    return Schema(fields, key="_sortkey")


class Projection:
    """One extra sort order: a reordered copy with its own update cache."""

    def __init__(self, name: str, masm: MaSM, base: Schema, sort_field: str):
        self.name = name
        self.masm = masm
        self.base = base
        self.sort_field = sort_field
        self.sort_pos = base.index_of(sort_field)
        if masm.table.schema != projection_schema(base, sort_field):
            raise SchemaError(
                f"projection {name!r} table must use projection_schema()"
            )

    def reorder(self, record: tuple) -> tuple:
        key = composite_key(record[self.sort_pos], self.base.key(record))
        return (key, *record)


class MultiOrderTable:
    """A table maintained in several sort orders, each with MaSM caching."""

    def __init__(self, prevailing: MaSM) -> None:
        self.prevailing = prevailing
        self.schema = prevailing.table.schema
        self.projections: dict[str, Projection] = {}
        # primary key -> full current record, for deriving projection keys
        # of deletes/modifies (the "updates must contain all sort keys"
        # requirement, satisfied by bookkeeping at the ingest boundary).
        self._current: dict[int, tuple] = {}

    # ---------------------------------------------------------------- setup
    def add_projection(self, name: str, masm: MaSM, sort_field: str) -> None:
        if name in self.projections:
            raise SchemaError(f"projection {name!r} already exists")
        self.projections[name] = Projection(name, masm, self.schema, sort_field)

    @staticmethod
    def create_projection_engine(
        base_schema: Schema,
        sort_field: str,
        disk_volume: StorageVolume,
        ssd_volume: StorageVolume,
        expected_records: int,
        name: str,
        config: Optional[MaSMConfig] = None,
        oracle=None,
    ) -> MaSM:
        """Convenience: allocate the projection table + MaSM engine."""
        schema = projection_schema(base_schema, sort_field)
        table = Table.create(disk_volume, name, schema, expected_records)
        return MaSM(
            table,
            ssd_volume,
            config=config or MaSMConfig(alpha=1.2, auto_migrate=False),
            oracle=oracle,
            name=f"masm-{name}",
        )

    def bulk_load(self, records: list[tuple]) -> None:
        """Load the prevailing order and every projection."""
        ordered = sorted(records, key=self.schema.key)
        self.prevailing.table.bulk_load(ordered)
        for record in ordered:
            self._current[self.schema.key(record)] = tuple(record)
        for projection in self.projections.values():
            rows = sorted(
                (projection.reorder(r) for r in records), key=lambda r: r[0]
            )
            projection.masm.table.bulk_load(rows)

    # --------------------------------------------------------------- updates
    def insert(self, record: tuple) -> None:
        key = self.schema.key(record)
        if key in self._current:
            raise SchemaError(f"duplicate key {key}")
        self.prevailing.insert(record)
        for projection in self.projections.values():
            projection.masm.insert(projection.reorder(record))
        self._current[key] = tuple(record)

    def delete(self, key: int) -> None:
        record = self._current.pop(key, None)
        if record is None:
            raise KeyNotFoundError(f"key {key}")
        self.prevailing.delete(key)
        for projection in self.projections.values():
            projection.masm.delete(composite_key(record[projection.sort_pos], key))

    def modify(self, key: int, changes: dict) -> None:
        record = self._current.get(key)
        if record is None:
            raise KeyNotFoundError(f"key {key}")
        updated = self.schema.apply_modification(record, changes)
        self.prevailing.modify(key, changes)
        for projection in self.projections.values():
            old_sort = record[projection.sort_pos]
            new_sort = updated[projection.sort_pos]
            if old_sort == new_sort:
                projection.masm.modify(composite_key(old_sort, key), changes)
            else:
                projection.masm.delete(composite_key(old_sort, key))
                projection.masm.insert(projection.reorder(updated))
        self._current[key] = updated

    # ----------------------------------------------------------------- scans
    def range_scan(self, begin_key: int, end_key: int) -> Iterator[tuple]:
        """Scan in the prevailing (primary key) order."""
        return self.prevailing.range_scan(begin_key, end_key)

    def scan_order(
        self, projection_name: str, begin_sort: int, end_sort: int
    ) -> Iterator[tuple]:
        """Scan a projection in its own sort order, fresh under updates.

        Yields base-schema records (the composite key is stripped).
        """
        projection = self.projections.get(projection_name)
        if projection is None:
            raise SchemaError(f"no projection {projection_name!r}")
        lo, hi = composite_range(begin_sort, end_sort)
        for row in projection.masm.range_scan(lo, hi):
            yield row[1:]

    # ------------------------------------------------------------- migration
    def migrate_all(self) -> None:
        """Migrate every order's cache (each in place, independently)."""
        for masm in [self.prevailing, *(p.masm for p in self.projections.values())]:
            masm.flush_buffer()
            if masm.runs:
                masm.migrate()

    @property
    def total_cached_bytes(self) -> int:
        engines = [self.prevailing, *(p.masm for p in self.projections.values())]
        return sum(m.cached_run_bytes + m.buffer.used_bytes for m in engines)
