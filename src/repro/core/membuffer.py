"""The latched in-memory buffer for recent updates.

Incoming well-formed updates are appended here in arrival (timestamp) order.
Query processing sorts the buffer into (key, timestamp) order; concurrent
scans survive both re-sorts and flushes the way Section 3.2 describes:

* the buffer carries a *sort epoch* — a scan cursor that detects a newer
  epoch re-positions itself by searching for its last-delivered (key, ts);
* the buffer carries a *flush epoch* — a cursor that detects a flush learns
  which materialized run replaced the data it was reading and the MaSM scan
  operator swaps in a Run_scan (see :mod:`repro.core.operators`);
* new updates that land between a cursor's position and its range end are
  filtered out by the query timestamp, so a query never sees updates later
  than itself.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator, Optional

from repro.core.update import UpdateCodec, UpdateRecord
from repro.engine.record import Schema
from repro.errors import UpdateCacheFullError


class BufferFlushed(Exception):
    """Raised by a cursor when the buffer was flushed under it.

    Carries the flush epoch so the caller can locate the materialized run
    that now holds the updates this cursor was reading.
    """

    def __init__(self, flush_epoch: int):
        super().__init__(f"update buffer flushed (epoch {flush_epoch})")
        self.flush_epoch = flush_epoch


class InMemoryUpdateBuffer:
    """Append-mostly buffer of :class:`UpdateRecord` with epoch bookkeeping."""

    def __init__(self, schema: Schema, capacity_bytes: int) -> None:
        self.schema = schema
        self.codec = UpdateCodec(schema)
        self.capacity_bytes = capacity_bytes
        self._entries: list[UpdateRecord] = []
        self._bytes = 0
        self._sorted = True  # an empty buffer is trivially sorted
        self.sort_epoch = 0
        self.flush_epoch = 0
        self._latch = threading.Lock()

    # ------------------------------------------------------------- accounting
    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def count(self) -> int:
        return len(self._entries)

    def pages_used(self, page_size: int) -> int:
        """Whole pages the buffered updates occupy (ceiling)."""
        return -(-self._bytes // page_size) if self._bytes else 0

    @property
    def is_full(self) -> bool:
        return self._bytes >= self.capacity_bytes

    def would_overflow(self, update: UpdateRecord) -> bool:
        return self._bytes + self.codec.encoded_size(update) > self.capacity_bytes

    # ------------------------------------------------------------------ writes
    def append(self, update: UpdateRecord) -> None:
        """Add an incoming update (arrival order)."""
        size = self.codec.encoded_size(update)
        with self._latch:
            if self._bytes + size > self.capacity_bytes:
                raise UpdateCacheFullError(
                    f"update buffer full ({self._bytes}/{self.capacity_bytes} bytes)"
                )
            self._entries.append(update)
            self._bytes += size
            if self._sorted and len(self._entries) > 1:
                if update.sort_key() < self._entries[-2].sort_key():
                    self._sorted = False

    def shrink_capacity(self, capacity_bytes: int) -> None:
        """Give back stolen pages: reduce capacity without touching data.

        Used when a scan starts and the buffer must return the query pages
        it borrowed while no scan was active (the MaSM-M page steal).  The
        new capacity must still cover the buffered bytes — callers flush
        first when it would not.
        """
        with self._latch:
            if capacity_bytes < self._bytes:
                raise ValueError(
                    f"cannot shrink capacity to {capacity_bytes} below "
                    f"{self._bytes} buffered bytes (flush first)"
                )
            self.capacity_bytes = capacity_bytes

    def sort(self) -> None:
        """Sort into (key, timestamp) order; bumps the sort epoch if reordered."""
        with self._latch:
            if self._sorted:
                return
            self._entries.sort(key=UpdateRecord.sort_key)
            self._sorted = True
            self.sort_epoch += 1

    def drain_sorted(self) -> list[UpdateRecord]:
        """Atomically take all updates (sorted) and reset the buffer.

        This is the flush step that materializes a sorted run; the flush
        epoch advances so concurrent cursors can detect it.
        """
        with self._latch:
            self._entries.sort(key=UpdateRecord.sort_key)
            taken = self._entries
            self._entries = []
            self._bytes = 0
            self._sorted = True
            self.flush_epoch += 1
            return taken

    # ------------------------------------------------------------------ reads
    def cursor(
        self,
        begin_key: int,
        end_key: int,
        query_ts: int,
        batch_size: int = 64,
        flush_epoch: Optional[int] = None,
    ) -> "BufferCursor":
        """A stable cursor over [begin_key, end_key] visible at ``query_ts``.

        ``batch_size`` is how many updates each latch acquisition grabs
        (Section 3.2: "Mem_scan retrieves multiple update records at a time
        to reduce latching overhead").  ``flush_epoch`` is the epoch the
        cursor's visibility snapshot belongs to — the scan's registration
        point, not cursor construction, which may happen arbitrarily later
        (operators build lazily): a flush in between must still raise
        :class:`BufferFlushed` or the drained updates would silently vanish
        from the scan.
        """
        return BufferCursor(
            self, begin_key, end_key, query_ts, batch_size, flush_epoch
        )

    def snapshot_range(
        self,
        begin_key: int,
        end_key: int,
        query_ts: int,
        after: Optional[tuple[int, int]] = None,
        limit: int = 64,
    ) -> tuple[list[UpdateRecord], int, int]:
        """Grab up to ``limit`` visible updates after sort-position ``after``.

        Returns (batch, sort_epoch, flush_epoch) captured under the latch —
        the batched retrieval Section 3.2 uses to keep latching overhead low.
        The buffer must be sorted; callers sort first.
        """
        with self._latch:
            if not self._sorted:
                self._entries.sort(key=UpdateRecord.sort_key)
                self._sorted = True
                self.sort_epoch += 1
            floor = (begin_key, -1) if after is None else after
            keys = [e.sort_key() for e in self._entries]
            pos = bisect.bisect_right(keys, floor)
            batch: list[UpdateRecord] = []
            while pos < len(self._entries) and len(batch) < limit:
                entry = self._entries[pos]
                if entry.key > end_key:
                    break
                if entry.key >= begin_key and entry.timestamp <= query_ts:
                    batch.append(entry)
                pos += 1
            return batch, self.sort_epoch, self.flush_epoch

    def min_timestamp(self) -> Optional[int]:
        with self._latch:
            if not self._entries:
                return None
            return min(e.timestamp for e in self._entries)


class BufferCursor:
    """Iterates the buffer in (key, ts) order, resilient to re-sorts.

    If the buffer flushes mid-iteration, :meth:`__next__` raises
    :class:`BufferFlushed`; the MaSM scan operator catches it and continues
    from the materialized run that absorbed the updates.
    """

    def __init__(
        self,
        buffer: InMemoryUpdateBuffer,
        begin_key: int,
        end_key: int,
        query_ts: int,
        batch_size: int = 64,
        flush_epoch: Optional[int] = None,
    ) -> None:
        self.buffer = buffer
        self.begin_key = begin_key
        self.end_key = end_key
        self.query_ts = query_ts
        self.batch_size = max(1, batch_size)
        self._last: Optional[tuple[int, int]] = None
        self._batch: list[UpdateRecord] = []
        self._batch_pos = 0
        self._flush_epoch = (
            flush_epoch if flush_epoch is not None else buffer.flush_epoch
        )
        self._exhausted = False

    def __iter__(self) -> Iterator[UpdateRecord]:
        return self

    def __next__(self) -> UpdateRecord:
        if self._exhausted:
            raise StopIteration
        if self._batch_pos >= len(self._batch):
            batch, _, flush_epoch = self.buffer.snapshot_range(
                self.begin_key,
                self.end_key,
                self.query_ts,
                after=self._last,
                limit=self.batch_size,
            )
            if flush_epoch != self._flush_epoch:
                self._exhausted = True
                # Hand over to the flush that drained *this cursor's*
                # generation (epoch + 1).  Every update visible at the
                # cursor's query timestamp was already buffered when that
                # flush drained, so later flushes (epoch + 2, ...) can only
                # contain updates this cursor must not see anyway.
                raise BufferFlushed(self._flush_epoch + 1)
            if not batch:
                self._exhausted = True
                raise StopIteration
            self._batch = batch
            self._batch_pos = 0
        update = self._batch[self._batch_pos]
        self._batch_pos += 1
        self._last = update.sort_key()
        return update

    @property
    def last_position(self) -> Optional[tuple[int, int]]:
        """The (key, ts) of the last delivered update (resume point)."""
        return self._last
