"""Shared LRU cache of decoded run blocks.

Materialized runs are immutable, so a block's decoded form never goes
stale: concurrent ``Run_scan``s over hot key ranges can share one decode.
The cache is size-bounded (in blocks, optionally also in decoded bytes),
keyed by ``(run_name, block_no)``, and stores the *unfiltered*
:class:`~repro.core.update.ColumnarBlock` of each block — query-specific
filters (key range, ``query_ts`` visibility, migrated ranges, ``after``
positions) are applied per scan on top of the cached columns/records.

Memory accounting is byte-accurate: each entry is charged its actual
decoded footprint (``entry.nbytes``), re-read on every hit so lazy
materialization of records or key lists after insertion is picked up.  The
gauge ``blockcache.accounting_delta_bytes`` exposes how far the old
encoded-size approximation was from the truth.

Hit/miss/eviction counts accumulate both on the cache itself and, when a
stats sink is attached (:class:`repro.core.masm.MaSMStats`), on the owning
MaSM instance's counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.obs import get_registry

#: Default capacity: 128 decoded blocks (8 MB of raw run data at the
#: coarse 64 KB granularity, more as Python objects).
DEFAULT_CACHE_BLOCKS = 128

#: Rough decoded bytes per record for legacy ``(keys, records)`` tuple
#: entries that predate :class:`~repro.core.update.ColumnarBlock` (kept so
#: foreign entries remain accountable).
_LEGACY_ENTRY_BYTES_PER_RECORD = 96

#: A cache entry.  Normally a :class:`~repro.core.update.ColumnarBlock`;
#: anything sized (an ``nbytes`` attribute) or shaped like the legacy
#: ``(keys, records)`` tuple is accepted.
DecodedBlock = object


def _entry_bytes(entry) -> int:
    """Actual decoded footprint of an entry, best effort for foreign types."""
    size = getattr(entry, "nbytes", None)
    if size is not None:
        return int(size)
    try:
        keys = entry[0]
        return len(keys) * _LEGACY_ENTRY_BYTES_PER_RECORD
    except (TypeError, IndexError, KeyError):
        return 0


def _entry_encoded_bytes(entry) -> int:
    """The encoded-size approximation the old accounting charged."""
    size = getattr(entry, "encoded_size", None)
    if size is not None:
        return int(size)
    return _entry_bytes(entry)


class DecodedBlockCache:
    """Size-bounded LRU of decoded run blocks, safe for concurrent scans."""

    def __init__(
        self,
        capacity_blocks: int = DEFAULT_CACHE_BLOCKS,
        stats=None,
        capacity_bytes: Optional[int] = None,
    ):
        if capacity_blocks < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_blocks}")
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(
                f"capacity_bytes must be >= 0, got {capacity_bytes}"
            )
        self.capacity = capacity_blocks
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[tuple[str, int], DecodedBlock]" = OrderedDict()
        #: Bytes currently charged per entry; re-read on hits so lazy
        #: materialization after insertion stays accounted.
        self._charged: dict[tuple[str, int], int] = {}
        self._lock = threading.Lock()
        self._stats = stats
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resident_bytes = 0
        #: What the pre-columnar accounting would have charged (encoded
        #: block sizes): kept to expose the approximation error as a gauge.
        self.approx_bytes = 0
        # Process-wide aggregates across every cache instance; the exact
        # per-engine counts stay on the attached MaSMStats sink.
        registry = get_registry()
        self._obs_hits = registry.counter("blockcache.hits")
        self._obs_misses = registry.counter("blockcache.misses")
        self._obs_evictions = registry.counter("blockcache.evictions")
        self._obs_resident = registry.gauge("blockcache.resident_blocks")
        self._obs_resident_bytes = registry.gauge("blockcache.resident_bytes")
        self._obs_delta_bytes = registry.gauge(
            "blockcache.accounting_delta_bytes"
        )

    def __len__(self) -> int:
        return len(self._entries)

    def _publish_bytes(self) -> None:
        self._obs_resident.set(len(self._entries))
        self._obs_resident_bytes.set(self.resident_bytes)
        self._obs_delta_bytes.set(self.resident_bytes - self.approx_bytes)

    def _recharge(self, key: tuple[str, int], entry) -> None:
        """Refresh one entry's byte charge (lazy forms may have grown it)."""
        size = _entry_bytes(entry)
        old = self._charged.get(key, 0)
        if size != old:
            self._charged[key] = size
            self.resident_bytes += size - old

    def _drop(self, key: tuple[str, int]) -> None:
        entry = self._entries.pop(key)
        self.resident_bytes -= self._charged.pop(key, 0)
        self.approx_bytes -= _entry_encoded_bytes(entry)

    def get(self, run_name: str, block_no: int) -> Optional[DecodedBlock]:
        """The decoded block, refreshed to most-recently-used; None on miss."""
        key = (run_name, block_no)
        stats = self._stats
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._obs_misses.add(1)
                if stats is not None:
                    stats.block_cache_misses += 1
                return None
            self._entries.move_to_end(key)
            self._recharge(key, entry)
            self._publish_bytes()
            self.hits += 1
            self._obs_hits.add(1)
            if stats is not None:
                stats.block_cache_hits += 1
            return entry

    def put(self, run_name: str, block_no: int, block: DecodedBlock) -> None:
        """Insert a decoded block, evicting the least-recently-used ones."""
        if self.capacity == 0:
            return
        key = (run_name, block_no)
        stats = self._stats
        with self._lock:
            if key in self._entries:
                self._drop(key)
            self._entries[key] = block
            self._entries.move_to_end(key)
            self._charged[key] = _entry_bytes(block)
            self.resident_bytes += self._charged[key]
            self.approx_bytes += _entry_encoded_bytes(block)
            while len(self._entries) > self.capacity or (
                self.capacity_bytes is not None
                and len(self._entries) > 1
                and self.resident_bytes > self.capacity_bytes
            ):
                victim = next(iter(self._entries))
                self._drop(victim)
                self.evictions += 1
                self._obs_evictions.add(1)
                if stats is not None:
                    stats.block_cache_evictions += 1
            self._publish_bytes()

    def invalidate_run(self, run_name: str) -> int:
        """Drop every cached block of one run (called when a run is deleted).

        Returns the number of blocks dropped.  Dropping is bookkeeping, not
        correctness: run names are never reused within a MaSM instance, so a
        stale entry could only waste memory until evicted.
        """
        with self._lock:
            doomed = [k for k in self._entries if k[0] == run_name]
            for k in doomed:
                self._drop(k)
            if doomed:
                self._publish_bytes()
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._charged.clear()
            self.resident_bytes = 0
            self.approx_bytes = 0
            self._publish_bytes()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecodedBlockCache({len(self._entries)}/{self.capacity} blocks, "
            f"{self.resident_bytes}B resident, "
            f"{self.hits} hits, {self.misses} misses, {self.evictions} evictions)"
        )
