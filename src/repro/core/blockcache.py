"""Shared LRU cache of decoded run blocks.

Materialized runs are immutable, so a block's decoded record list never goes
stale: concurrent ``Run_scan``s over hot key ranges can share one decode.
The cache is size-bounded (in blocks), keyed by ``(run_name, block_no)``,
and stores the *unfiltered* decode of each block — query-specific filters
(key range, ``query_ts`` visibility, migrated ranges, ``after`` positions)
are applied per scan on top of the cached lists.

Hit/miss/eviction counts accumulate both on the cache itself and, when a
stats sink is attached (:class:`repro.core.masm.MaSMStats`), on the owning
MaSM instance's counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.core.update import UpdateRecord
from repro.obs import get_registry

#: Default capacity: 128 decoded blocks (8 MB of raw run data at the
#: coarse 64 KB granularity, more as Python objects).
DEFAULT_CACHE_BLOCKS = 128

#: A cache entry: the block's decoded records plus their keys, both in
#: (key, ts) order.  The parallel key list is what block-local binary
#: searches run over.
DecodedBlock = tuple[list[int], list[UpdateRecord]]


class DecodedBlockCache:
    """Size-bounded LRU of decoded run blocks, safe for concurrent scans."""

    def __init__(self, capacity_blocks: int = DEFAULT_CACHE_BLOCKS, stats=None):
        if capacity_blocks < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_blocks}")
        self.capacity = capacity_blocks
        self._entries: "OrderedDict[tuple[str, int], DecodedBlock]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = stats
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Process-wide aggregates across every cache instance; the exact
        # per-engine counts stay on the attached MaSMStats sink.
        registry = get_registry()
        self._obs_hits = registry.counter("blockcache.hits")
        self._obs_misses = registry.counter("blockcache.misses")
        self._obs_evictions = registry.counter("blockcache.evictions")
        self._obs_resident = registry.gauge("blockcache.resident_blocks")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, run_name: str, block_no: int) -> Optional[DecodedBlock]:
        """The decoded block, refreshed to most-recently-used; None on miss."""
        key = (run_name, block_no)
        stats = self._stats
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._obs_misses.add(1)
                if stats is not None:
                    stats.block_cache_misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._obs_hits.add(1)
            if stats is not None:
                stats.block_cache_hits += 1
            return entry

    def put(self, run_name: str, block_no: int, block: DecodedBlock) -> None:
        """Insert a decoded block, evicting the least-recently-used ones."""
        if self.capacity == 0:
            return
        key = (run_name, block_no)
        stats = self._stats
        with self._lock:
            self._entries[key] = block
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._obs_evictions.add(1)
                if stats is not None:
                    stats.block_cache_evictions += 1
            self._obs_resident.set(len(self._entries))

    def invalidate_run(self, run_name: str) -> int:
        """Drop every cached block of one run (called when a run is deleted).

        Returns the number of blocks dropped.  Dropping is bookkeeping, not
        correctness: run names are never reused within a MaSM instance, so a
        stale entry could only waste memory until evicted.
        """
        with self._lock:
            doomed = [k for k in self._entries if k[0] == run_name]
            for k in doomed:
                del self._entries[k]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecodedBlockCache({len(self._entries)}/{self.capacity} blocks, "
            f"{self.hits} hits, {self.misses} misses, {self.evictions} evictions)"
        )
