"""MaSM's scan-side operators (Figure 6):

* :class:`RunScan`    — streams one materialized sorted run, narrowed by its
  run index (optionally through the shared decoded-block cache);
* :class:`MemScan`    — streams the in-memory buffer and survives concurrent
  re-sorts and flushes by handing over to a Run_scan;
* :class:`MergeUpdates` — merges many (key, ts)-ordered update streams and
  combines same-key updates;
* :class:`MergeDataUpdates` — the outer join of the table range scan with the
  combined update stream, using page timestamps to skip already-applied
  updates (what makes in-place migration safe, Section 3.2).

The merge core is batch-oriented: sources are compared on plain (key, ts)
tuples (no per-record method calls), a dedicated two-source loop serves the
common one-memory-stream-plus-one-run shape, and CPU time is charged to the
meter per batch of merged records rather than per record.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from itertools import chain as _chain
from typing import Callable, Iterable, Iterator, Optional

from repro.core import kernels
from repro.core.blockcache import DecodedBlockCache
from repro.core.membuffer import BufferFlushed, InMemoryUpdateBuffer
from repro.core.sortedrun import MaterializedSortedRun
from repro.core.update import UpdateRecord, apply_update, combine, combine_chain
from repro.engine.record import Schema
from repro.errors import ChecksumError, TransientIOError
from repro.sim.hooks import interleave as sim_interleave
from repro.storage.iosched import (
    KERNEL_DECODE_CPU_PER_UPDATE,
    MERGE_CPU_BATCH,
    MERGE_CPU_PER_UPDATE,
    CpuMeter,
)

#: Largest representable timestamp — "everything at this key" when used as
#: the timestamp half of an ``after`` resume position.
_MAX_TS = 2**63 - 1

#: Fallback chunk size when the data side offers no chunked scan.
_DATA_CHUNK_RECORDS = 1024


def merge_update_streams(
    sources: list[Iterable[UpdateRecord]],
) -> Iterator[UpdateRecord]:
    """Merge (key, ts)-sorted update streams into one (key, ts)-sorted stream.

    Ties across sources break by source position (stable, like
    ``heapq.merge``).  Dispatches on the number of non-empty sources: most
    range scans see one memory stream plus one run, which the two-source
    loop serves without any heap at all.
    """
    iterators = [iter(s) for s in sources]
    primed: list[tuple[UpdateRecord, Iterator[UpdateRecord]]] = []
    for it in iterators:
        first = next(it, None)
        if first is not None:
            primed.append((first, it))
    if not primed:
        return
    if len(primed) == 1:
        head, it = primed[0]
        yield head
        yield from it
        return
    if len(primed) == 2:
        a, a_it = primed[0]
        b, b_it = primed[1]
        a_key = (a.key, a.timestamp)
        b_key = (b.key, b.timestamp)
        while True:
            if a_key <= b_key:
                yield a
                a = next(a_it, None)
                if a is None:
                    yield b
                    yield from b_it
                    return
                a_key = (a.key, a.timestamp)
            else:
                yield b
                b = next(b_it, None)
                if b is None:
                    yield a
                    yield from a_it
                    return
                b_key = (b.key, b.timestamp)
    # K-way: heap entries are (key, ts, source_idx, update); the index both
    # breaks ties stably and keeps UpdateRecords out of the comparisons.
    heap = [
        (u.key, u.timestamp, idx, u) for idx, (u, _) in enumerate(primed)
    ]
    heapq.heapify(heap)
    iters = [it for _, it in primed]
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    while heap:
        _, _, idx, update = heap[0]
        yield update
        nxt = next(iters[idx], None)
        if nxt is None:
            heappop(heap)
        else:
            heapreplace(heap, (nxt.key, nxt.timestamp, idx, nxt))


class RunScan:
    """Iterates one materialized run for a query's key range and timestamp.

    ``cache`` is the MaSM instance's shared :class:`DecodedBlockCache`;
    ``stats`` receives blocks-decoded counts (both optional).

    ``fallback`` makes the scan degrade gracefully when the run's SSD copy
    turns out to be damaged: if a block fails checksum verification (or a
    read keeps failing transiently past the retry budget), the scan hands
    over to ``fallback(after)`` — a slower but correct replacement stream,
    in practice MaSM's redo-log replay of the run's timestamp range.  The
    handover is seamless because the run scan verifies each block *before*
    yielding anything from it, so ``after`` (the last yielded (key, ts)
    position, or None) is an exact resume point — the same contract
    :class:`MemScan` uses when a flush hands it over to a run.
    """

    def __init__(
        self,
        run: MaterializedSortedRun,
        begin_key: int,
        end_key: int,
        query_ts: Optional[int] = None,
        cache: Optional[DecodedBlockCache] = None,
        stats=None,
        fallback: Optional[
            Callable[[Optional[tuple[int, int]]], Iterable[UpdateRecord]]
        ] = None,
    ) -> None:
        self.run = run
        self.begin_key = begin_key
        self.end_key = end_key
        self.query_ts = query_ts
        self.cache = cache
        self.stats = stats
        self.fallback = fallback

    def __iter__(self) -> Iterator[UpdateRecord]:
        if self.run.quarantined and self.fallback is not None:
            yield from self.fallback(None)
            return
        source = self.run.scan(
            self.begin_key,
            self.end_key,
            self.query_ts,
            cache=self.cache,
            stats=self.stats,
        )
        if self.fallback is None:
            yield from source
            return
        last: Optional[tuple[int, int]] = None
        while True:
            try:
                update = next(source)
            except StopIteration:
                return
            except (ChecksumError, TransientIOError):
                # The run's bytes can no longer be trusted (or read); switch
                # to the fallback stream, resuming after the last record
                # already delivered.
                yield from self.fallback(last)
                return
            last = (update.key, update.timestamp)
            yield update


class MemScan:
    """Iterates the in-memory buffer; hands over to a run on flush.

    ``run_for_flush`` maps a flush epoch to the materialized run that flush
    produced, so the scan can continue exactly where it stopped (Section 3.2:
    "Mem_scan will instantiate a Run_scan operator for the new materialized
    sorted run and replaces itself").
    """

    def __init__(
        self,
        buffer: InMemoryUpdateBuffer,
        begin_key: int,
        end_key: int,
        query_ts: int,
        run_for_flush: Optional[Callable[[int], Optional[MaterializedSortedRun]]] = None,
        cache: Optional[DecodedBlockCache] = None,
        stats=None,
        flush_epoch: Optional[int] = None,
    ) -> None:
        self.buffer = buffer
        self.begin_key = begin_key
        self.end_key = end_key
        self.query_ts = query_ts
        self.run_for_flush = run_for_flush
        self.cache = cache
        self.stats = stats
        #: Buffer flush epoch at scan registration.  The cursor below is
        #: built lazily (first pull), so without this baseline a flush
        #: between registration and first pull goes undetected and the
        #: flushed updates silently disappear from the scan.
        self.flush_epoch = flush_epoch

    def __iter__(self) -> Iterator[UpdateRecord]:
        cursor = self.buffer.cursor(
            self.begin_key,
            self.end_key,
            self.query_ts,
            flush_epoch=self.flush_epoch,
        )
        while True:
            try:
                update = next(cursor)
            except StopIteration:
                return
            except BufferFlushed as flushed:
                if self.run_for_flush is None:
                    return
                run = self.run_for_flush(flushed.flush_epoch)
                if run is None:
                    return
                yield from run.scan(
                    self.begin_key,
                    self.end_key,
                    self.query_ts,
                    after=cursor.last_position,
                    cache=self.cache,
                    stats=self.stats,
                )
                return
            yield update


class _Lookahead:
    """A one-record lookahead over a sorted update stream.

    Lets the partitioned merge drain non-columnar sources (Mem_scans,
    fallback replays, plain iterables) partition by partition: records up to
    a boundary key are taken as a list, the first record beyond it is held
    for the next partition.
    """

    __slots__ = ("_it", "_head")

    def __init__(self, source: Iterable[UpdateRecord]) -> None:
        self._it = iter(source)
        self._head: Optional[UpdateRecord] = next(self._it, None)

    def take_upto(self, hi: Optional[int]) -> list[UpdateRecord]:
        """All pending records with ``key <= hi`` (every record if None)."""
        head = self._head
        if head is None or (hi is not None and head.key > hi):
            return []
        out = [head]
        if hi is None:
            out.extend(self._it)
            self._head = None
            return out
        for update in self._it:
            if update.key > hi:
                self._head = update
                return out
            out.append(update)
        self._head = None
        return out


class MergeUpdates:
    """K-way merge of sorted update streams, combining same-key chains.

    Yields one combined :class:`UpdateRecord` per distinct key, in key order
    (the output the outer join consumes).  ``fast_path=False`` selects the
    record-at-a-time reference implementation (``heapq.merge`` keyed on
    ``UpdateRecord.sort_key``), kept for equivalence testing.

    When the columnar kernels are available (:func:`repro.core.kernels.enabled`
    and ``use_kernels``) and at least one source is a healthy :class:`RunScan`,
    the merge runs array-at-a-time: the key range is split into partitions at
    boundary keys drawn from the runs' own indexes, each run contributes a
    partition slice in columnar form (:meth:`MaterializedSortedRun.
    slice_columns`), non-columnar sources are drained up to the partition
    boundary, and one kernel invocation merges + combines the partition
    (:func:`repro.core.kernels.merge_slices`).  A run that fails mid-scan
    (checksum/transient I/O) degrades to its ``fallback`` stream from the
    current partition boundary on, exactly as the record-at-a-time
    :class:`RunScan` would — slices are built atomically, so nothing from
    the failed partition was delivered.
    """

    def __init__(
        self,
        sources: Iterable[Iterable[UpdateRecord]],
        schema: Schema,
        cpu: Optional[CpuMeter] = None,
        fast_path: bool = True,
        use_kernels: bool = True,
        blocks_per_partition: Optional[int] = None,
    ) -> None:
        self.sources = list(sources)
        self.schema = schema
        self.cpu = cpu
        self.fast_path = fast_path
        self.use_kernels = use_kernels
        self.blocks_per_partition = (
            blocks_per_partition
            if blocks_per_partition is not None
            else kernels.DEFAULT_BLOCKS_PER_PARTITION
        )

    def __iter__(self) -> Iterator[UpdateRecord]:
        if not self.fast_path:
            return self._iter_reference()
        batches = self.kernel_batches()
        if batches is not None:
            return _chain.from_iterable(b.records for b in batches)
        return self._iter_fast()

    def kernel_batches(self) -> Optional[Iterator["kernels.UpdateBatch"]]:
        """Per-partition :class:`~repro.core.kernels.UpdateBatch` generator,
        or None when the kernel path cannot serve this merge (kernels
        disabled, reference path requested, or no columnar run to partition
        by).  :class:`MergeDataUpdates` consumes batches directly so the
        join can stay array-at-a-time too.
        """
        if not (self.fast_path and self.use_kernels and kernels.enabled()):
            return None
        if not any(
            isinstance(s, RunScan) and not s.run.quarantined
            for s in self.sources
        ):
            return None
        return self._iter_batches_kernel()

    def _iter_batches_kernel(self) -> Iterator["kernels.UpdateBatch"]:
        schema = self.schema
        cpu = self.cpu
        sources = self.sources
        runs: dict[int, RunScan] = {}
        extras: dict[int, _Lookahead] = {}
        for slot, src in enumerate(sources):
            if isinstance(src, RunScan) and not src.run.quarantined:
                runs[slot] = src
            else:
                extras[slot] = _Lookahead(src)
        begin = min(rs.begin_key for rs in runs.values())
        end = max(rs.end_key for rs in runs.values())
        bounds = kernels.partition_points(
            [rs.run.index for rs in runs.values()],
            begin,
            end,
            self.blocks_per_partition,
        )
        # The final partition is unbounded so non-columnar sources drain
        # records past the last run key.
        ranges = kernels.partition_ranges(bounds, begin, None)
        for lo, hi in ranges:
            sim_interleave("kernels.partition")
            slices: list[kernels.SourceSlice] = []
            decoded = 0
            for slot in range(len(sources)):
                rs = runs.get(slot)
                if rs is not None:
                    r_lo = max(lo, rs.begin_key)
                    r_hi = rs.end_key if hi is None else min(hi, rs.end_key)
                    if r_lo > r_hi:
                        continue
                    try:
                        cols = rs.run.slice_columns(
                            r_lo,
                            r_hi,
                            rs.query_ts,
                            cache=rs.cache,
                            stats=rs.stats,
                        )
                    except (ChecksumError, TransientIOError):
                        if rs.fallback is None:
                            raise
                        after = None if lo <= begin else (lo - 1, _MAX_TS)
                        extra = _Lookahead(rs.fallback(after))
                        del runs[slot]
                        extras[slot] = extra
                        records = extra.take_upto(hi)
                        if records:
                            slices.append(
                                kernels.SourceSlice.from_records(records)
                            )
                            decoded += len(records)
                        continue
                    if cols is not None:
                        keys, ts, records = cols
                        slices.append(kernels.SourceSlice(keys, ts, records))
                        decoded += len(records)
                else:
                    records = extras[slot].take_upto(hi)
                    if records:
                        slices.append(kernels.SourceSlice.from_records(records))
                        decoded += len(records)
            if not slices:
                continue
            if cpu is not None:
                cpu.charge_batch(
                    decoded, KERNEL_DECODE_CPU_PER_UPDATE, kind="decode"
                )
            batch = kernels.merge_slices(slices, schema, cpu)
            if len(batch):
                yield batch

    def _iter_fast(self) -> Iterator[UpdateRecord]:
        schema = self.schema
        cpu = self.cpu
        merged = merge_update_streams(self.sources)
        pending: Optional[UpdateRecord] = None
        count = 0
        charged = 0
        for update in merged:
            count += 1
            if pending is None:
                pending = update
            elif update.key == pending.key:
                pending = combine(pending, update, schema)
            else:
                yield pending
                pending = update
                if cpu is not None and count - charged >= MERGE_CPU_BATCH:
                    cpu.charge_batch(count - charged, MERGE_CPU_PER_UPDATE)
                    charged = count
        if pending is not None:
            yield pending
        if cpu is not None and count > charged:
            cpu.charge_batch(count - charged, MERGE_CPU_PER_UPDATE)

    def _iter_reference(self) -> Iterator[UpdateRecord]:
        merged = heapq.merge(*self.sources, key=UpdateRecord.sort_key)
        chain: list[UpdateRecord] = []
        count = 0
        for update in merged:
            count += 1
            if chain and update.key != chain[0].key:
                yield combine_chain(chain, self.schema)
                chain = []
            chain.append(update)
        if chain:
            yield combine_chain(chain, self.schema)
        if self.cpu is not None and count:
            self.cpu.charge(count * MERGE_CPU_PER_UPDATE)


class MergeDataUpdates:
    """Outer join of (record, page_ts) pairs with combined updates.

    The update stream and the data stream are both key-ordered.  An update
    whose timestamp is <= the page timestamp of the matching record has
    already been applied in place (by a migration) and is skipped — the
    timestamp rule that lets queries run during in-place migration.

    When ``updates`` is a :class:`MergeUpdates` running its kernel path, the
    join is batch-oriented: per update partition, the data side is pulled up
    to the partition's max key and joined in one
    :func:`repro.core.kernels.join_partition` call (binary search of update
    keys into the data keys, wholesale extends of untouched data spans).
    ``data_chunks`` — an iterable of ``(records, page_ts)`` page chunks with
    a scalar per-chunk timestamp, e.g. ``Table.range_scan_pair_chunks`` —
    feeds that path without a per-record generator round-trip; without it
    the kernel path chunks ``data_pairs`` itself.
    """

    def __init__(
        self,
        data_pairs: Iterable[tuple[tuple, int]],
        updates: Iterable[UpdateRecord],
        schema: Schema,
        cpu: Optional[CpuMeter] = None,
        data_chunks: Optional[Iterable[tuple[list, int]]] = None,
    ) -> None:
        self.data_pairs = data_pairs
        self.updates = updates
        self.schema = schema
        self.cpu = cpu
        self.data_chunks = data_chunks

    def __iter__(self) -> Iterator[tuple]:
        updates = self.updates
        if isinstance(updates, MergeUpdates):
            batches = updates.kernel_batches()
            if batches is not None:
                return _chain.from_iterable(self._iter_kernel_lists(batches))
        return self._iter_reference()

    def _data_chunks(self) -> Iterator[tuple[list, object]]:
        """The data stream as (records, ts) chunks; ts scalar or per-record."""
        if self.data_chunks is not None:
            yield from self.data_chunks
            return
        pairs = iter(self.data_pairs)
        while True:
            records: list = []
            ts: list[int] = []
            for record, page_ts in pairs:
                records.append(record)
                ts.append(page_ts)
                if len(records) >= _DATA_CHUNK_RECORDS:
                    break
            if not records:
                return
            yield records, ts

    def _iter_kernel_lists(
        self, batches: Iterator["kernels.UpdateBatch"]
    ) -> Iterator[list]:
        """Join each update partition against its data key span, as lists."""
        schema = self.schema
        kp = schema.key_pos
        chunks = self._data_chunks()
        exhausted = False
        buf_records: list = []
        buf_keys: list[int] = []
        buf_ts: list[int] = []
        for batch in batches:
            max_key = int(batch.keys[-1])
            while not exhausted and (not buf_keys or buf_keys[-1] <= max_key):
                nxt = next(chunks, None)
                if nxt is None:
                    exhausted = True
                    break
                records, ts = nxt
                buf_records.extend(records)
                buf_keys.extend(r[kp] for r in records)
                if isinstance(ts, int):
                    buf_ts.extend([ts] * len(records))
                else:
                    buf_ts.extend(ts)
            split = bisect_right(buf_keys, max_key)
            out: list = []
            kernels.join_partition(
                batch,
                buf_records[:split],
                kernels.as_int64_array(buf_keys[:split]),
                buf_ts[:split],
                schema,
                out,
            )
            if split:
                del buf_records[:split], buf_keys[:split], buf_ts[:split]
            yield out
        # Data past the last update key passes through unmodified.
        if buf_records:
            yield buf_records
        if not exhausted:
            for records, _ in chunks:
                yield records

    def _iter_reference(self) -> Iterator[tuple]:
        schema = self.schema
        updates = iter(self.updates)
        update = next(updates, None)
        for record, page_ts in self.data_pairs:
            key = schema.key(record)
            # Updates strictly before this data key have no base record in
            # the table: only (re)insertions produce output.
            while update is not None and update.key < key:
                produced = apply_update(None, update, schema)
                if produced is not None:
                    yield produced
                update = next(updates, None)
            if update is not None and update.key == key:
                if update.timestamp > page_ts:
                    produced = apply_update(record, update, schema)
                    if produced is not None:
                        yield produced
                else:
                    # Already applied in place by a migration.
                    yield record
                update = next(updates, None)
            else:
                yield record
        # Insertions with keys past the end of the data stream.
        while update is not None:
            produced = apply_update(None, update, schema)
            if produced is not None:
                yield produced
            update = next(updates, None)
