"""MaSM's scan-side operators (Figure 6):

* :class:`RunScan`    — streams one materialized sorted run, narrowed by its
  run index (optionally through the shared decoded-block cache);
* :class:`MemScan`    — streams the in-memory buffer and survives concurrent
  re-sorts and flushes by handing over to a Run_scan;
* :class:`MergeUpdates` — merges many (key, ts)-ordered update streams and
  combines same-key updates;
* :class:`MergeDataUpdates` — the outer join of the table range scan with the
  combined update stream, using page timestamps to skip already-applied
  updates (what makes in-place migration safe, Section 3.2).

The merge core is batch-oriented: sources are compared on plain (key, ts)
tuples (no per-record method calls), a dedicated two-source loop serves the
common one-memory-stream-plus-one-run shape, and CPU time is charged to the
meter per batch of merged records rather than per record.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Optional

from repro.core.blockcache import DecodedBlockCache
from repro.core.membuffer import BufferFlushed, InMemoryUpdateBuffer
from repro.core.sortedrun import MaterializedSortedRun
from repro.core.update import UpdateRecord, apply_update, combine, combine_chain
from repro.engine.record import Schema
from repro.errors import ChecksumError, TransientIOError
from repro.storage.iosched import (
    MERGE_CPU_BATCH,
    MERGE_CPU_PER_UPDATE,
    CpuMeter,
)


def merge_update_streams(
    sources: list[Iterable[UpdateRecord]],
) -> Iterator[UpdateRecord]:
    """Merge (key, ts)-sorted update streams into one (key, ts)-sorted stream.

    Ties across sources break by source position (stable, like
    ``heapq.merge``).  Dispatches on the number of non-empty sources: most
    range scans see one memory stream plus one run, which the two-source
    loop serves without any heap at all.
    """
    iterators = [iter(s) for s in sources]
    primed: list[tuple[UpdateRecord, Iterator[UpdateRecord]]] = []
    for it in iterators:
        first = next(it, None)
        if first is not None:
            primed.append((first, it))
    if not primed:
        return
    if len(primed) == 1:
        head, it = primed[0]
        yield head
        yield from it
        return
    if len(primed) == 2:
        a, a_it = primed[0]
        b, b_it = primed[1]
        a_key = (a.key, a.timestamp)
        b_key = (b.key, b.timestamp)
        while True:
            if a_key <= b_key:
                yield a
                a = next(a_it, None)
                if a is None:
                    yield b
                    yield from b_it
                    return
                a_key = (a.key, a.timestamp)
            else:
                yield b
                b = next(b_it, None)
                if b is None:
                    yield a
                    yield from a_it
                    return
                b_key = (b.key, b.timestamp)
    # K-way: heap entries are (key, ts, source_idx, update); the index both
    # breaks ties stably and keeps UpdateRecords out of the comparisons.
    heap = [
        (u.key, u.timestamp, idx, u) for idx, (u, _) in enumerate(primed)
    ]
    heapq.heapify(heap)
    iters = [it for _, it in primed]
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    while heap:
        _, _, idx, update = heap[0]
        yield update
        nxt = next(iters[idx], None)
        if nxt is None:
            heappop(heap)
        else:
            heapreplace(heap, (nxt.key, nxt.timestamp, idx, nxt))


class RunScan:
    """Iterates one materialized run for a query's key range and timestamp.

    ``cache`` is the MaSM instance's shared :class:`DecodedBlockCache`;
    ``stats`` receives blocks-decoded counts (both optional).

    ``fallback`` makes the scan degrade gracefully when the run's SSD copy
    turns out to be damaged: if a block fails checksum verification (or a
    read keeps failing transiently past the retry budget), the scan hands
    over to ``fallback(after)`` — a slower but correct replacement stream,
    in practice MaSM's redo-log replay of the run's timestamp range.  The
    handover is seamless because the run scan verifies each block *before*
    yielding anything from it, so ``after`` (the last yielded (key, ts)
    position, or None) is an exact resume point — the same contract
    :class:`MemScan` uses when a flush hands it over to a run.
    """

    def __init__(
        self,
        run: MaterializedSortedRun,
        begin_key: int,
        end_key: int,
        query_ts: Optional[int] = None,
        cache: Optional[DecodedBlockCache] = None,
        stats=None,
        fallback: Optional[
            Callable[[Optional[tuple[int, int]]], Iterable[UpdateRecord]]
        ] = None,
    ) -> None:
        self.run = run
        self.begin_key = begin_key
        self.end_key = end_key
        self.query_ts = query_ts
        self.cache = cache
        self.stats = stats
        self.fallback = fallback

    def __iter__(self) -> Iterator[UpdateRecord]:
        if self.run.quarantined and self.fallback is not None:
            yield from self.fallback(None)
            return
        source = self.run.scan(
            self.begin_key,
            self.end_key,
            self.query_ts,
            cache=self.cache,
            stats=self.stats,
        )
        if self.fallback is None:
            yield from source
            return
        last: Optional[tuple[int, int]] = None
        while True:
            try:
                update = next(source)
            except StopIteration:
                return
            except (ChecksumError, TransientIOError):
                # The run's bytes can no longer be trusted (or read); switch
                # to the fallback stream, resuming after the last record
                # already delivered.
                yield from self.fallback(last)
                return
            last = (update.key, update.timestamp)
            yield update


class MemScan:
    """Iterates the in-memory buffer; hands over to a run on flush.

    ``run_for_flush`` maps a flush epoch to the materialized run that flush
    produced, so the scan can continue exactly where it stopped (Section 3.2:
    "Mem_scan will instantiate a Run_scan operator for the new materialized
    sorted run and replaces itself").
    """

    def __init__(
        self,
        buffer: InMemoryUpdateBuffer,
        begin_key: int,
        end_key: int,
        query_ts: int,
        run_for_flush: Optional[Callable[[int], Optional[MaterializedSortedRun]]] = None,
        cache: Optional[DecodedBlockCache] = None,
        stats=None,
        flush_epoch: Optional[int] = None,
    ) -> None:
        self.buffer = buffer
        self.begin_key = begin_key
        self.end_key = end_key
        self.query_ts = query_ts
        self.run_for_flush = run_for_flush
        self.cache = cache
        self.stats = stats
        #: Buffer flush epoch at scan registration.  The cursor below is
        #: built lazily (first pull), so without this baseline a flush
        #: between registration and first pull goes undetected and the
        #: flushed updates silently disappear from the scan.
        self.flush_epoch = flush_epoch

    def __iter__(self) -> Iterator[UpdateRecord]:
        cursor = self.buffer.cursor(
            self.begin_key,
            self.end_key,
            self.query_ts,
            flush_epoch=self.flush_epoch,
        )
        while True:
            try:
                update = next(cursor)
            except StopIteration:
                return
            except BufferFlushed as flushed:
                if self.run_for_flush is None:
                    return
                run = self.run_for_flush(flushed.flush_epoch)
                if run is None:
                    return
                yield from run.scan(
                    self.begin_key,
                    self.end_key,
                    self.query_ts,
                    after=cursor.last_position,
                    cache=self.cache,
                    stats=self.stats,
                )
                return
            yield update


class MergeUpdates:
    """K-way merge of sorted update streams, combining same-key chains.

    Yields one combined :class:`UpdateRecord` per distinct key, in key order
    (the output the outer join consumes).  ``fast_path=False`` selects the
    record-at-a-time reference implementation (``heapq.merge`` keyed on
    ``UpdateRecord.sort_key``), kept for equivalence testing.
    """

    def __init__(
        self,
        sources: Iterable[Iterable[UpdateRecord]],
        schema: Schema,
        cpu: Optional[CpuMeter] = None,
        fast_path: bool = True,
    ) -> None:
        self.sources = list(sources)
        self.schema = schema
        self.cpu = cpu
        self.fast_path = fast_path

    def __iter__(self) -> Iterator[UpdateRecord]:
        if not self.fast_path:
            return self._iter_reference()
        return self._iter_fast()

    def _iter_fast(self) -> Iterator[UpdateRecord]:
        schema = self.schema
        cpu = self.cpu
        merged = merge_update_streams(self.sources)
        pending: Optional[UpdateRecord] = None
        count = 0
        charged = 0
        for update in merged:
            count += 1
            if pending is None:
                pending = update
            elif update.key == pending.key:
                pending = combine(pending, update, schema)
            else:
                yield pending
                pending = update
                if cpu is not None and count - charged >= MERGE_CPU_BATCH:
                    cpu.charge_batch(count - charged, MERGE_CPU_PER_UPDATE)
                    charged = count
        if pending is not None:
            yield pending
        if cpu is not None and count > charged:
            cpu.charge_batch(count - charged, MERGE_CPU_PER_UPDATE)

    def _iter_reference(self) -> Iterator[UpdateRecord]:
        merged = heapq.merge(*self.sources, key=UpdateRecord.sort_key)
        chain: list[UpdateRecord] = []
        count = 0
        for update in merged:
            count += 1
            if chain and update.key != chain[0].key:
                yield combine_chain(chain, self.schema)
                chain = []
            chain.append(update)
        if chain:
            yield combine_chain(chain, self.schema)
        if self.cpu is not None and count:
            self.cpu.charge(count * MERGE_CPU_PER_UPDATE)


class MergeDataUpdates:
    """Outer join of (record, page_ts) pairs with combined updates.

    The update stream and the data stream are both key-ordered.  An update
    whose timestamp is <= the page timestamp of the matching record has
    already been applied in place (by a migration) and is skipped — the
    timestamp rule that lets queries run during in-place migration.
    """

    def __init__(
        self,
        data_pairs: Iterable[tuple[tuple, int]],
        updates: Iterable[UpdateRecord],
        schema: Schema,
        cpu: Optional[CpuMeter] = None,
    ) -> None:
        self.data_pairs = data_pairs
        self.updates = updates
        self.schema = schema
        self.cpu = cpu

    def __iter__(self) -> Iterator[tuple]:
        schema = self.schema
        updates = iter(self.updates)
        update = next(updates, None)
        for record, page_ts in self.data_pairs:
            key = schema.key(record)
            # Updates strictly before this data key have no base record in
            # the table: only (re)insertions produce output.
            while update is not None and update.key < key:
                produced = apply_update(None, update, schema)
                if produced is not None:
                    yield produced
                update = next(updates, None)
            if update is not None and update.key == key:
                if update.timestamp > page_ts:
                    produced = apply_update(record, update, schema)
                    if produced is not None:
                        yield produced
                else:
                    # Already applied in place by a migration.
                    yield record
                update = next(updates, None)
            else:
                yield record
        # Insertions with keys past the end of the data stream.
        while update is not None:
            produced = apply_update(None, update, schema)
            if produced is not None:
                yield produced
            update = next(updates, None)
