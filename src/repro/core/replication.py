"""Shard replication: N MaSM engines per key range, failover, catch-up.

A :class:`ReplicaSet` runs the same key range on N independent nodes (each
built by the exact :func:`~repro.core.sharding.build_shard_node` recipe an
unreplicated shard uses).  Replication is deterministic
*primary-applies-then-ships*: the primary ingests an update — which logs it
to the primary's redo log before buffering — and then ships the **same**
:class:`UpdateRecord` (same timestamp, same payload) to every ONLINE
follower.  Because MaSM visibility is a pure function of the update stream
and the query timestamp, two replicas that ingested the same stream return
byte-identical rows for any scan at the same snapshot ts, regardless of how
differently their buffers flushed or their runs merged.

Failure model (driven by :class:`~repro.storage.faults.NodeFaultPlan` or by
explicit :meth:`crash_replica` calls):

* a **crashed** replica loses its in-memory state; its heap file, SSD run
  files and redo log survive.  A crashed primary is failed over: the next
  ONLINE follower is promoted (it holds the full shipped history, so no
  data is lost — replication is synchronous).
* a follower that fails a ship is marked CRASHED immediately: a replica
  that missed even one update may no longer serve reads.
* **rejoin** is a two-step path: :meth:`recover_replica` rebuilds the
  engine from the surviving durable state (the standard
  :func:`~repro.txn.recovery.recover_masm` crash-recovery path), then
  :meth:`catch_up` replays, from the *current primary's* redo log, exactly
  the UPDATE records newer than the rejoiner's recovered watermark.

Checkpointing bounds the WAL (:meth:`ReplicaSet.maintenance`): each ONLINE
replica periodically cuts a :class:`~repro.txn.log.Checkpoint` — a fence
``checkpoint_ts`` below which its flushed runs and migrated ranges are the
durable home of every update — and compacts away the WAL prefix it covers,
zeroing the reclaimed tail in governor-paced slices.  That makes redo logs
*finite*, which introduces the one case incremental rejoin cannot handle: a
replica whose recovered watermark predates the primary's truncation fence
(or whose durable state was wiped entirely) raises
:class:`~repro.errors.BootstrapRequiredError` and is instead rebuilt
wholesale by :meth:`ReplicaSet.bootstrap_replica` — a CRC-verified engine
snapshot (heap + runs + checkpoint manifest) exported from a healthy peer,
installed over a fresh WAL, then caught up ``ts > snapshot_ts`` as usual.

Anti-entropy (:meth:`ReplicaSet.anti_entropy`) closes the silent-corruption
gap: each ONLINE replica checksum-verifies its runs; a damaged run is
rebuilt from the replica's own redo log when the log still covers its span,
otherwise from a healthy peer (the donor hands over the damaged run's raw
timestamp span — run *layouts* diverge across replicas, run *contents* per
span do not).  The serving router additionally schedules a targeted repair
whenever a fan-out scan fails typed or hedged replicas disagree
(read-repair).

Watermark correctness: timestamps are drawn from one shared oracle, and a
replica receives every update while ONLINE — so everything it missed has a
timestamp strictly greater than everything it durably saw
(``RecoveryReport.max_timestamp_seen``).  Catch-up replays ``ts >
watermark`` and can neither skip nor double-apply an update.

:class:`ReplicatedWarehouse` composes one :class:`ReplicaSet` per shard
behind the same routing surface :class:`ShardedWarehouse` offers, plus the
per-replica scan entry points the hedged fan-out executor in
:mod:`repro.server.router` schedules over.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from itertools import chain
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

import dataclasses as _dc

from repro.core import kernels
from repro.core.masm import MaSM, MaSMConfig
from repro.core.sharding import ShardNode, build_shard_node, hash_partitioner
from repro.core.update import UpdateRecord, UpdateType
from repro.engine.record import Schema
from repro.engine.table import Table
from repro.errors import (
    BootstrapRequiredError,
    NoHealthyReplicaError,
    ReplicaUnavailableError,
    ReplicationError,
    ReproError,
)
from repro.obs import get_registry, trace
from repro.storage.clock import SimClock
from repro.storage.faults import NodeFaultPlan
from repro.txn.log import LogRecordType, RedoLog
from repro.txn.recovery import recover_masm
from repro.txn.timestamps import TimestampOracle
from repro.util.units import KB, MB

#: Default background-zeroing slice for reclaimed WAL space (scaled down by
#: the replica's governor pacing fraction when foreground load is high).
DEFAULT_SCRUB_SLICE = 256 * KB

#: Rows between mid-scan fault-plan consultations: a node that crashes
#: while a scan is draining fails the scan within one stride, not at the
#: next scan.
FAULT_CHECK_STRIDE = 64


class ReplicaState(enum.Enum):
    ONLINE = "online"
    CRASHED = "crashed"
    CATCHING_UP = "catching_up"
    #: A snapshot install is in flight: the replica's durable state was lost
    #: (or predates the primary's WAL truncation fence) and is being rebuilt
    #: wholesale from a healthy peer's export.
    BOOTSTRAPPING = "bootstrapping"


@dataclass
class Replica:
    """One member of a replica set: a full shard node plus replica state."""

    shard_id: int
    replica_id: int
    node: ShardNode
    config: MaSMConfig
    state: ReplicaState = ReplicaState.ONLINE
    faults: Optional[NodeFaultPlan] = None
    #: Durable state (runs + WAL) was destroyed; only a snapshot bootstrap
    #: can bring this replica back.
    wiped: bool = False

    @property
    def masm(self) -> MaSM:
        return self.node.masm

    @property
    def table(self) -> Table:
        return self.node.table

    @property
    def wal(self) -> Optional[RedoLog]:
        return self.node.masm.redo_log

    @property
    def name(self) -> str:
        return f"shard{self.shard_id}.r{self.replica_id}"


class ReplicaSet:
    """N MaSM engines over one key range with deterministic replication."""

    def __init__(
        self,
        shard_id: int,
        schema: Schema,
        oracle: TimestampOracle,
        clock: SimClock,
        replicas: list[Replica],
    ) -> None:
        if not replicas:
            raise ReplicationError("a replica set needs at least one replica")
        self.shard_id = shard_id
        self.schema = schema
        self.oracle = oracle
        self.clock = clock
        self.replicas = replicas
        self.primary_id = replicas[0].replica_id
        registry = get_registry()
        self._obs_ships = registry.counter("replication.ships")
        self._obs_failovers = registry.counter("replication.failovers")
        self._obs_follower_drops = registry.counter("replication.follower_drops")
        self._obs_catchup = registry.counter("replication.catchup_updates")
        self._obs_recoveries = registry.counter("replication.recoveries")
        self._obs_checkpoints = registry.counter("replication.checkpoints")
        self._obs_bootstraps = registry.counter("replication.bootstraps")
        self._obs_repairs = registry.counter("replication.repairs")
        self._obs_scrubs = registry.counter("replication.scrubs")
        self._online_gauge = registry.gauge(
            f"replication.shard.{shard_id}.online"
        )
        self._online_gauge.set(len(replicas))

    # -------------------------------------------------------------- building
    @classmethod
    def build(
        cls,
        shard_id: int,
        schema: Schema,
        oracle: TimestampOracle,
        clock: SimClock,
        replication: int = 3,
        *,
        records_per_node: int = 20_000,
        disk_capacity: int = 256 * MB,
        ssd_capacity: int = 8 * MB,
        masm_config: Optional[MaSMConfig] = None,
        wrap_device: Optional[Callable[[str, object], object]] = None,
        node_faults: Optional[Dict[int, NodeFaultPlan]] = None,
    ) -> "ReplicaSet":
        """Build ``replication`` identical nodes for one shard.

        Every replica gets a redo log (replication *requires* WALs: the
        catch-up path replays the primary's).  Followers are built with
        admission governance stripped — the primary's admission decision
        is the set's decision; a follower that shed a shipped update would
        silently diverge.
        """
        if replication < 1:
            raise ReplicationError(f"replication must be >= 1, got {replication}")
        replicas: list[Replica] = []
        for replica_id in range(replication):
            config = (
                _dc.replace(masm_config)
                if masm_config is not None
                else MaSMConfig(alpha=1.2, auto_migrate=False)
            )
            if replica_id > 0:
                config = _dc.replace(config, overload_policy=None, governor=None)
            node = build_shard_node(
                shard_id,
                schema,
                records_per_node=records_per_node,
                disk_capacity=disk_capacity,
                ssd_capacity=ssd_capacity,
                masm_config=config,
                oracle=oracle,
                clock=clock,
                wrap_device=wrap_device,
                attach_log=True,
                device_label=f"{shard_id}.{replica_id}",
                table_name=f"shard-{shard_id}",
                masm_name=f"masm-shard-{shard_id}r{replica_id}",
                wal_name=f"wal-{shard_id}r{replica_id}",
            )
            plan = (node_faults or {}).get(replica_id)
            replicas.append(
                Replica(shard_id, replica_id, node, config, faults=plan)
            )
        return cls(shard_id, schema, oracle, clock, replicas)

    # --------------------------------------------------------------- queries
    @property
    def primary(self) -> Replica:
        return self.replicas[self.primary_id]

    def replica(self, replica_id: int) -> Replica:
        return self.replicas[replica_id]

    def online_ids(self) -> list[int]:
        return [r.replica_id for r in self.replicas if r.state is ReplicaState.ONLINE]

    def replica_ids(self) -> list[int]:
        return [r.replica_id for r in self.replicas]

    def _set_state(self, replica: Replica, state: ReplicaState) -> None:
        replica.state = state
        self._online_gauge.set(len(self.online_ids()))

    # --------------------------------------------------------------- updates
    def _guard(self, replica: Replica) -> None:
        """State + node-fault check before any operation on ``replica``.

        A fault-plan crash converges into replica state here, so the set's
        view of who is alive tracks the injected schedule.
        """
        if replica.state is not ReplicaState.ONLINE:
            raise ReplicaUnavailableError(
                f"replica {replica.name} is {replica.state.value}"
            )
        if replica.faults is not None:
            try:
                replica.faults.before_op(self.clock)
            except ReplicaUnavailableError:
                if replica.faults.crashed(self.clock.now):
                    self._mark_crashed(replica)
                raise

    def _mark_crashed(self, replica: Replica) -> None:
        if replica.state is ReplicaState.CRASHED:
            return
        self._set_state(replica, ReplicaState.CRASHED)
        if replica.replica_id == self.primary_id:
            self._promote()

    def _promote(self) -> None:
        """Fail the primary over to the next ONLINE follower.

        Safe because replication is synchronous: every ONLINE follower has
        ingested the complete shipped history, so any of them can serve as
        primary without data loss.
        """
        for replica in self.replicas:
            if replica.state is ReplicaState.ONLINE:
                self.primary_id = replica.replica_id
                self._obs_failovers.add(1)
                with trace(
                    "replication.failover",
                    shard=self.shard_id,
                    new_primary=replica.replica_id,
                ):
                    pass
                return
        # No ONLINE replica: leave primary_id pointing at the corpse; the
        # next apply/scan raises NoHealthyReplicaError.

    def apply(self, update: UpdateRecord) -> None:
        """Primary applies, then ships the same record to ONLINE followers.

        A primary that fails mid-apply is marked CRASHED and the apply is
        retried on the promoted follower — the client sees one successful
        ingest, not a failure plus a retry.  Followers that fail their
        ship are dropped (CRASHED) and must rejoin via recover + catch-up.
        """
        while True:
            primary = self.primary
            if primary.state is not ReplicaState.ONLINE:
                raise NoHealthyReplicaError(
                    f"shard {self.shard_id}: no online replica to apply "
                    f"update ts={update.timestamp}"
                )
            try:
                self._guard(primary)
                primary.masm.apply(update)
                break
            except ReplicaUnavailableError:
                self._mark_crashed(primary)
                if not self.online_ids():
                    raise NoHealthyReplicaError(
                        f"shard {self.shard_id}: every replica is down"
                    ) from None
                continue
        for follower in self.replicas:
            if (
                follower.replica_id == self.primary_id
                or follower.state is not ReplicaState.ONLINE
            ):
                continue
            try:
                self._guard(follower)
                follower.masm.apply(update)
                self._obs_ships.add(1)
            except ReproError:
                # Any failed ship (node fault, storage error, shed) leaves
                # the follower behind by one update: drop it from the set
                # until it rejoins through recover + catch-up.
                self._obs_follower_drops.add(1)
                self._mark_crashed(follower)

    def insert(self, record: tuple) -> int:
        ts = self.oracle.next()
        self.apply(
            UpdateRecord(ts, self.schema.key(record), UpdateType.INSERT, record)
        )
        return ts

    def delete(self, key: int) -> int:
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.DELETE, None))
        return ts

    def modify(self, key: int, changes: dict) -> int:
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.MODIFY, dict(changes)))
        return ts

    # ----------------------------------------------------------------- scans
    def scan(
        self,
        begin_key: int,
        end_key: int,
        query_ts: int,
        replica_id: Optional[int] = None,
    ) -> Iterator[tuple]:
        """Scan one replica (default: the primary) at a pinned snapshot ts.

        The stream re-consults the replica's fault plan every
        :data:`FAULT_CHECK_STRIDE` rows, so a node that crashes or wedges
        *mid-drain* fails the scan with :class:`ReplicaUnavailableError`
        promptly — which is what lets the fan-out executor fail the
        partition over to another replica under the same ``query_ts`` and
        still return byte-identical rows.
        """
        replica = self.replicas[
            self.primary_id if replica_id is None else replica_id
        ]
        self._guard(replica)
        inner = replica.masm.range_scan(begin_key, end_key, query_ts=query_ts)

        def stream() -> Iterator[tuple]:
            emitted = 0
            for row in inner:
                yield row
                emitted += 1
                if emitted % FAULT_CHECK_STRIDE == 0:
                    self._guard(replica)

        return stream()

    # ------------------------------------------------------------- lifecycle
    def crash_replica(self, replica_id: int) -> None:
        """Kill a replica: in-memory state is lost, durable files survive."""
        self._mark_crashed(self.replicas[replica_id])

    def recover_replica(self, replica_id: int) -> "Replica":
        """Rebuild a crashed replica's engine from its surviving storage.

        The standard crash-recovery path: a bare table over the surviving
        heap, the surviving redo log rescanned from offset zero, runs
        reloaded from the SSD.  The replica comes back CATCHING_UP — it
        holds everything it durably saw, but nothing shipped while it was
        down — and must :meth:`catch_up` before serving again.
        """
        replica = self.replicas[replica_id]
        if replica.state is not ReplicaState.CRASHED:
            raise ReplicationError(
                f"replica {replica.name} is {replica.state.value}, not crashed"
            )
        if replica.wiped:
            raise BootstrapRequiredError(
                f"replica {replica.name} was wiped: no durable state to "
                "recover; bootstrap from a healthy peer"
            )
        old = replica.masm
        if old.redo_log is None:
            raise ReplicationError(
                f"replica {replica.name} has no redo log to recover from"
            )
        bare = Table(old.table.name, old.table.schema, old.table.heap)
        bare.heap.num_pages = old.table.heap.capacity_pages
        fresh_log = RedoLog(old.redo_log.file)
        fresh_log.file._append_pos = 0  # the append cursor died with the node
        recovered, report = recover_masm(
            bare,
            old.ssd,
            fresh_log,
            config=replica.config,
            oracle=self.oracle,
            name=old.name,
        )
        if report.unrecoverable_gaps:
            # Damaged runs whose content predates the checkpoint fence: the
            # truncated log cannot rebuild them, so the local state is
            # silently incomplete — serving from it would break the
            # byte-identical invariant.  Stay CRASHED; bootstrap instead.
            raise BootstrapRequiredError(
                f"replica {replica.name}: recovery found "
                f"{report.unrecoverable_gaps} timestamp gap(s) below the "
                f"checkpoint fence {report.checkpoint_ts}; local rebuild is "
                "impossible — bootstrap from a healthy peer"
            )
        # Everything the replica durably ingested has ts <= this watermark;
        # everything it missed while down is strictly newer (one shared,
        # monotonic oracle).  catch_up() replays exactly ts > watermark.
        recovered.last_update_ts = max(
            report.max_timestamp_seen, recovered.flushed_through
        )
        node = replica.node
        replica.node = ShardNode(
            node.node_id, node.disk, node.ssd, bare, recovered, node.cpu
        )
        if replica.faults is not None:
            replica.faults.recover()
        self._set_state(replica, ReplicaState.CATCHING_UP)
        self._obs_recoveries.add(1)
        return replica

    def catch_up(self, replica_id: int) -> int:
        """Replay missed updates from the current primary's redo log.

        Returns the number of updates applied.  The rejoiner transitions
        ONLINE afterwards and is eligible for reads, ships and promotion.
        """
        replica = self.replicas[replica_id]
        if replica.state is not ReplicaState.CATCHING_UP:
            raise ReplicationError(
                f"replica {replica.name} is {replica.state.value}; "
                "recover_replica() first"
            )
        primary = self.primary
        if primary.state is not ReplicaState.ONLINE:
            if not self.online_ids():
                # Total outage, and this replica is the first one back:
                # there is nobody to replay from, so its recovered local
                # WAL *is* the authoritative state.  (Ships are synchronous
                # to every online replica, so the last replica to crash —
                # which is the one operators rejoin first — holds every
                # acknowledged update.)  Promote it and resume service;
                # later rejoiners catch up or bootstrap from it as usual.
                self._set_state(replica, ReplicaState.ONLINE)
                self.primary_id = replica_id
                return 0
            raise NoHealthyReplicaError(
                f"shard {self.shard_id}: no online primary to catch up from"
            )
        applied = 0
        if replica is not primary:
            watermark = replica.masm.last_update_ts
            source = primary.wal
            if source is None:
                raise ReplicationError(
                    f"primary {primary.name} has no redo log to catch up from"
                )
            if source.truncated_through > watermark:
                # The primary checkpointed and reclaimed WAL records the
                # rejoiner still needs: incremental catch-up would silently
                # skip them.  Only a snapshot bootstrap can close the gap.
                self._set_state(replica, ReplicaState.CRASHED)
                raise BootstrapRequiredError(
                    f"replica {replica.name}: watermark {watermark} predates "
                    f"the primary's WAL truncation fence "
                    f"{source.truncated_through}; bootstrap required"
                )
            with trace(
                "replication.catch_up",
                shard=self.shard_id,
                replica=replica_id,
                watermark=watermark,
            ):
                for record in source.records():
                    if (
                        record.type is LogRecordType.UPDATE
                        and record.table == primary.table.name
                        and record.update.timestamp > watermark
                    ):
                        replica.masm.apply(record.update)
                        applied += 1
        self._obs_catchup.add(applied)
        self._set_state(replica, ReplicaState.ONLINE)
        return applied

    def rejoin(self, replica_id: int) -> int:
        """Recover + catch up, falling back to a snapshot bootstrap.

        The incremental path (local crash recovery, then WAL replay from
        the primary) is tried first; when it is impossible — the replica
        was wiped, its damaged runs predate the checkpoint fence, or its
        watermark predates the primary's WAL truncation — the replica is
        bootstrapped wholesale from a healthy peer instead.  Either way
        the replica ends ONLINE with byte-identical content.
        """
        try:
            self.recover_replica(replica_id)
        except BootstrapRequiredError:
            return self.bootstrap_replica(replica_id)
        try:
            return self.catch_up(replica_id)
        except BootstrapRequiredError:
            return self.bootstrap_replica(replica_id)

    def wipe_replica(self, replica_id: int) -> None:
        """Destroy a replica's durable state (runs *and* WAL).

        Models total node loss — disk replacement, datacenter fire, a
        provisioning bug.  The replica is crashed first (if it was not
        already); afterwards only :meth:`bootstrap_replica` can revive it.
        """
        replica = self.replicas[replica_id]
        if replica.state is not ReplicaState.CRASHED:
            self._mark_crashed(replica)
        ssd_volume = replica.masm.ssd
        for file_name in list(ssd_volume):
            ssd_volume.delete(file_name)
        # Total loss includes the base data: zero the heap's logical extent
        # so nothing of the old contents can leak into a later bootstrap.
        heap = replica.table.heap
        if heap.num_pages:
            heap.file.zero_range(0, heap.num_pages * heap.page_size)
        heap.truncate(0)
        replica.wiped = True
        get_registry().counter("replication.wipes").add(1)

    def bootstrap_replica(
        self, replica_id: int, source_id: Optional[int] = None
    ) -> int:
        """Rebuild a replica wholesale from a healthy peer's snapshot.

        Exports a consistent engine snapshot (heap + runs + checkpoint
        manifest, CRC-verified end to end) from ``source_id`` (default: the
        primary), installs it into the target over a fresh WAL seeded with
        the translated checkpoint, then catches up ``ts > snapshot_ts``
        from the primary's (finite) WAL.  Returns the number of catch-up
        updates applied.
        """
        replica = self.replicas[replica_id]
        if replica.state not in (ReplicaState.CRASHED, ReplicaState.ONLINE):
            raise ReplicationError(
                f"replica {replica.name} is {replica.state.value}; cannot "
                "bootstrap"
            )
        if replica.state is ReplicaState.ONLINE:
            self._mark_crashed(replica)
        if source_id is None:
            source_id = (
                self.primary_id
                if self.primary.state is ReplicaState.ONLINE
                else next(iter(self.online_ids()), None)
            )
        if source_id is None or source_id == replica_id:
            raise NoHealthyReplicaError(
                f"shard {self.shard_id}: no healthy peer to bootstrap "
                f"replica {replica_id} from"
            )
        source = self.replicas[source_id]
        self._guard(source)
        self._set_state(replica, ReplicaState.BOOTSTRAPPING)
        with trace(
            "replication.bootstrap",
            shard=self.shard_id,
            replica=replica_id,
            source=source_id,
        ):
            snapshot = source.masm.export_snapshot()
            old = replica.masm
            wal_name = (
                old.redo_log.file.name
                if old.redo_log is not None
                else f"wal-{self.shard_id}r{replica_id}"
            )
            ssd_volume = old.ssd
            for file_name in list(ssd_volume):
                ssd_volume.delete(file_name)
            bare = Table(old.table.name, old.table.schema, old.table.heap)
            fresh_log = RedoLog(
                ssd_volume.create(
                    wal_name, ssd_volume.device.capacity // 4
                )
            )
            installed, translated = MaSM.install_snapshot(
                snapshot,
                bare,
                ssd_volume,
                config=replica.config,
                oracle=self.oracle,
                name=old.name,
            )
            installed.attach_log(fresh_log)
            fresh_log.log_checkpoint(translated)
            # The fresh WAL genuinely lacks everything below the snapshot
            # fence — mark it so log-fallback/coverage checks stay honest.
            fresh_log.truncated_through = snapshot.snapshot_ts
            installed.last_checkpoint_ts = snapshot.snapshot_ts
            node = replica.node
            replica.node = ShardNode(
                node.node_id, node.disk, node.ssd, bare, installed, node.cpu
            )
            replica.wiped = False
            if replica.faults is not None:
                replica.faults.recover()
            self._set_state(replica, ReplicaState.CATCHING_UP)
            self._obs_bootstraps.add(1)
            self._obs_recoveries.add(1)
        return self.catch_up(replica_id)

    # ---------------------------------------------------------- housekeeping
    def maintenance(
        self,
        wal_budget_bytes: Optional[int] = None,
        scrub_slice: int = DEFAULT_SCRUB_SLICE,
        force_checkpoint: bool = False,
    ) -> dict:
        """One background housekeeping tick per ONLINE replica.

        Cuts a checkpoint (and truncates the WAL behind it) on any replica
        whose live WAL exceeds ``wal_budget_bytes`` (default: half the WAL
        file), zeroes one paced slice of previously reclaimed space, and
        refreshes the per-replica gauges (``replication.shard.S.rR.*``).
        The zeroing slice is scaled by the replica's governor pacing
        fraction, so reclaim I/O backs off exactly like migration I/O does
        when foreground latency climbs.
        """
        registry = get_registry()
        report: dict = {}
        for replica in self.replicas:
            wal = replica.wal
            entry = {"state": replica.state.value}
            if wal is not None and not replica.wiped:
                if (
                    replica.state is ReplicaState.ONLINE
                ):
                    budget = (
                        wal_budget_bytes
                        if wal_budget_bytes is not None
                        else wal.file.size // 2
                    )
                    if force_checkpoint or wal.live_bytes >= budget:
                        result = replica.masm.checkpoint_and_truncate()
                        if result is not None:
                            cp, trunc = result
                            entry["checkpoint_ts"] = cp.checkpoint_ts
                            entry["reclaimed_bytes"] = trunc.reclaimed_bytes
                            self._obs_checkpoints.add(1)
                    slice_bytes = scrub_slice
                    governor = replica.masm.governor
                    if governor is not None:
                        slice_bytes = max(
                            4 * KB,
                            int(scrub_slice * governor.pacer.fraction),
                        )
                    entry["zeroed_bytes"] = wal.scrub_dirty(slice_bytes)
                entry["wal_bytes"] = wal.live_bytes
                entry["checkpoint_age"] = max(
                    0,
                    replica.masm.last_update_ts
                    - replica.masm.last_checkpoint_ts,
                )
                prefix = (
                    f"replication.shard.{self.shard_id}.r{replica.replica_id}"
                )
                registry.gauge(f"{prefix}.wal_bytes").set(wal.live_bytes)
                registry.gauge(f"{prefix}.checkpoint_age").set(
                    entry["checkpoint_age"]
                )
            report[replica.name] = entry
        return report

    def anti_entropy(self) -> dict:
        """One scrub-and-repair pass over every ONLINE replica.

        Each replica checksum-verifies its runs; damage is repaired from
        the replica's own redo log when the log still covers it, otherwise
        by fetching the damaged run's timestamp span from a healthy peer.
        Runs that stay quarantined (no covering log, no healthy peer) are
        reported so the operator can bootstrap the replica.
        """
        online = [
            r for r in self.replicas if r.state is ReplicaState.ONLINE
        ]
        repaired: list[tuple[str, str]] = []
        unrepaired: list[tuple[str, str]] = []
        for replica in online:
            report = replica.masm.scrub(repair=True)
            self._obs_scrubs.add(1)
            for run_name in report.repaired:
                repaired.append((replica.name, run_name))
                self._obs_repairs.add(1)
            for run_name in report.quarantined:
                fixed = False
                for donor in online:
                    if donor is replica:
                        continue
                    try:
                        fixed = replica.masm.repair_run_from_peer(
                            run_name, donor.masm
                        )
                    except ReproError:
                        continue
                    if fixed:
                        break
                if fixed:
                    repaired.append((replica.name, run_name))
                    self._obs_repairs.add(1)
                else:
                    unrepaired.append((replica.name, run_name))
        return {"repaired": repaired, "unrepaired": unrepaired}


class ReplicatedWarehouse:
    """N-way replicated shards behind the :class:`ShardedWarehouse` surface.

    Same public routing API (``bulk_load`` / ``insert`` / ``delete`` /
    ``modify`` / ``partitioned_range_scan``), plus the per-replica scan
    entry points (:meth:`scan_shard_partition`, :meth:`shard_route_ids`)
    the hedged fan-out executor schedules over, and the chaos levers
    (:meth:`crash_replica` / :meth:`rejoin_replica`) the availability
    driver pulls.  A shared clock is mandatory: failover and hedging are
    decisions *about time*, so every replica must live on one timeline.
    """

    def __init__(
        self,
        schema: Schema,
        num_shards: int,
        clock: SimClock,
        replication: int = 3,
        partitioner: Optional[Callable[[int], int]] = None,
        records_per_node: int = 20_000,
        disk_capacity: int = 256 * MB,
        ssd_capacity: int = 8 * MB,
        masm_config: Optional[MaSMConfig] = None,
        wrap_device: Optional[Callable[[str, object], object]] = None,
        node_faults: Optional[Dict[Tuple[int, int], NodeFaultPlan]] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if clock is None:
            raise ValueError("replication needs one shared SimClock timeline")
        self.schema = schema
        self.route = partitioner or hash_partitioner(num_shards)
        self.oracle = TimestampOracle()
        self.clock = clock
        self.replication = replication
        faults = node_faults or {}
        self.shards: list[ReplicaSet] = [
            ReplicaSet.build(
                shard_id,
                schema,
                self.oracle,
                clock,
                replication,
                records_per_node=records_per_node,
                disk_capacity=disk_capacity,
                ssd_capacity=ssd_capacity,
                masm_config=masm_config,
                wrap_device=wrap_device,
                node_faults={
                    rid: plan
                    for (sid, rid), plan in faults.items()
                    if sid == shard_id
                },
            )
            for shard_id in range(num_shards)
        ]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------- loading
    def bulk_load(self, records: Iterable[tuple]) -> None:
        """Partition and load records into *every* replica of each shard."""
        shares: list[list[tuple]] = [[] for _ in self.shards]
        for record in records:
            shares[self.route(self.schema.key(record))].append(record)
        for shard, share in zip(self.shards, shares):
            share.sort(key=self.schema.key)
            for replica in shard.replicas:
                replica.table.bulk_load(share)

    @property
    def row_count(self) -> int:
        return sum(shard.primary.table.row_count for shard in self.shards)

    # -------------------------------------------------------------- updates
    def insert(self, record: tuple) -> int:
        return self.shards[self.route(self.schema.key(record))].insert(record)

    def delete(self, key: int) -> int:
        return self.shards[self.route(key)].delete(key)

    def modify(self, key: int, changes: dict) -> int:
        return self.shards[self.route(key)].modify(key, changes)

    # ---------------------------------------------------------------- scans
    def partition_bounds(
        self,
        begin_key: int,
        end_key: int,
        blocks_per_partition: int = kernels.DEFAULT_BLOCKS_PER_PARTITION,
    ) -> list[tuple[int, int]]:
        """Key-range partitions from the primaries' run indexes.

        Bounds only decide scan granularity, never visibility — a failover
        that changes which replica's indexes seed the split cannot change
        which rows a snapshot returns.
        """
        indexes = [
            run.index
            for shard in self.shards
            for run in shard.primary.masm.runs
        ]
        bounds = kernels.partition_points(
            indexes, begin_key, end_key, blocks_per_partition
        )
        return [
            (lo, end_key if hi is None else hi)
            for lo, hi in kernels.partition_ranges(bounds, begin_key, end_key)
        ]

    def scan_shard_partition(
        self,
        shard_id: int,
        begin_key: int,
        end_key: int,
        query_ts: int,
        replica_id: Optional[int] = None,
    ) -> Iterator[tuple]:
        """One shard's contribution to one partition, on one replica."""
        return self.shards[shard_id].scan(
            begin_key, end_key, query_ts, replica_id=replica_id
        )

    def shard_route_ids(self, shard_id: int) -> tuple[int, list[int]]:
        """(primary id, schedulable replica ids) — the executor's routing.

        Only ONLINE replicas are offered to the fan-out executor: a
        BOOTSTRAPPING or CATCHING_UP replica would fail the scan's guard
        anyway, and offering it just burns a hedge attempt.  When nothing
        is ONLINE the full roster is returned so the executor surfaces
        :class:`NoHealthyReplicaError` through its normal typed path.
        """
        shard = self.shards[shard_id]
        online = shard.online_ids()
        if not online:
            return shard.primary_id, shard.replica_ids()
        primary = (
            shard.primary_id if shard.primary_id in online else online[0]
        )
        return primary, online

    def partitioned_range_scan(
        self,
        begin_key: int,
        end_key: int,
        blocks_per_partition: int = kernels.DEFAULT_BLOCKS_PER_PARTITION,
        query_ts: Optional[int] = None,
    ) -> Iterator[tuple]:
        """Primary-only partitioned fan-out (no hedging, no failover).

        The plain path for clients that do not run through the serving
        router; each partition merges the primaries key-ordered.
        """
        if query_ts is None:
            query_ts = self.oracle.next()

        def scan_partition(lo: int, hi: int) -> Iterator[tuple]:
            streams = [
                shard.scan(lo, hi, query_ts) for shard in self.shards
            ]
            return heapq.merge(*streams, key=self.schema.key)

        return chain.from_iterable(
            scan_partition(lo, hi)
            for lo, hi in self.partition_bounds(
                begin_key, end_key, blocks_per_partition
            )
        )

    # ----------------------------------------------------------------- chaos
    def crash_replica(self, shard_id: int, replica_id: int) -> None:
        self.shards[shard_id].crash_replica(replica_id)

    def rejoin_replica(self, shard_id: int, replica_id: int) -> int:
        return self.shards[shard_id].rejoin(replica_id)

    def wipe_replica(self, shard_id: int, replica_id: int) -> None:
        self.shards[shard_id].wipe_replica(replica_id)

    def bootstrap_replica(
        self,
        shard_id: int,
        replica_id: int,
        source_id: Optional[int] = None,
    ) -> int:
        return self.shards[shard_id].bootstrap_replica(
            replica_id, source_id=source_id
        )

    # ----------------------------------------------------------- background
    def maintenance(self, **kwargs) -> Dict[str, dict]:
        """One checkpoint/truncate/zeroing tick across every shard."""
        report: Dict[str, dict] = {}
        for shard in self.shards:
            report.update(shard.maintenance(**kwargs))
        return report

    def anti_entropy(self) -> Dict[int, dict]:
        """One scrub-and-peer-repair pass across every shard."""
        return {
            shard.shard_id: shard.anti_entropy() for shard in self.shards
        }

    def run_repairs(self, queue) -> list[dict]:
        """Drain a :class:`~repro.server.health.RepairQueue`.

        Each entry names a shard whose fan-out observed a failed or
        divergent replica scan; one anti-entropy pass per distinct shard
        repairs whatever the divergence was symptomatic of.
        """
        results: list[dict] = []
        for shard_id in queue.drain():
            results.append(self.shards[shard_id].anti_entropy())
        return results

    # --------------------------------------------------------------- balance
    def flush_all(self) -> None:
        """Flush every replica's buffer (bench warmup helper)."""
        for shard in self.shards:
            for replica in shard.replicas:
                if replica.state is ReplicaState.ONLINE:
                    replica.masm.flush_buffer()

    def replica_report(self) -> Dict[str, str]:
        """JSON-ready replica states, keyed ``shard.replica``."""
        return {
            replica.name: replica.state.value
            for shard in self.shards
            for replica in shard.replicas
        }
