"""The paper's contribution: MaSM update caching on SSDs.

Key entry points: :class:`MaSM` (engines via ``MaSM.masm_2m`` / ``masm_m`` or
``MaSMConfig(alpha=...)``), update records in :mod:`repro.core.update`,
migration in :mod:`repro.core.migration`, and the closed-form models of the
paper in :mod:`repro.core.theory`.
"""

from repro.core.governor import (
    GovernorConfig,
    LoadGovernor,
    OverloadPolicy,
    PacingController,
    TokenBucket,
)
from repro.core.masm import (
    MaSM,
    MaSMConfig,
    MaSMParameters,
    MaSMStats,
    derive_parameters,
)
from repro.core.replication import (
    Replica,
    ReplicaSet,
    ReplicaState,
    ReplicatedWarehouse,
)
from repro.core.secondary import SecondaryIndexManager
from repro.core.sharding import (
    ShardedWarehouse,
    build_shard_node,
    hash_partitioner,
    range_partitioner,
)
from repro.core.sortorders import MultiOrderTable, projection_schema
from repro.core.views import LazyMaterializedView, ViewCatalog
from repro.core.blockcache import DecodedBlockCache
from repro.core.membuffer import BufferFlushed, InMemoryUpdateBuffer
from repro.core.migration import MigrationStats, migrate_all, migrate_range
from repro.core.operators import (
    MemScan,
    MergeDataUpdates,
    MergeUpdates,
    RunScan,
    merge_update_streams,
)
from repro.core.runindex import (
    COARSE_GRANULARITY,
    FINE_GRANULARITY,
    RunIndex,
)
from repro.core.sortedrun import MaterializedSortedRun, write_run
from repro.core.update import (
    UpdateCodec,
    UpdateConflictError,
    UpdateRecord,
    UpdateType,
    apply_update,
    combine,
    combine_chain,
)

__all__ = [
    "COARSE_GRANULARITY",
    "FINE_GRANULARITY",
    "BufferFlushed",
    "DecodedBlockCache",
    "GovernorConfig",
    "InMemoryUpdateBuffer",
    "LoadGovernor",
    "OverloadPolicy",
    "PacingController",
    "TokenBucket",
    "LazyMaterializedView",
    "MaSM",
    "MultiOrderTable",
    "Replica",
    "ReplicaSet",
    "ReplicaState",
    "ReplicatedWarehouse",
    "SecondaryIndexManager",
    "ShardedWarehouse",
    "ViewCatalog",
    "build_shard_node",
    "hash_partitioner",
    "projection_schema",
    "range_partitioner",
    "MaSMConfig",
    "MaSMParameters",
    "MaSMStats",
    "MaterializedSortedRun",
    "MemScan",
    "MergeDataUpdates",
    "MergeUpdates",
    "MigrationStats",
    "RunIndex",
    "RunScan",
    "UpdateCodec",
    "UpdateConflictError",
    "UpdateRecord",
    "UpdateType",
    "apply_update",
    "combine",
    "combine_chain",
    "derive_parameters",
    "merge_update_streams",
    "migrate_all",
    "migrate_range",
    "write_run",
]
