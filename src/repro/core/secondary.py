"""Secondary-index scans over MaSM-cached data (Section 5, "Secondary Index").

An index scan on attribute ``Y`` is served in two steps: search the
secondary index for record keys in ``[y_begin, y_end]``, then fetch the
records.  With cached updates in play the paper prescribes a *secondary
update index* over every update record that contains a Y value — a
read-only index per materialized run plus an in-memory index over the
unsorted buffer — so the scan also finds inserted/modified records whose Y
landed in the range, and drops records whose Y moved out.

:class:`SecondaryIndexManager` implements exactly that:

* the base table maintains an ordinary secondary index (Y -> primary key);
* per run, a read-only (Y -> update) index is built on first use and cached;
* the in-memory buffer is indexed on demand (it is small by construction);
* ``index_scan`` merges both sides and re-checks Y on the merged records.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.masm import MaSM
from repro.core.sortedrun import MaterializedSortedRun
from repro.core.update import UpdateRecord, UpdateType
from repro.engine.btree import BPlusTree
from repro.errors import SchemaError


class SecondaryIndexManager:
    """Secondary-attribute scans over one MaSM-managed table."""

    def __init__(self, masm: MaSM, field: str) -> None:
        self.masm = masm
        self.field = field
        schema = masm.table.schema
        self.field_pos = schema.index_of(field)
        if field == schema.key_field:
            raise SchemaError("use range_scan for the clustering key")
        self._base_index: Optional[BPlusTree] = None
        # run name -> read-only secondary index over its update records
        self._run_indexes: dict[str, BPlusTree] = {}

    # ------------------------------------------------------------ base index
    def build_base_index(self) -> None:
        """(Re)build the table's secondary index with one sequential scan."""
        tree = BPlusTree()
        table = self.masm.table
        for record in table.range_scan(*table.full_key_range()):
            tree.insert(record[self.field_pos], table.schema.key(record))
        self._base_index = tree

    @property
    def base_index(self) -> BPlusTree:
        if self._base_index is None:
            self.build_base_index()
        assert self._base_index is not None
        return self._base_index

    # -------------------------------------------------- secondary update idx
    def _y_of_update(self, update: UpdateRecord):
        """The Y value an update carries, or None if it has none."""
        if update.type in (UpdateType.INSERT, UpdateType.REPLACE):
            return update.content[self.field_pos]
        if update.type == UpdateType.MODIFY and self.field in update.content:
            return update.content[self.field]
        return None

    def _index_for_run(self, run: MaterializedSortedRun) -> BPlusTree:
        """The read-only secondary update index of one materialized run.

        Built on first use (one run read) and cached; runs are immutable so
        the index never goes stale.
        """
        cached = self._run_indexes.get(run.name)
        if cached is not None:
            return cached
        tree = BPlusTree()
        for update in run.scan(0, 2**63 - 1):
            y = self._y_of_update(update)
            if y is not None:
                tree.insert(y, update.key)
        self._run_indexes[run.name] = tree
        return tree

    def _buffer_keys(self, y_begin, y_end, query_ts: int) -> set[int]:
        keys: set[int] = set()
        batch, _, _ = self.masm.buffer.snapshot_range(
            0, 2**63 - 1, query_ts, limit=10**9
        )
        for update in batch:
            y = self._y_of_update(update)
            if y is not None and y_begin <= y <= y_end:
                keys.add(update.key)
        return keys

    # ------------------------------------------------------------ index scan
    def index_scan(self, y_begin, y_end) -> Iterator[tuple]:
        """Fresh records whose Y lies in [y_begin, y_end], in key order.

        Functionally correct under cached updates (the paper's requirement):
        deletions and Y-moving modifications are filtered out, insertions
        and Y-moving modifications into the range are found via the
        secondary update indexes.
        """
        query_ts = self.masm.oracle.current + 1  # peek; scan assigns its own
        candidates: set[int] = set()
        for y, key in self.base_index.range(y_begin, y_end):
            candidates.add(key)
        with self.masm._lock:
            runs = list(self.masm.runs)
        for run in runs:
            for y, key in self._index_for_run(run).range(y_begin, y_end):
                candidates.add(key)
        candidates |= self._buffer_keys(y_begin, y_end, query_ts)
        # Fetch the merged, fresh records and re-check Y (a candidate's Y
        # may have moved out of the range, or the record may be deleted).
        for key in sorted(candidates):
            for record in self.masm.range_scan(key, key):
                if y_begin <= record[self.field_pos] <= y_end:
                    yield record

    def invalidate_after_migration(self) -> None:
        """Drop caches after runs were retired and Y values moved to disk.

        The base index is rebuilt lazily on next use (the paper notes the
        primary/secondary indexes are "examined and updated accordingly"
        during migration; a rebuild keeps this reproduction simple).
        """
        self._base_index = None
        self._run_indexes.clear()

    @property
    def memory_bytes(self) -> int:
        """Rough footprint of the secondary update indexes (Section 5)."""
        per_entry = 48
        total = sum(len(t) for t in self._run_indexes.values()) * per_entry
        if self._base_index is not None:
            total += len(self._base_index) * per_entry
        return total
