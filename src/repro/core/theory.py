"""Closed-form models from the paper, used for parameter selection and to
cross-check measurements in the benchmark suite.

* Theorems 3.2 / 3.3 — optimal MaSM-M / MaSM-αM parameters and the resulting
  SSD writes per update record;
* Section 2.3 — write amplification of an LSM-based update cache;
* Figure 1 — migration overhead as a function of memory footprint for
  in-memory differential updates vs MaSM;
* Section 3.7 — SSD lifetime under a sustained update rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import GB, KB

SECONDS_PER_YEAR = 365.0 * 24 * 3600


# --------------------------------------------------------------------------
# Theorems 3.2 / 3.3: memory footprint vs SSD writes
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class OptimalParameters:
    """Optimal (S, N, K2) for MaSM-αM per Theorem 3.3."""

    S: float  # update pages
    N: float  # 1-pass runs merged per 2-pass run
    K2: int  # 2-pass runs at capacity (worst case)


def alpha_lower_bound(M: int) -> float:
    """Smallest alpha that avoids 3-pass runs: 2 / cbrt(M) (Section 3.4)."""
    return 2.0 / (M ** (1.0 / 3.0))


def optimal_parameters(M: int, alpha: float = 1.0) -> OptimalParameters:
    """S_opt and N_opt from Theorem 3.3 (Theorem 3.2 when alpha == 1)."""
    if not alpha_lower_bound(M) <= alpha <= 2.0 + 1e-9:
        raise ValueError(f"alpha={alpha} outside [{alpha_lower_bound(M):.3f}, 2]")
    S = 0.5 * alpha * M
    K2 = max(1, math.floor(4.0 / (alpha * alpha)))
    N = ((2.0 / alpha - 0.5 * alpha) * M) / K2 + 1
    return OptimalParameters(S=S, N=N, K2=K2)


def masm_writes_per_update(alpha: float, M: int | None = None) -> float:
    """Average SSD writes per update record for MaSM-αM.

    Theorem 3.3's approximation ``2 - 0.25 * alpha^2``; with ``M`` given the
    exact Theorem 3.2 correction ``+ 2/M`` at alpha == 1 is included.
    """
    base = 2.0 - 0.25 * alpha * alpha
    if M is not None and abs(alpha - 1.0) < 1e-9:
        return 1.75 + 2.0 / M
    return base


def memory_pages_for_cache(cache_pages: int, alpha: float) -> int:
    """Memory (pages) MaSM-αM needs for ``cache_pages`` of SSD cache."""
    return max(1, round(alpha * math.isqrt(cache_pages)))


# --------------------------------------------------------------------------
# Section 2.3: LSM write amplification
# --------------------------------------------------------------------------
def lsm_writes_per_update(size_ratio_total: float, levels: int) -> float:
    """Writes per update entry for an LSM with ``levels`` SSD levels.

    With C0 in memory and C1..Ch on SSD sized in geometric progression
    r = (SSD/mem)^(1/h), levels 1..h-1 cost about (r+1) writes per entry
    and level h about (r+1)/2 (Section 2.3).
    """
    if levels < 1:
        raise ValueError("an SSD-resident LSM needs at least one level")
    if size_ratio_total <= 1:
        raise ValueError("SSD capacity must exceed memory for an LSM cache")
    r = size_ratio_total ** (1.0 / levels)
    return (levels - 1) * (r + 1) + (r + 1) / 2.0


def lsm_optimal_levels(size_ratio_total: float, max_levels: int = 16) -> int:
    """The level count minimizing :func:`lsm_writes_per_update`."""
    best_h, best = 1, float("inf")
    for h in range(1, max_levels + 1):
        writes = lsm_writes_per_update(size_ratio_total, h)
        if writes < best:
            best_h, best = h, writes
    return best_h


# --------------------------------------------------------------------------
# Figure 1: migration overhead vs memory footprint
# --------------------------------------------------------------------------
REFERENCE_MEMORY = 16 * GB  # Figure 1 normalizes to prior art at 16 GB


def inmemory_migration_overhead(
    memory_bytes: int, reference: int = REFERENCE_MEMORY
) -> float:
    """Prior state-of-the-art (in-memory cache): overhead ∝ 1 / buffer size.

    Each migration scans and rewrites the whole warehouse; halving migration
    frequency requires doubling the buffer.  Normalized so that the prior
    approach at ``reference`` bytes equals 1.0.
    """
    if memory_bytes <= 0:
        raise ValueError("memory must be positive")
    return reference / memory_bytes


def masm_migration_overhead(
    memory_bytes: int,
    alpha: float = 1.0,
    ssd_page: int = 64 * KB,
    reference: int = REFERENCE_MEMORY,
) -> float:
    """MaSM: memory F supports an SSD cache of F^2 / (alpha^2 P) bytes, so
    migration overhead falls with the *square* of the memory footprint
    (Section 3.7: doubling memory quarters migration frequency).

    Normalized to the same reference as :func:`inmemory_migration_overhead`;
    the paper's example — MaSM-M with 32 MB matching prior art with 16 GB —
    evaluates to 1.0 here.
    """
    if memory_bytes <= 0:
        raise ValueError("memory must be positive")
    cache_bytes = memory_bytes * memory_bytes / (alpha * alpha * ssd_page)
    return reference / cache_bytes


def equivalent_masm_memory(
    inmemory_bytes: int, alpha: float = 1.0, ssd_page: int = 64 * KB
) -> float:
    """MaSM memory footprint with the same migration overhead as an
    in-memory differential cache of ``inmemory_bytes`` (Section 3.7)."""
    return math.sqrt(inmemory_bytes * alpha * alpha * ssd_page)


# --------------------------------------------------------------------------
# Section 3.7: SSD lifetime
# --------------------------------------------------------------------------
def ssd_lifetime_years(
    capacity_bytes: int,
    endurance_cycles: int,
    write_rate_bytes_per_s: float,
    writes_per_update: float = 1.0,
) -> float:
    """Years an SSD lasts caching updates arriving at ``write_rate``.

    ``writes_per_update`` scales the device writes relative to the incoming
    update volume (1.0 for MaSM-2M, ~1.75 for MaSM-M, ~17 for an optimal
    LSM -- the Section 2.3/3.7 lifetime comparison).
    """
    if write_rate_bytes_per_s <= 0:
        return float("inf")
    total = capacity_bytes * endurance_cycles
    return total / (write_rate_bytes_per_s * writes_per_update) / SECONDS_PER_YEAR


def sustainable_update_rate(
    capacity_bytes: int,
    endurance_cycles: int,
    years: float,
    writes_per_update: float = 1.0,
) -> float:
    """Update bytes/second an SSD sustains for ``years`` (inverse of above)."""
    if years <= 0:
        raise ValueError("years must be positive")
    total = capacity_bytes * endurance_cycles
    return total / (years * SECONDS_PER_YEAR * writes_per_update)
