"""Read-only run indexes over materialized sorted runs (Section 3.1, 3.5).

A run index records the smallest key stored in every fixed-size block of a
sorted run, letting a range scan read only the blocks that can contain its
key range.  Because runs are immutable, the index is built once at run
creation and never maintained.

Granularity is the block size: the paper's *coarse* configuration indexes
one entry per 64 KB of cached updates, the *fine* one per 4 KB.  A 4-byte key
per 4 KB block is 1/1024 of the run size (Section 3.5's space analysis),
which :meth:`RunIndex.memory_bytes` mirrors.
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence

#: Bytes of index memory per entry: the paper keeps a 4-byte key prefix.
KEY_PREFIX_BYTES = 4

#: Paper granularities (Section 4.2).
COARSE_GRANULARITY = 64 * 1024
FINE_GRANULARITY = 4 * 1024


class RunIndex:
    """Block-granular sparse index: entry ``b`` is block ``b``'s first key."""

    def __init__(self, first_keys: Sequence[int], block_size: int) -> None:
        keys = list(first_keys)
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("run index keys must be non-decreasing")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self._keys = keys
        self.block_size = block_size

    @property
    def num_blocks(self) -> int:
        return len(self._keys)

    @property
    def memory_bytes(self) -> int:
        """In-memory footprint, one key prefix per block (Section 3.5)."""
        return KEY_PREFIX_BYTES * len(self._keys)

    def block_span(self, begin_key: int, end_key: int) -> Optional[tuple[int, int]]:
        """Inclusive block range that can hold keys in [begin, end].

        Returns None when no block can contain the range.
        """
        if end_key < begin_key or not self._keys:
            return None
        # First candidate: the block *before* the first whose first_key >=
        # begin_key, clamped to 0 for ranges before the run.  bisect_left,
        # not bisect_right: when begin_key equals some block's first key,
        # records with that same key may spill backwards into the preceding
        # block (a key run can straddle the boundary), so that block is a
        # candidate too.
        first = bisect.bisect_left(self._keys, begin_key) - 1
        if first < 0:
            first = 0
        # Last candidate: the last block whose first_key <= end_key.
        last = bisect.bisect_right(self._keys, end_key) - 1
        if last < first:
            return None  # the whole range falls before block 0's first key
        return first, last

    def byte_span(self, begin_key: int, end_key: int) -> Optional[tuple[int, int]]:
        """Like :meth:`block_span` but in byte offsets [start, end)."""
        span = self.block_span(begin_key, end_key)
        if span is None:
            return None
        first, last = span
        return first * self.block_size, (last + 1) * self.block_size

    def first_key_of_block(self, block: int) -> int:
        return self._keys[block]

    def keys_in_range(self, begin_key: int, end_key: int) -> list[int]:
        """Block first-keys falling inside [begin, end] (sorted).

        These are the candidate partition boundaries for the key-range
        partitioned merge: splitting at a block's first key means the block
        belongs wholly to one partition for the run that contributed it.
        """
        if end_key < begin_key or not self._keys:
            return []
        lo = bisect.bisect_left(self._keys, begin_key)
        hi = bisect.bisect_right(self._keys, end_key)
        return self._keys[lo:hi]
