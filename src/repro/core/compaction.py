"""Cost-based incremental compaction of the materialized run stack.

The structural merge policy (``MaSM._merge_earliest_runs``) picks victims by
position and runs each merge to completion inside a scan's preamble — under
load one big merge spikes p99.9 scan latency.  This module replaces *when*
and *what* to merge with a modeled decision, and *how* with bounded slices:

* **Scoring.**  :func:`score_candidates` ranks contiguous windows of 1-pass
  runs by benefit/cost: read amplification saved (``n - 1`` fewer sources
  per overlapping scan), weighted by observed scan traffic per run (from
  ``repro.obs`` counters), plus an unbounded aging term so a cold window can
  never be starved forever — divided by the modeled device time of the merge
  (sequential bandwidth plus per-command latency from the
  :class:`~repro.storage.device.DeviceProfile`).  The function is pure:
  same (manifest, traffic, profile, now, config) → same ranking, with a
  deterministic ``(-score, names)`` tie-break.

* **Incremental execution.**  The chosen merge runs as WAL-fenced key-range
  *slices*, the way :func:`~repro.core.migration.migrate_range` slices
  migration.  Each slice logs a ``MERGE_SLICE`` record *before* writing its
  product run (the ``RUN_MERGE`` commit-point protocol, per slice): after a
  crash, an intact product file means the slice committed and recovery masks
  the victims' range; a missing product means the victims stay
  authoritative.  Victim key ranges already sliced out are masked via
  ``MaterializedSortedRun.mark_merged`` so scans never see a record twice.

* **Publication barrier.**  A scan snapshots the run list at registration
  but reads victim masks lazily, so a committed slice is *published* (victim
  ranges masked + product appended to ``masm.runs``) only while no scan is
  in flight; until then it waits in a pending queue.  Victims are retired —
  through the ``barrier_ts`` graveyard — once their masks cover the whole
  key space and every slice is published.

* **Co-scheduling.**  The :class:`~repro.core.governor.LoadGovernor` decides
  when slices run: nothing at CRITICAL occupancy (migration owns the
  device), a slice between scans otherwise, metered by an optional token
  bucket; a :class:`~repro.core.governor.PacingController` adapts the slice
  size so one slice's device time tracks ``target_stall_seconds``.  When
  slicing falls behind a burst, an emergency *structural* fallback restores
  the paper's run-count bound, excluding locked plan victims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.core.governor import STATE_CRITICAL, PacingController, TokenBucket
from repro.core.operators import merge_update_streams
from repro.core.sortedrun import MaterializedSortedRun, write_run
from repro.errors import OutOfSpaceError, StorageError
from repro.obs import get_registry, trace
from repro.sim.hooks import interleave as sim_interleave
from repro.storage.device import DeviceProfile
from repro.storage.faults import crash_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.masm import MaSM

KEY_MAX = 2**63 - 1
FULL_KEY_RANGE = (0, KEY_MAX)


@dataclass
class CompactionConfig:
    """Tunables for one :class:`CompactionScheduler`."""

    #: Max victims per plan; None uses the engine's ``merge_fan_in``.
    fan_in: Optional[int] = None
    #: Floor on records per slice (keeps degenerate slices from thrashing).
    min_slice_records: int = 256
    #: Pacing target for one slice's device time, in simulated seconds.
    target_stall_seconds: float = 0.02
    #: Bounds on the fraction of the plan's records one slice may cover.
    min_slice_fraction: float = 1.0 / 256.0
    max_slice_fraction: float = 0.5
    #: Token-bucket rate for slices per simulated second; None = unmetered.
    slice_rate: Optional[float] = None
    #: Token-bucket burst, in slices.
    burst: float = 4.0
    #: Benefit added per timestamp unit a candidate's oldest run has waited.
    #: Unbounded growth is the anti-starvation guarantee: a cold window's
    #: score eventually overtakes any traffic-weighted one.
    aging_weight: float = 1e-3
    #: Structural fallback threshold: merge structurally (excluding locked
    #: plan victims) once the run count overshoots the plan trigger by this
    #: many runs.
    emergency_slack: int = 2
    #: Run-count trigger for starting a plan.  ``None`` uses the engine's
    #: derived ``query_pages`` budget; tests and the simulator pin a small
    #: explicit value so compaction fires on miniature workloads.
    trigger_runs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fan_in is not None and self.fan_in < 2:
            raise ValueError(f"fan_in must be >= 2, got {self.fan_in}")
        if self.min_slice_records < 1:
            raise ValueError(
                f"min_slice_records must be >= 1, got {self.min_slice_records}"
            )
        if self.target_stall_seconds <= 0:
            raise ValueError(
                f"target_stall_seconds must be > 0, got {self.target_stall_seconds}"
            )
        if not 0.0 < self.min_slice_fraction <= self.max_slice_fraction <= 1.0:
            raise ValueError(
                "slice fractions must satisfy 0 < min <= max <= 1, got "
                f"{self.min_slice_fraction}/{self.max_slice_fraction}"
            )
        if self.slice_rate is not None and self.slice_rate <= 0:
            raise ValueError(f"slice_rate must be > 0, got {self.slice_rate}")
        if self.aging_weight < 0:
            raise ValueError(f"aging_weight must be >= 0, got {self.aging_weight}")
        if self.emergency_slack < 0:
            raise ValueError(
                f"emergency_slack must be >= 0, got {self.emergency_slack}"
            )
        if self.trigger_runs is not None and self.trigger_runs < 1:
            raise ValueError(
                f"trigger_runs must be >= 1, got {self.trigger_runs}"
            )


@dataclass(frozen=True)
class RunStat:
    """The slice of one run's state the cost model is allowed to see."""

    name: str
    size_bytes: int
    blocks: int
    count: int
    min_key: int
    max_key: int
    min_ts: int
    passes: int


@dataclass(frozen=True)
class CandidateScore:
    """One scored victim window, ready for deterministic ranking."""

    names: tuple[str, ...]
    benefit: float
    cost_seconds: float
    score: float


def manifest_of(runs: Sequence[MaterializedSortedRun]) -> tuple[RunStat, ...]:
    """Project live runs onto the pure inputs of :func:`score_candidates`."""
    return tuple(
        RunStat(
            name=run.name,
            size_bytes=run.size_bytes,
            blocks=run.num_blocks,
            count=run.count,
            min_key=run.min_key,
            max_key=run.max_key,
            min_ts=run.min_ts,
            passes=run.passes,
        )
        for run in runs
    )


def estimate_merge_seconds(
    total_bytes: int, total_blocks: int, profile: DeviceProfile
) -> float:
    """Modeled device time for merging ``total_bytes`` across ``total_blocks``.

    A merge reads every victim byte and writes it back once, both with large
    sequential I/Os; per-command latencies amortize across the device's
    internal parallelism.  The model intentionally mirrors the analytic
    :class:`DeviceProfile` fields rather than measuring, so scoring stays a
    pure function.
    """
    read_bw = profile.seq_read_bw if profile.seq_read_bw > 0 else 1.0
    write_bw = profile.seq_write_bw if profile.seq_write_bw > 0 else read_bw
    seconds = total_bytes / read_bw + total_bytes / write_bw
    parallelism = max(1, profile.internal_parallelism)
    seconds += (
        total_blocks * (profile.read_latency + profile.write_latency) / parallelism
    )
    return seconds


def score_candidates(
    manifest: Sequence[RunStat],
    traffic: Mapping[str, float],
    profile: DeviceProfile,
    now_ts: int,
    config: CompactionConfig,
    fan_in: int,
) -> list[CandidateScore]:
    """Rank candidate victim windows, best first.

    Candidates are contiguous windows (manifest order == creation order) of
    1-pass runs, sizes 2..``fan_in``; when fewer than two 1-pass runs exist
    the first two manifest entries form the degenerate fallback (mirroring
    the structural policy).  Pure and hash-order independent: every input is
    an explicit argument, windows are enumerated in list order, and ties
    break on the lexicographically smallest name tuple.
    """
    one_pass = tuple(stat for stat in manifest if stat.passes == 1)
    windows: list[tuple[RunStat, ...]] = []
    for size in range(2, max(2, min(fan_in, len(one_pass))) + 1):
        for start in range(len(one_pass) - size + 1):
            windows.append(one_pass[start : start + size])
    if not windows and len(manifest) >= 2:
        windows.append(tuple(manifest[:2]))
    total_traffic = sum(traffic.get(stat.name, 0.0) for stat in manifest)
    scored: list[CandidateScore] = []
    for window in windows:
        hits = sum(traffic.get(stat.name, 0.0) for stat in window)
        # With no observed traffic at all, every window is equally hot.
        weight = hits / total_traffic if total_traffic > 0 else 1.0
        age = max(0, now_ts - min(stat.min_ts for stat in window))
        benefit = (len(window) - 1) * weight + config.aging_weight * age
        cost = estimate_merge_seconds(
            sum(stat.size_bytes for stat in window),
            sum(stat.blocks for stat in window),
            profile,
        )
        scored.append(
            CandidateScore(
                names=tuple(stat.name for stat in window),
                benefit=benefit,
                cost_seconds=cost,
                score=benefit / cost if cost > 0 else benefit,
            )
        )
    scored.sort(key=lambda c: (-c.score, c.names))
    return scored


@dataclass
class CompactionPlan:
    """One in-flight incremental merge: locked victims plus a sweep cursor."""

    victims: list[MaterializedSortedRun]
    passes: int
    cursor: int = 0
    #: Set when the final slice (open-ended to KEY_MAX) has been emitted.
    done: bool = False
    slices: int = 0
    total_count: int = 0


@dataclass
class PendingSlice:
    """A durably committed slice awaiting scan-safe publication."""

    product: MaterializedSortedRun
    lo: int
    hi: int
    victims: list[MaterializedSortedRun] = field(default_factory=list)


class CompactionScheduler:
    """Cost-scored, governor-paced incremental run merging for one engine."""

    def __init__(
        self, masm: "MaSM", config: Optional[CompactionConfig] = None
    ) -> None:
        self.masm = masm
        self.config = config or CompactionConfig()
        self.clock = masm.ssd.device.clock
        self.fan_in = self.config.fan_in or masm.params.merge_fan_in
        self.pacer = PacingController(
            self.config.target_stall_seconds,
            self.config.min_slice_fraction,
            self.config.max_slice_fraction,
        )
        self.bucket: Optional[TokenBucket] = (
            TokenBucket(self.config.slice_rate, self.config.burst, now=self.clock.now)
            if self.config.slice_rate is not None
            else None
        )
        self.plan: Optional[CompactionPlan] = None
        self.pending: list[PendingSlice] = []
        registry = get_registry()
        scope = f"compaction.{masm.name}"
        self.scope = scope
        self._traffic_scope = f"{masm.name}.compaction.traffic"
        self._plans = registry.counter(f"{scope}.plans_started")
        self._resumed = registry.counter(f"{scope}.plans_resumed")
        self._abandoned = registry.counter(f"{scope}.plans_abandoned")
        self._slices = registry.counter(f"{scope}.slices_emitted")
        self._applied = registry.counter(f"{scope}.slices_applied")
        self._retired = registry.counter(f"{scope}.victims_retired")
        self._emergency = registry.counter(f"{scope}.emergency_merges")
        self._aborted = registry.counter(f"{scope}.slices_aborted")
        self._slice_hist = registry.histogram(f"{scope}.slice_seconds")

    # ------------------------------------------------------------ observation
    @property
    def busy(self) -> bool:
        """True while a plan is open or committed slices await publication.

        Checkpoints must not be cut while this holds: the manifest format
        does not carry merge masks, and truncating a ``MERGE_SLICE`` record
        whose product is not yet in a manifest would orphan it.
        """
        return self.plan is not None or bool(self.pending)

    def observe_scan(
        self,
        runs: Sequence[MaterializedSortedRun],
        begin_key: int,
        end_key: int,
    ) -> None:
        """Count one scan against every run it overlaps (traffic weights)."""
        registry = get_registry()
        for run in runs:
            if run.min_key <= end_key and run.max_key >= begin_key:
                registry.counter(f"{self._traffic_scope}.{run.name}").add(1)

    def _traffic_snapshot(
        self, manifest: Sequence[RunStat]
    ) -> dict[str, float]:
        registry = get_registry()
        return {
            stat.name: registry.counter(
                f"{self._traffic_scope}.{stat.name}"
            ).value
            for stat in manifest
        }

    # ------------------------------------------------------------- scheduling
    def maybe_step(self) -> bool:
        """Governed entry point: publish what is safe, then run one slice.

        Called between scans (directly or via the governor).  Watermark
        bands and the token bucket gate the slice; device-full aborts are
        counted and retried on a later step, never raised into a scan.
        """
        with self.masm._lock:
            self.apply_pending()
            if not self._should_step():
                return False
            try:
                return self.step()
            except OutOfSpaceError:
                self._aborted.add(1)
                return False
            except StorageError:
                # A victim file vanished mid-slice: this scheduler belongs
                # to a torn-down engine (e.g. a pre-crash scan unwinding
                # after recovery replaced the volume contents).  Drop every
                # in-flight plan — committed slices are WAL-fenced, so the
                # live engine's recovery already owns the durable truth.
                self._aborted.add(1)
                if self.plan is not None:
                    for run in self.plan.victims:
                        run.compacting = False
                    self.plan = None
                self.pending.clear()
                return False

    def _should_step(self) -> bool:
        masm = self.masm
        if self.plan is None and not self._needs_plan():
            return False
        governor = masm.governor
        if governor is not None and governor.watermark_state() >= STATE_CRITICAL:
            # Migration owns the device: compacting now would steal the
            # bandwidth make_room needs to avoid a forced full migration.
            return False
        if self.bucket is not None and not self.bucket.take(self.clock.now):
            return False
        return True

    def _needs_plan(self) -> bool:
        masm = self.masm
        # A crash (or an abandoned plan) can leave partially merged victims:
        # their masks block checkpointing, so resuming them takes priority
        # over the run-count trigger.
        if any(r.merged_ranges and not r.compacting for r in masm.runs):
            return True
        return len(masm.runs) > self._trigger()

    def _trigger(self) -> int:
        if self.config.trigger_runs is not None:
            return self.config.trigger_runs
        return self.masm.params.query_pages

    def step(self) -> bool:
        """Run one merge slice (starting a plan if needed); True on work."""
        masm = self.masm
        with masm._lock:
            sim_interleave("compaction.step")
            self.apply_pending()
            if self.plan is None:
                self.maybe_start_plan()
            plan = self.plan
            if plan is None or plan.done:
                # done-but-unpublished: only the scan barrier remains.
                return False
            before = self._measure_start()
            with trace(
                f"{self.scope}.slice", cursor=plan.cursor, victims=len(plan.victims)
            ):
                emitted = self._emit_slice(plan)
            duration = self._measure_elapsed(before)
            self.pacer.observe(duration)
            self._slice_hist.observe(duration)
            self.apply_pending()
            return emitted

    def maybe_start_plan(self) -> None:
        """Lock a victim set: resume interrupted merges, else score fresh."""
        masm = self.masm
        if self.plan is not None or self.pending:
            return
        resumable = [
            r for r in masm.runs if r.merged_ranges and not r.quarantined
        ]
        if resumable:
            # Slices are contiguous from key 0, so each victim's mask is one
            # span starting at 0; resume above the lowest mask top (a lower
            # cursor only re-reads masked — hence empty — key range).
            if all(r.merged_ranges[0][0] == 0 for r in resumable):
                cursor = min(r.merged_ranges[0][1] for r in resumable) + 1
            else:  # pragma: no cover - defensive: foreign mask shape
                cursor = 0
            passes = (
                2
                if all(r.passes == 1 for r in resumable)
                else max(r.passes for r in resumable) + 1
            )
            for run in resumable:
                run.compacting = True
            self.plan = CompactionPlan(
                victims=resumable,
                passes=passes,
                cursor=cursor,
                total_count=sum(r.count for r in resumable),
            )
            self._plans.add(1)
            self._resumed.add(1)
            return
        if len(masm.runs) <= self._trigger():
            return
        eligible = [r for r in masm.runs if not r.quarantined]
        manifest = manifest_of(eligible)
        ranked = score_candidates(
            manifest,
            self._traffic_snapshot(manifest),
            masm.ssd.device.profile,
            masm.oracle.current,
            self.config,
            self.fan_in,
        )
        if not ranked:
            return
        by_name = {r.name: r for r in eligible}
        victims = [by_name[name] for name in ranked[0].names]
        passes = (
            2
            if all(v.passes == 1 for v in victims)
            else max(v.passes for v in victims) + 1
        )
        for victim in victims:
            victim.compacting = True
        self.plan = CompactionPlan(
            victims=victims,
            passes=passes,
            total_count=sum(v.count for v in victims),
        )
        self._plans.add(1)

    # --------------------------------------------------------- slice protocol
    def _emit_slice(self, plan: CompactionPlan) -> bool:
        masm = self.masm
        victims = plan.victims
        # Each slice materializes its own product run, so a plan over n
        # victims must emit at most n-1 slices or compaction would *grow*
        # the run count and never converge on the query budget.  The floor
        # below guarantees a strict net reduction of at least one run per
        # completed plan; the pacer only shrinks slices further when the
        # victim window is wide enough to afford it.
        floor = -(-plan.total_count // max(1, len(victims) - 1))
        target = max(
            self.config.min_slice_records,
            int(self.pacer.fraction * max(plan.total_count, 1)),
            floor,
        )
        stream = merge_update_streams(
            [
                iter(src)
                for src in masm.run_update_sources(
                    victims, plan.cursor, KEY_MAX, query_ts=None, use_cache=False
                )
            ]
        )
        records = list(islice(stream, target))
        leftover = None
        if records:
            # A key's whole version chain must land in one product: a split
            # chain would answer timestamps between the versions from two
            # runs whose masks disagree about who owns the key.
            last_key = records[-1].key
            for update in stream:
                if update.key != last_key:
                    leftover = update
                    break
                records.append(update)
        if not records:
            # Every remaining key under the cursor was already migrated in
            # place (masked).  Close the mask without a product: the range
            # holds nothing a product would need to own.
            for victim in victims:
                victim.mark_merged(plan.cursor, KEY_MAX)
            plan.done = True
            self._finish_if_complete()
            return False
        lo = plan.cursor
        hi = KEY_MAX if leftover is None else records[-1].key
        name = masm._next_run_name()
        covered = (
            min(v.covered_min_ts for v in victims),
            max(v.covered_max_ts for v in victims),
        )
        if masm.redo_log is not None:
            masm.redo_log.log_merge_slice(
                masm.oracle.current,
                name,
                [v.name for v in victims],
                (lo, hi),
                covered,
            )
        sim_interleave("compaction.slice_emitted")
        # The slice's commit window: MERGE_SLICE is durable but the product
        # is not — recovery must treat the victims as authoritative.
        crash_point("compaction.slice_emitted")
        product = write_run(
            masm.ssd,
            name,
            records,
            masm.codec,
            block_size=masm.config.block_size,
            passes=plan.passes,
        )
        product.covered_min_ts, product.covered_max_ts = covered
        sim_interleave("compaction.slice_committed")
        # Commit point passed: the product file is intact, so recovery masks
        # the victims' [lo, hi] and serves the product instead.
        crash_point("compaction.slice_committed")
        masm.stats.updates_written_to_ssd += product.count
        self.pending.append(
            PendingSlice(product=product, lo=lo, hi=hi, victims=list(victims))
        )
        plan.slices += 1
        self._slices.add(1)
        if leftover is None:
            plan.done = True
        else:
            plan.cursor = hi + 1
        return True

    def apply_pending(self) -> None:
        """Publish committed slices once no in-flight scan can be skewed.

        A scan's run-list snapshot predates the product, but it reads the
        victims' masks lazily — masking mid-scan would hide records the
        snapshot has no product for.  With no scans active, publication is
        atomic under the engine lock: masks plus product appear together.
        """
        masm = self.masm
        with masm._lock:
            if self.pending and not masm._active_scans:
                for pending in self.pending:
                    for victim in pending.victims:
                        victim.mark_merged(pending.lo, pending.hi)
                    masm.runs.append(pending.product)
                    masm.stats.runs_created += 1
                    self._applied.add(1)
                masm.runs_version += 1
                self.pending.clear()
            self._finish_if_complete()

    def _finish_if_complete(self) -> None:
        plan = self.plan
        if plan is None or not plan.done or self.pending:
            return
        masm = self.masm
        live = [v for v in plan.victims if v in masm.runs]
        complete = [v for v in live if v.fully_merged(*FULL_KEY_RANGE)]
        if complete:
            masm.retire_runs(complete, barrier_ts=masm.oracle.current + 1)
            masm.stats.runs_merged += len(complete)
            self._retired.add(len(complete))
        for victim in plan.victims:
            victim.compacting = False
        self.plan = None

    # ------------------------------------------------------------ maintenance
    def ensure_budget(self) -> None:
        """Scan-preamble hook: keep the run count inside the hard ceiling.

        Paced slices normally hold ``len(runs)`` near ``query_pages``; when
        a burst outruns them this emergency structural fallback restores the
        bound, excluding locked plan victims (recovery replays merges in WAL
        order, so a structural merge must never consume a run an open slice
        plan still owns).
        """
        masm = self.masm
        self.apply_pending()
        ceiling = self._trigger() + self.config.emergency_slack
        while len(masm.runs) > ceiling:
            merged = masm._merge_earliest_runs(
                self.fan_in, exclude_compacting=True
            )
            if merged is None:
                break
            self._emergency.add(1)

    def abandon_plan(self) -> bool:
        """Release plan victims (a full migration wants the whole cache).

        Returns True when no victims remain locked.  Partially merged
        victims keep their masks; the next plan resumes exactly where this
        one stopped.  Unpublishable pending slices (in-flight scans) keep
        their victims locked and return False.
        """
        with self.masm._lock:
            self.apply_pending()
            if self.pending:
                return False
            if self.plan is not None:
                for victim in self.plan.victims:
                    victim.compacting = False
                self.plan = None
                self._abandoned.add(1)
            return True

    def replace_run(
        self, old: MaterializedSortedRun, new: MaterializedSortedRun
    ) -> None:
        """Track an in-place run repair (identity swap) in plan state."""
        if self.plan is not None:
            self.plan.victims = [
                new if v is old else v for v in self.plan.victims
            ]
        for pending in self.pending:
            pending.victims = [new if v is old else v for v in pending.victims]
            if pending.product is old:  # pragma: no cover - products are fresh
                pending.product = new

    # ------------------------------------------------------------ measurement
    def _measure_start(self) -> tuple[float, float]:
        disk = self.masm.table.heap.file.device
        ssd = self.masm.ssd.device
        return disk.stats.busy_time, ssd.stats.busy_time

    def _measure_elapsed(self, before: tuple[float, float]) -> float:
        disk = self.masm.table.heap.file.device
        ssd = self.masm.ssd.device
        return max(
            disk.stats.busy_time - before[0], ssd.stats.busy_time - before[1]
        )

    # -------------------------------------------------------------- reporting
    def report(self) -> dict:
        """JSON-ready snapshot of the scheduler's counters and state."""
        return {
            "scope": self.scope,
            "plan_victims": (
                [v.name for v in self.plan.victims] if self.plan else []
            ),
            "plan_cursor": self.plan.cursor if self.plan else None,
            "pending_slices": len(self.pending),
            "plans_started": self._plans.value,
            "plans_resumed": self._resumed.value,
            "plans_abandoned": self._abandoned.value,
            "slices_emitted": self._slices.value,
            "slices_applied": self._applied.value,
            "victims_retired": self._retired.value,
            "emergency_merges": self._emergency.value,
            "slices_aborted": self._aborted.value,
            "slice_fraction": self.pacer.fraction,
        }
