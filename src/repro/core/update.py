"""Update records, combination rules, and their binary codec.

An incoming well-formed update (Section 2.1) is one of:

* ``INSERT``  — a new record, given its key;
* ``DELETE``  — remove the record with a key;
* ``MODIFY``  — set named fields of the record with a key;
* ``REPLACE`` — internal type produced when a deletion is merged with a later
  insertion of the same key (Section 3.2's update record format).

Each carries ``(timestamp, key, type, content)``.  ``combine`` implements the
Merge_updates rule for two updates to the same key, and ``apply_update``
applies a (combined) update to a base record during the outer join with the
table scan.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Sequence

from repro.engine.record import Schema
from repro.errors import ReproError

try:  # numpy backs the SoA fast path; everything degrades without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via MASM_DISABLE_KERNELS
    _np = None


class UpdateConflictError(ReproError):
    """Two updates to the same key cannot be legally combined."""


class UpdateType(IntEnum):
    INSERT = 0
    DELETE = 1
    MODIFY = 2
    REPLACE = 3


@dataclass(frozen=True)
class UpdateRecord:
    """One cached update: ``(timestamp, key, type, content)``.

    ``content`` is the full record tuple for INSERT/REPLACE, a field->value
    dict for MODIFY, and None for DELETE.
    """

    timestamp: int
    key: int
    type: UpdateType
    content: object

    def sort_key(self) -> tuple[int, int]:
        """Updates order by (key, timestamp): the sorted-run order."""
        return (self.key, self.timestamp)


def combine(
    earlier: UpdateRecord, later: UpdateRecord, schema: Optional[Schema] = None
) -> UpdateRecord:
    """Merge two same-key updates into one with the later timestamp.

    Implements Section 3.2: modifications merge field-wise (later wins), a
    deletion followed by an insertion becomes REPLACE, and a later deletion
    supersedes everything before it.  Folding a MODIFY into an earlier
    INSERT/REPLACE rewrites the record tuple and therefore needs ``schema``.
    """
    if earlier.key != later.key:
        raise UpdateConflictError(
            f"cannot combine updates for different keys "
            f"({earlier.key} vs {later.key})"
        )
    if earlier.timestamp > later.timestamp:
        raise UpdateConflictError("updates must combine in timestamp order")
    lt = later.type
    et = earlier.type
    if lt == UpdateType.DELETE:
        # A later deletion wipes whatever came before.  If the earlier update
        # (re)inserted the record on top of a deletion, the net effect is
        # still a deletion of the original record.
        return UpdateRecord(later.timestamp, later.key, UpdateType.DELETE, None)
    if lt in (UpdateType.INSERT, UpdateType.REPLACE):
        if et in (UpdateType.INSERT, UpdateType.REPLACE) and lt == UpdateType.INSERT:
            raise UpdateConflictError(
                f"duplicate insert for key {later.key} "
                f"(ts {earlier.timestamp} then {later.timestamp})"
            )
        if et == UpdateType.DELETE:
            # delete + insert = replace (Section 3.2).
            return UpdateRecord(
                later.timestamp, later.key, UpdateType.REPLACE, later.content
            )
        # replace supersedes any earlier state.
        return UpdateRecord(
            later.timestamp, later.key, UpdateType.REPLACE, later.content
        )
    # Later update is a MODIFY.
    if et == UpdateType.DELETE:
        raise UpdateConflictError(
            f"modify after delete for key {later.key} without re-insert"
        )
    if et == UpdateType.MODIFY:
        merged = dict(earlier.content)
        merged.update(later.content)
        return UpdateRecord(later.timestamp, later.key, UpdateType.MODIFY, merged)
    # MODIFY on top of INSERT/REPLACE: fold the changes into the new record.
    if schema is None:
        raise UpdateConflictError(
            "combining a MODIFY into an INSERT/REPLACE requires the schema"
        )
    patched = schema.apply_modification(tuple(earlier.content), dict(later.content))
    return UpdateRecord(later.timestamp, later.key, earlier.type, patched)


def combine_chain(updates: Sequence[UpdateRecord], schema: Schema) -> UpdateRecord:
    """Combine a timestamp-ordered chain of same-key updates into one."""
    if not updates:
        raise UpdateConflictError("cannot combine an empty chain")
    result = updates[0]
    for update in updates[1:]:
        result = combine(result, update, schema)
    return result


def apply_update(
    record: Optional[tuple], update: UpdateRecord, schema: Schema
) -> Optional[tuple]:
    """Apply one (combined) update to a base record.

    ``record`` is None when the table has no record with the update's key.
    Returns the resulting record, or None if the record is (or stays) absent.
    """
    t = update.type
    if t in (UpdateType.INSERT, UpdateType.REPLACE):
        return tuple(update.content)
    if t == UpdateType.DELETE:
        return None
    # MODIFY
    if record is None:
        # The base record is gone (e.g. the modify was already migrated and a
        # later migrated delete removed it, or a bad update): nothing to do.
        return None
    return schema.apply_modification(record, dict(update.content))


#: Framing for a block of update records: leading record count.
BLOCK_HEADER = struct.Struct("<I")

#: Decode-time lookup avoiding an ``UpdateType(...)`` enum call per record.
_TYPE_BY_CODE = (
    UpdateType.INSERT,
    UpdateType.DELETE,
    UpdateType.MODIFY,
    UpdateType.REPLACE,
)


class UpdateCodec:
    """Fixed-schema binary codec for update records.

    Wire format::

        timestamp u64 | key u64 | type u8 | payload_len u32 | payload

    Payload: packed record for INSERT/REPLACE; empty for DELETE; for MODIFY a
    sequence of (field_index u16, packed field value) pairs.

    Besides the record-at-a-time :meth:`encode`/:meth:`decode` pair, the
    codec offers a batch API (:meth:`encode_block`, :meth:`decode_block`,
    :meth:`encode_many`) that processes a whole block in one pass with
    pre-bound struct unpackers — the read/write hot path.
    """

    _HEAD = struct.Struct("<QQBI")

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._field_structs = [
            None if f.is_string else struct.Struct("<" + f.struct_code())
            for f in schema.fields
        ]
        # Pre-bound whole-record unpacker for INSERT/REPLACE payloads: one
        # struct call per record instead of a Schema.unpack round trip, with
        # string columns fixed up afterwards by index.
        self._record_struct = struct.Struct(
            "<" + "".join(f.struct_code() for f in schema.fields)
        )
        self._string_idxs = tuple(
            i for i, f in enumerate(schema.fields) if f.is_string
        )

    @property
    def header_size(self) -> int:
        return self._HEAD.size

    def encoded_size(self, update: UpdateRecord) -> int:
        return self._HEAD.size + len(self._payload(update))

    def _pack_field(self, idx: int, value) -> bytes:
        field = self.schema.fields[idx]
        if field.is_string:
            raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
            raw = raw.ljust(field.width, b"\x00")
            if len(raw) != field.width:
                raise ReproError(
                    f"value for field {field.name!r} exceeds width {field.width}"
                )
            return raw
        return self._field_structs[idx].pack(value)

    def _unpack_field(self, idx: int, data: bytes, offset: int):
        field = self.schema.fields[idx]
        if field.is_string:
            raw = data[offset : offset + field.width]
            return raw.rstrip(b"\x00").decode("utf-8"), offset + field.width
        s = self._field_structs[idx]
        return s.unpack_from(data, offset)[0], offset + s.size

    def _payload(self, update: UpdateRecord) -> bytes:
        t = update.type
        if t in (UpdateType.INSERT, UpdateType.REPLACE):
            return self.schema.pack(update.content)
        if t == UpdateType.DELETE:
            return b""
        parts = []
        for name, value in sorted(update.content.items()):
            idx = self.schema.index_of(name)
            parts.append(struct.pack("<H", idx))
            parts.append(self._pack_field(idx, value))
        return b"".join(parts)

    def encode(self, update: UpdateRecord) -> bytes:
        payload = self._payload(update)
        return (
            self._HEAD.pack(
                update.timestamp, update.key, int(update.type), len(payload)
            )
            + payload
        )

    def decode(self, data: bytes, offset: int = 0) -> tuple[UpdateRecord, int]:
        """Decode one update at ``offset``; returns (update, next_offset)."""
        timestamp, key, type_raw, payload_len = self._HEAD.unpack_from(data, offset)
        body_start = offset + self._HEAD.size
        payload = data[body_start : body_start + payload_len]
        if len(payload) != payload_len:
            raise ReproError("truncated update record")
        utype = UpdateType(type_raw)
        if utype in (UpdateType.INSERT, UpdateType.REPLACE):
            content: object = self.schema.unpack(payload)
        elif utype == UpdateType.DELETE:
            content = None
        else:
            changes = {}
            pos = 0
            while pos < len(payload):
                (idx,) = struct.unpack_from("<H", payload, pos)
                value, pos = self._unpack_field(idx, payload, pos + 2)
                changes[self.schema.fields[idx].name] = value
            content = changes
        return UpdateRecord(timestamp, key, utype, content), body_start + payload_len

    # ------------------------------------------------------------- batch API
    def encode_many(self, updates: Sequence[UpdateRecord]) -> list[bytes]:
        """Encode a batch of updates in one pass (pre-bound packers)."""
        head_pack = self._HEAD.pack
        payload = self._payload
        out = []
        append = out.append
        for u in updates:
            body = payload(u)
            append(head_pack(u.timestamp, u.key, u.type, len(body)) + body)
        return out

    def frame_block(self, encoded_records: Sequence[bytes]) -> bytes:
        """Frame already-encoded records as one block (count header + body)."""
        return BLOCK_HEADER.pack(len(encoded_records)) + b"".join(encoded_records)

    def encode_block(self, updates: Sequence[UpdateRecord]) -> bytes:
        """Encode a whole block of updates: count header + packed records."""
        return self.frame_block(self.encode_many(updates))

    def decode_block(self, data: bytes, offset: int = 0) -> list[UpdateRecord]:
        """Decode one block (as written by :meth:`encode_block`) in one pass.

        Unlike :meth:`decode`, payloads are unpacked straight out of the
        block buffer — no per-record byte slicing — with every struct method
        bound once for the whole block.
        """
        (count,) = BLOCK_HEADER.unpack_from(data, offset)
        pos = offset + BLOCK_HEADER.size
        head_unpack = self._HEAD.unpack_from
        head_size = self._HEAD.size
        rec_unpack = self._record_struct.unpack_from
        rec_size = self._record_struct.size
        string_idxs = self._string_idxs
        types = _TYPE_BY_CODE
        record = UpdateRecord
        limit = len(data)
        records: list[UpdateRecord] = []
        append = records.append
        for _ in range(count):
            timestamp, key, type_raw, payload_len = head_unpack(data, pos)
            body = pos + head_size
            pos = body + payload_len
            if pos > limit:
                raise ReproError("truncated update record")
            if type_raw == 0 or type_raw == 3:  # INSERT / REPLACE
                if payload_len != rec_size:
                    raise ReproError(
                        f"record payload of {payload_len} bytes does not "
                        f"match schema size {rec_size}"
                    )
                values = list(rec_unpack(data, body))
                for i in string_idxs:
                    values[i] = values[i].rstrip(b"\x00").decode("utf-8")
                content: object = tuple(values)
            elif type_raw == 1:  # DELETE
                content = None
            else:  # MODIFY: rare on the hot path, reuse the field decoder.
                changes = {}
                field_pos = body
                while field_pos < body + payload_len:
                    (idx,) = struct.unpack_from("<H", data, field_pos)
                    value, field_pos = self._unpack_field(idx, data, field_pos + 2)
                    changes[self.schema.fields[idx].name] = value
                content = changes
            append(record(timestamp, key, types[type_raw], content))
        return records

    # --------------------------------------------------------------- SoA API
    def block_columns(self, data: bytes, offset: int, count: int):
        """Column arrays for one encoded block: (keys, timestamps, ops,
        header offsets).

        Keys and timestamps come back as signed-64 arrays (numpy when
        available, ``array('q')`` otherwise), op codes as an unsigned-byte
        array, and ``offsets`` holds each record's header position in
        ``data`` plus one end sentinel (``count + 1`` entries), so record
        ``i``'s payload spans ``[offsets[i] + header, offsets[i + 1])``.

        Blocks written by :meth:`encode_block` from INSERT/REPLACE-only
        streams have a uniform record stride (header + packed record), which
        a vectorized validation detects exactly: record 0's header position
        is true by framing, and each record whose payload length matches the
        schema's record size fixes the next record's position — so if every
        op code is INSERT/REPLACE and every payload length equals the record
        size under the assumed stride, the layout *is* uniform by induction.
        Mixed blocks fall back to a sequential header walk (no payload
        decode either way).
        """
        base = offset + BLOCK_HEADER.size
        head_size = self._HEAD.size
        rec_size = self._record_struct.size
        stride = head_size + rec_size
        if _np is not None and count:
            end = base + count * stride
            if end <= len(data):
                raw = _np.frombuffer(
                    data, dtype=_np.uint8, count=count * stride, offset=base
                ).reshape(count, stride)
                ops = raw[:, 16].copy()
                plens = raw[:, 17:21].copy().view("<u4").ravel()
                if ((ops == 0) | (ops == 3)).all() and (plens == rec_size).all():
                    timestamps = raw[:, 0:8].copy().view("<i8").ravel()
                    keys = raw[:, 8:16].copy().view("<i8").ravel()
                    offsets = base + stride * _np.arange(
                        count + 1, dtype=_np.int64
                    )
                    return keys, timestamps, ops, offsets
        keys = array("q")
        timestamps = array("q")
        ops = bytearray()
        offsets = array("q")
        head_unpack = self._HEAD.unpack_from
        pos = base
        for _ in range(count):
            ts, key, op, payload_len = head_unpack(data, pos)
            timestamps.append(ts)
            keys.append(key)
            ops.append(op)
            offsets.append(pos)
            pos += head_size + payload_len
        offsets.append(pos)
        if _np is not None:
            return (
                _np.frombuffer(keys, dtype=_np.int64),
                _np.frombuffer(timestamps, dtype=_np.int64),
                _np.frombuffer(bytes(ops), dtype=_np.uint8),
                _np.frombuffer(offsets, dtype=_np.int64),
            )
        return keys, timestamps, bytes(ops), offsets

    def decode_block_soa(self, data: bytes, offset: int = 0) -> "ColumnarBlock":
        """Decode one block into its structure-of-arrays form.

        The sibling of :meth:`decode_block`: instead of a list of
        :class:`UpdateRecord` objects it returns a :class:`ColumnarBlock`
        whose key/timestamp/op/offset columns are materialized immediately
        while the record objects stay lazy (built on the first
        :meth:`ColumnarBlock.records` call, at the scan/join boundary).
        """
        block = ColumnarBlock(data, self, offset)
        block.columns()
        return block


#: Estimated Python-heap bytes per materialized UpdateRecord beyond its
#: encoded payload (object header, per-instance dict, content tuple).  Used
#: by the decoded-block cache's byte accounting; an estimate, but a far
#: better one than the encoded block size used before.
RECORD_OBJECT_OVERHEAD = 176

#: Estimated bytes per entry of a materialized Python key list (list slot
#: plus a small-int-or-boxed-int object).
KEY_LIST_ENTRY_BYTES = 40


class ColumnarBlock:
    """Structure-of-arrays view of one encoded update block.

    Holds the verified raw block bytes plus lazily materialized derived
    forms, each built at most once:

    * :meth:`columns` — parallel key / timestamp / op-code / header-offset
      arrays (``int64``/``uint8``), the form the merge kernels consume;
    * :meth:`records` — the block's :class:`UpdateRecord` list (the legacy
      scan form), materialized only at the scan/join boundary;
    * :meth:`key_list` — a plain Python key list for ``bisect``-based
      block-local searches.

    Instances are what :class:`repro.core.blockcache.DecodedBlockCache`
    stores; :attr:`nbytes` reports the entry's current decoded footprint so
    the cache's byte accounting tracks lazy materialization as it happens.
    """

    __slots__ = (
        "data",
        "offset",
        "count",
        "codec",
        "_cols",
        "_records",
        "_recarr",
        "_keys",
    )

    def __init__(self, data: bytes, codec: UpdateCodec, offset: int = 0) -> None:
        (self.count,) = BLOCK_HEADER.unpack_from(data, offset)
        self.data = data
        self.offset = offset
        self.codec = codec
        self._cols = None
        self._records: Optional[list[UpdateRecord]] = None
        self._recarr = None
        self._keys: Optional[list[int]] = None

    def columns(self):
        """(keys, timestamps, ops, offsets) column arrays; built once."""
        if self._cols is None:
            self._cols = self.codec.block_columns(self.data, self.offset, self.count)
        return self._cols

    @property
    def keys(self):
        return self.columns()[0]

    @property
    def timestamps(self):
        return self.columns()[1]

    @property
    def ops(self):
        return self.columns()[2]

    @property
    def payload_offsets(self):
        return self.columns()[3]

    def records(self) -> list[UpdateRecord]:
        """The block's UpdateRecord list (lazy, memoized)."""
        if self._records is None:
            self._records = self.codec.decode_block(self.data, self.offset)
        return self._records

    def records_arr(self):
        """The record list as an object ndarray (lazy, memoized).

        The merge kernels gather surviving records with one fancy-index
        operation over these arrays (pointer copies) instead of a Python
        list comprehension per merge; slicing them is zero-copy.  Requires
        numpy (kernel-path callers are already gated on it).
        """
        if self._recarr is None:
            records = self.records()
            arr = _np.empty(len(records), dtype=object)
            arr[:] = records
            self._recarr = arr
        return self._recarr

    def key_list(self) -> list[int]:
        """Plain Python key list for bisect searches (lazy, memoized)."""
        if self._keys is None:
            if self._records is not None:
                self._keys = [u.key for u in self._records]
            elif self._cols is not None or _np is not None:
                col = self.columns()[0]
                self._keys = col.tolist() if hasattr(col, "tolist") else list(col)
            else:
                self._keys = [u.key for u in self.records()]
        return self._keys

    @property
    def encoded_size(self) -> int:
        """The on-SSD footprint this entry replaces (the old accounting)."""
        return len(self.data) - self.offset

    @property
    def nbytes(self) -> int:
        """Current decoded footprint: raw bytes + every materialized form."""
        total = len(self.data) - self.offset
        cols = self._cols
        if cols is not None:
            for col in cols:
                nb = getattr(col, "nbytes", None)
                if nb is None:
                    nb = len(col) * getattr(col, "itemsize", 1)
                total += nb
        if self._records is not None:
            total += self.count * RECORD_OBJECT_OVERHEAD + self.encoded_size
        if self._recarr is not None:
            total += self._recarr.nbytes
        if self._keys is not None:
            total += self.count * KEY_LIST_ENTRY_BYTES
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        forms = [
            name
            for name, present in (
                ("cols", self._cols is not None),
                ("records", self._records is not None),
                ("keys", self._keys is not None),
            )
            if present
        ]
        return (
            f"ColumnarBlock({self.count} records, {self.nbytes}B, "
            f"materialized: {'+'.join(forms) or 'none'})"
        )
