"""The MaSM engine: SSD-cached differential updates with materialized
sort-merge (Sections 3.2-3.4).

One :class:`MaSM` instance manages the update cache for one table.  It owns

* an in-memory update buffer of ``S`` pages (plus stolen query pages when no
  scan is active — the MaSM-M trick that grows 1-pass runs);
* materialized sorted runs on an SSD volume, each with a run index;
* the scan-side operator tree that replaces ``Table_range_scan``;
* in-place migration back to the main data.

The memory/SSD-writes trade-off is a single knob: ``alpha``.
``MaSM.masm_2m`` (alpha=2) writes every update once; ``MaSM.masm_m``
(alpha=1) halves memory at ~1.75 writes per update (Theorems 3.2/3.3).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.blockcache import DEFAULT_CACHE_BLOCKS, DecodedBlockCache
from repro.core.compaction import CompactionConfig, CompactionScheduler
from repro.core.governor import GovernorConfig, LoadGovernor, OverloadPolicy
from repro.core.membuffer import InMemoryUpdateBuffer
from repro.obs import get_registry, trace
from repro.core.operators import (
    MemScan,
    MergeDataUpdates,
    MergeUpdates,
    RunScan,
    merge_update_streams,
)
from repro.core.runindex import COARSE_GRANULARITY
from repro.core.sortedrun import MaterializedSortedRun, write_run
from repro.core.update import (
    UpdateCodec,
    UpdateConflictError,
    UpdateRecord,
    UpdateType,
    combine,
)
from repro.engine.table import Table
from repro.errors import OutOfSpaceError, StorageError, UpdateCacheFullError
from repro.sim.hooks import interleave as sim_interleave
from repro.storage.faults import crash_point
from repro.storage.file import StorageVolume
from repro.storage.iosched import CpuMeter
from repro.txn.timestamps import TimestampOracle
from repro.util.units import KB

DEFAULT_SSD_PAGE = 64 * KB


@dataclass
class MaSMConfig:
    """Tunables for one MaSM instance.

    ``alpha`` selects the point on the memory-vs-SSD-writes spectrum of
    Section 3.4 (valid range [2/cbrt(M), 2]).  ``block_size`` is the run
    index granularity: 64 KB reproduces the paper's coarse-grain index,
    4 KB the fine-grain one.
    """

    alpha: float = 1.0
    ssd_page_size: int = DEFAULT_SSD_PAGE
    block_size: int = COARSE_GRANULARITY
    cache_bytes: Optional[int] = None  # default: the whole SSD volume
    migration_threshold: float = 0.9
    auto_migrate: bool = True
    merge_duplicates_on_flush: bool = False
    #: Capacity (in blocks) of the shared decoded-block LRU that repeated
    #: and concurrent scans hit instead of re-reading/re-decoding the SSD.
    #: 0 disables the cache.
    decoded_cache_blocks: int = DEFAULT_CACHE_BLOCKS
    #: Optional byte ceiling for the decoded-block cache on top of the block
    #: count, enforced against byte-accurate per-entry accounting (lazy
    #: record materialization included).  None bounds by blocks only.
    decoded_cache_bytes: Optional[int] = None
    #: Scan with the columnar merge kernels (:mod:`repro.core.kernels`) when
    #: available.  False forces the record-at-a-time operator paths; the
    #: ``MASM_DISABLE_KERNELS`` environment variable does the same globally.
    use_kernels: bool = True
    #: Target run-index blocks per merge partition for the kernel path.
    #: None uses :data:`repro.core.kernels.DEFAULT_BLOCKS_PER_PARTITION`;
    #: small values force multi-partition merges on small runs (used by the
    #: simulation's ``kernels`` scenario to stress partition boundaries).
    kernel_blocks_per_partition: Optional[int] = None
    #: Overload governance (admission control + paced incremental migration,
    #: see :mod:`repro.core.governor`).  Setting either field attaches a
    #: :class:`LoadGovernor` to the engine; ``overload_policy`` alone uses
    #: default watermarks/pacing, ``governor`` carries the full tuning.
    #: ``None``/``None`` (the default) leaves the engine ungoverned: the
    #: legacy stop-the-world flush-time migration and
    #: ``UpdateCacheFullError`` behaviour are preserved exactly.
    overload_policy: Optional[OverloadPolicy] = None
    governor: Optional[GovernorConfig] = None
    #: Merge scheduling policy: ``"structural"`` (the default and the
    #: paper's oracle behaviour — victims picked by position, merges run to
    #: completion in the scan preamble) or ``"cost"`` (benefit/cost-scored
    #: victims executed as WAL-fenced incremental slices; see
    #: :mod:`repro.core.compaction`).
    compaction: str = "structural"
    #: Tuning for the cost-based scheduler; None uses defaults.
    compaction_config: Optional[CompactionConfig] = None

    def governor_config(self) -> Optional[GovernorConfig]:
        """The effective governor tuning, or None when ungoverned."""
        if self.governor is not None:
            if (
                self.overload_policy is not None
                and self.governor.overload_policy is not self.overload_policy
            ):
                import dataclasses

                return dataclasses.replace(
                    self.governor, overload_policy=self.overload_policy
                )
            return self.governor
        if self.overload_policy is not None:
            return GovernorConfig(overload_policy=self.overload_policy)
        return None


@dataclass
class MaSMParameters:
    """Derived sizing, following the notation of Table 1 in the paper."""

    ssd_pages: int  # ||SSD||
    M: int  # sqrt(||SSD||), in pages
    total_memory_pages: int  # alpha * M
    update_pages: int  # S
    query_pages: int  # total - S
    merge_fan_in: int  # N

    @property
    def memory_bytes_per_page(self) -> int:  # pragma: no cover - alias
        return DEFAULT_SSD_PAGE


def derive_parameters(
    cache_bytes: int, ssd_page_size: int, alpha: float
) -> MaSMParameters:
    """Compute M, S, N for a cache size and alpha (Theorems 3.2/3.3)."""
    ssd_pages = max(1, cache_bytes // ssd_page_size)
    M = max(2, math.isqrt(ssd_pages))
    alpha_min = 2.0 / (M ** (1.0 / 3.0))
    if not alpha_min * 0.99 <= alpha <= 2.0:
        raise ValueError(
            f"alpha={alpha} outside [{alpha_min:.3f}, 2] for M={M} "
            "(3-pass runs would be needed below the lower bound)"
        )
    total = max(2, round(alpha * M))
    S = max(1, round(0.5 * alpha * M))
    query_pages = max(1, total - S)
    denom = max(1, math.floor(4.0 / (alpha * alpha)))
    N = round(((2.0 / alpha - 0.5 * alpha) * M) / denom) + 1
    N = max(1, min(N, query_pages))
    return MaSMParameters(
        ssd_pages=ssd_pages,
        M=M,
        total_memory_pages=total,
        update_pages=S,
        query_pages=query_pages,
        merge_fan_in=N,
    )


#: The per-instance counters behind the design-goal analysis of Section 3.7.
MASM_STAT_FIELDS = (
    "updates_ingested",
    "updates_written_to_ssd",  # counts re-writes during run merges
    "runs_created",
    "runs_merged",
    "flushes",
    "migrations",
    "page_steals",
    "duplicates_merged",
    # Decoded-block cache counters (the read-path fast path): hits avoid
    # both the SSD read and the decode; blocks_decoded counts actual
    # block decodes performed by scans.
    "block_cache_hits",
    "block_cache_misses",
    "block_cache_evictions",
    "blocks_decoded",
    # Fault tolerance: runs quarantined after failed checksum verification,
    # scans that fell back to redo-log replay of a damaged run, and
    # completed scrub passes.
    "quarantined_runs",
    "log_fallback_scans",
    "scrubs",
    # Durability lifecycle: checkpoint fences cut, quarantined runs rebuilt
    # in place from the redo log, and runs rebuilt from a healthy peer's
    # copy (anti-entropy repair).
    "checkpoints",
    "runs_repaired",
    "peer_repairs",
)


class MaSMStats:
    """Counters behind the design-goal analysis of Section 3.7.

    The values live in the process-wide metrics registry under a scope
    unique to this instance (``masm-lineitem.flushes``, ...); this class is
    a thin attribute view over those counters, so ``stats.flushes += 1``
    and the exported registry series are one and the same number.
    """

    __slots__ = ("scope", "_counters")

    def __init__(self, scope: Optional[str] = None, registry=None) -> None:
        registry = registry if registry is not None else get_registry()
        scope = registry.unique_scope(scope or "masm")
        object.__setattr__(self, "scope", scope)
        object.__setattr__(
            self,
            "_counters",
            {name: registry.counter(f"{scope}.{name}") for name in MASM_STAT_FIELDS},
        )

    def __getattr__(self, name: str):
        try:
            return self._counters[name].value
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value) -> None:
        try:
            self._counters[name].set(value)
        except KeyError:
            raise AttributeError(f"MaSMStats has no counter {name!r}") from None

    def as_dict(self) -> dict[str, float]:
        return {name: self._counters[name].value for name in MASM_STAT_FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"MaSMStats({self.scope}: {inner})"

    @property
    def ssd_writes_per_update(self) -> float:
        """Average times each ingested update was written to the SSD."""
        if self.updates_ingested == 0:
            return 0.0
        return self.updates_written_to_ssd / self.updates_ingested

    @property
    def block_cache_hit_rate(self) -> float:
        """Fraction of block lookups served from the decoded-block cache."""
        total = self.block_cache_hits + self.block_cache_misses
        return self.block_cache_hits / total if total else 0.0


@dataclass
class ScrubReport:
    """Outcome of one :meth:`MaSM.scrub` pass."""

    runs_checked: int = 0
    blocks_checked: int = 0
    #: run name -> damaged block numbers found by verification.
    damaged_blocks: dict[str, list[int]] = field(default_factory=dict)
    #: runs left quarantined by this pass (newly or previously damaged).
    quarantined: list[str] = field(default_factory=list)
    #: runs rebuilt in place from the redo log, quarantine cleared.
    repaired: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.damaged_blocks

    def as_dict(self) -> dict:
        return {
            "runs_checked": self.runs_checked,
            "blocks_checked": self.blocks_checked,
            "damaged_blocks": dict(self.damaged_blocks),
            "quarantined": list(self.quarantined),
            "repaired": list(self.repaired),
            "clean": self.clean,
        }


@dataclass(frozen=True)
class RunSnapshot:
    """One run's verbatim content inside an :class:`EngineSnapshot`."""

    name: str
    payload: bytes
    crc: int
    count: int
    passes: int
    min_ts: int
    max_ts: int
    covered_min_ts: int
    covered_max_ts: int
    migrated_ranges: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class EngineSnapshot:
    """A consistent, CRC-verified export of one engine's durable state.

    Everything a brand-new (or wiped) replica needs to serve reads up to
    ``snapshot_ts``: the heap pages (main data), the materialized runs with
    their durability metadata, and the checkpoint manifest that seeds the
    installing replica's fresh WAL.  Updates with ``ts > snapshot_ts`` are
    deliberately absent — the installer catches them up from the primary's
    (now finite) WAL.
    """

    table: str
    snapshot_ts: int
    migrated_ts: int
    heap_pages: int
    heap_payload: bytes
    heap_crc: int
    runs: tuple[RunSnapshot, ...]
    checkpoint: "object"  # repro.txn.log.Checkpoint (lazy import cycle)

    @property
    def size_bytes(self) -> int:
        return len(self.heap_payload) + sum(len(r.payload) for r in self.runs)


class MaSM:
    """SSD-based differential update cache for one table."""

    def __init__(
        self,
        table: Table,
        ssd_volume: StorageVolume,
        config: Optional[MaSMConfig] = None,
        oracle: Optional[TimestampOracle] = None,
        cpu: Optional[CpuMeter] = None,
        name: Optional[str] = None,
    ) -> None:
        self.table = table
        self.ssd = ssd_volume
        self.config = config or MaSMConfig()
        self.oracle = oracle or TimestampOracle()
        self.cpu = cpu if cpu is not None else table.cpu
        self.name = name or f"masm-{table.name}"
        cache_bytes = self.config.cache_bytes or ssd_volume.device.capacity
        self.params = derive_parameters(
            cache_bytes, self.config.ssd_page_size, self.config.alpha
        )
        # The algorithms' accounting is in terms of ||SSD|| = M^2 pages
        # (Table 1); cap the usable cache there so the worst-case analysis
        # of Theorems 3.2/3.3 holds exactly.
        self.cache_bytes = min(
            cache_bytes, self.params.M * self.params.M * self.config.ssd_page_size
        )
        self.codec = UpdateCodec(table.schema)
        page = self.config.ssd_page_size
        self.buffer = InMemoryUpdateBuffer(
            table.schema, capacity_bytes=self.params.update_pages * page
        )
        self.runs: list[MaterializedSortedRun] = []  # creation order
        #: Bumped on every mutation of ``runs`` so hot paths (the governor's
        #: per-apply admission check) can cache the run-bytes total instead
        #: of re-summing under the lock on every update.
        self.runs_version = 0
        self._runs_by_flush_epoch: dict[int, MaterializedSortedRun] = {}
        self.stats = MaSMStats(scope=self.name)
        self.block_cache: Optional[DecodedBlockCache] = (
            DecodedBlockCache(
                self.config.decoded_cache_blocks,
                stats=self.stats,
                capacity_bytes=self.config.decoded_cache_bytes,
            )
            if self.config.decoded_cache_blocks > 0
            else None
        )
        self._run_seq = 0
        self._active_scans: dict[int, int] = {}  # scan id -> query timestamp
        self._scan_seq = 0
        self._lock = threading.RLock()
        self._migrate_hook = None  # installed by attach_migrator()
        self._graveyard: list[tuple[MaterializedSortedRun, int]] = []
        self.redo_log = None  # installed by attach_log()
        #: Commit timestamp of the newest ingested update (freshness marker
        #: for lazily maintained views, Section 5).
        self.last_update_ts = 0
        #: Every logged update with ``ts <= flushed_through`` is durable in a
        #: materialized run (advanced at flush time from the raw span).
        self.flushed_through = 0
        #: Every update with ``ts <= migrated_through`` was migrated in place
        #: (advanced only when a *full* migration retires all runs).
        self.migrated_through = 0
        #: Fence of the newest checkpoint cut by :meth:`checkpoint`.
        self.last_checkpoint_ts = 0
        #: Overload governance (None = ungoverned legacy behaviour).
        governor_config = self.config.governor_config()
        self.governor: Optional[LoadGovernor] = (
            LoadGovernor(self, governor_config) if governor_config is not None else None
        )
        if self.config.compaction not in ("structural", "cost"):
            raise ValueError(
                f"compaction must be 'structural' or 'cost', "
                f"got {self.config.compaction!r}"
            )
        #: Cost-based incremental merge scheduling (None = structural).
        self.compactor: Optional[CompactionScheduler] = (
            CompactionScheduler(self, self.config.compaction_config)
            if self.config.compaction == "cost"
            else None
        )

    def attach_log(self, redo_log) -> None:
        """Enable write-ahead logging of incoming updates (Section 3.6).

        Every ingested update is logged before it enters the in-memory
        buffer, so crash recovery (:mod:`repro.txn.recovery`) can rebuild
        the buffer; run flushes and migrations are logged too.
        """
        redo_log.register_table(self.table.name, self.codec)
        self.redo_log = redo_log

    # --------------------------------------------------------------- sizing
    @property
    def ssd_page_size(self) -> int:
        return self.config.ssd_page_size

    @property
    def cached_run_bytes(self) -> int:
        with self._lock:
            return sum(run.size_bytes for run in self.runs)

    @property
    def utilization(self) -> float:
        return self.cached_run_bytes / self.cache_bytes

    @property
    def memory_bytes(self) -> int:
        """Allocated memory: alpha*M pages plus the in-memory run indexes.

        Buffer capacity stolen beyond the S update pages comes out of the
        idle query pages, so it stays inside the alpha*M budget and is only
        *extra* allocation if a scan needs those pages back — which
        :meth:`range_scan` prevents by shrinking the buffer before pinning
        them.  Any stolen capacity above the total budget (a bug, guarded
        by tests) is surfaced here rather than hidden.
        """
        with self._lock:
            indexes = sum(run.index.memory_bytes for run in self.runs)
            budget = self.params.total_memory_pages * self.ssd_page_size
            overage = max(0, self.buffer.capacity_bytes - budget)
        return budget + overage + indexes

    @property
    def one_pass_runs(self) -> int:
        with self._lock:
            return sum(1 for r in self.runs if r.passes == 1)

    @property
    def multi_pass_runs(self) -> int:
        with self._lock:
            return sum(1 for r in self.runs if r.passes > 1)

    @property
    def active_scan_count(self) -> int:
        with self._lock:
            return len(self._active_scans)

    def oldest_active_query_ts(self) -> Optional[int]:
        with self._lock:
            return min(self._active_scans.values(), default=None)

    # --------------------------------------------------------------- updates
    def insert(self, record: tuple) -> int:
        """Cache an insertion of ``record``; returns its commit timestamp."""
        ts = self.oracle.next()
        self.apply(
            UpdateRecord(ts, self.table.schema.key(record), UpdateType.INSERT, record)
        )
        return ts

    def delete(self, key: int) -> int:
        """Cache a deletion of ``key``; returns its commit timestamp."""
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.DELETE, None))
        return ts

    def modify(self, key: int, changes: dict) -> int:
        """Cache field modifications for ``key``; returns the timestamp."""
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.MODIFY, dict(changes)))
        return ts

    def apply(self, update: UpdateRecord) -> None:
        """Ingest a well-formed update that already has a timestamp.

        With a governor attached, admission control runs first: the update
        may be delayed (bounded, charged to the SimClock), shed (typed
        :class:`~repro.errors.BackpressureError`, before anything is
        logged), or admitted after the caller pays a migration slice —
        depending on the configured :class:`OverloadPolicy`.  An update
        that passes admission is never dropped.
        """
        sim_interleave("masm.apply")
        if self.governor is not None:
            self.governor.admit(update)
        with self._lock:
            if self.redo_log is not None:
                self.redo_log.log_update(self.table.name, update)
            if self.buffer.would_overflow(update):
                self._handle_full_buffer()
            self.buffer.append(update)
            self.stats.updates_ingested += 1
            self.last_update_ts = max(self.last_update_ts, update.timestamp)

    def _handle_full_buffer(self) -> None:
        page = self.ssd_page_size
        total = self.params.total_memory_pages * page
        # Steal an unused query page to grow the 1-pass run (Figure 8, lines
        # 2-3): only legal while no scan needs its query pages.
        if not self._active_scans and self.buffer.capacity_bytes + page <= total:
            self.buffer.capacity_bytes += page
            self.stats.page_steals += 1
            return
        self.flush_buffer()

    # --------------------------------------------------------------- flushes
    def flush_buffer(self) -> Optional[MaterializedSortedRun]:
        """Materialize the in-memory buffer as a 1-pass sorted run."""
        sim_interleave("masm.flush")
        with self._lock:
            if self.buffer.count == 0:
                return None
            with trace("masm.flush", count=self.buffer.count):
                # Encoded size of everything about to land in the cache;
                # captured before the drain resets the buffer's accounting.
                # (An upper bound when duplicate-merging shrinks the flush —
                # conservative for the governor's room-making.)
                buffered_bytes = self.buffer.used_bytes
                updates = self.buffer.drain_sorted()
                flush_epoch = self.buffer.flush_epoch
                # Raw (pre-duplicate-merge) timestamp span: the log-replay
                # fallback must cover every logged update this run absorbs.
                raw_min_ts = min(u.timestamp for u in updates)
                raw_max_ts = max(u.timestamp for u in updates)
                # Reset any stolen pages: the buffer returns to S pages.
                self.buffer.capacity_bytes = (
                    self.params.update_pages * self.ssd_page_size
                )
                if self.config.merge_duplicates_on_flush:
                    updates = self._merge_duplicates(updates)
                if self.governor is not None:
                    # Governed path: paced incremental migration frees the
                    # space this flush needs — bounded slices instead of the
                    # stop-the-world migrate-everything below.
                    self.governor.make_room(buffered_bytes)
                elif self.config.auto_migrate and self.runs:
                    # Migrate first if this flush would push the cache past
                    # the threshold ("updates reach a certain threshold of
                    # the SSD size").
                    projected = self.cached_run_bytes + sum(
                        self.codec.encoded_size(u) for u in updates
                    )
                    if projected >= self.config.migration_threshold * self.cache_bytes:
                        self.migrate()
                run = self._write_run(updates, passes=1)
                run.covered_min_ts = raw_min_ts
                run.covered_max_ts = raw_max_ts
                self.flushed_through = max(self.flushed_through, raw_max_ts)
                sim_interleave("masm.flush.run_written")
                # The window a crash test cares most about: the run is
                # durable on the SSD but its RUN_FLUSH record is not logged
                # yet — recovery must detect and discard the orphan run.
                crash_point("masm.flush.run_written")
                self._runs_by_flush_epoch[flush_epoch] = run
                self.stats.flushes += 1
                if self.redo_log is not None:
                    self.redo_log.log_run_flush(
                        self.table.name, run.name, run.max_ts
                    )
                return run

    def _merge_duplicates(self, updates: list[UpdateRecord]) -> list[UpdateRecord]:
        """Combine same-key duplicates when no concurrent scan forbids it.

        Section 3.5: updates at t1 < t2 may merge only if no concurrent scan
        has a timestamp t with t1 < t <= t2.  With the oldest active query
        timestamp as the cut, everything newer stays separate.
        """
        with self._lock:
            scan_timestamps = sorted(self._active_scans.values())

        def may_merge(t1: int, t2: int) -> bool:
            return not any(t1 < t <= t2 for t in scan_timestamps)

        merged: list[UpdateRecord] = []
        for update in updates:  # already (key, ts) sorted
            if (
                merged
                and merged[-1].key == update.key
                and may_merge(merged[-1].timestamp, update.timestamp)
            ):
                try:
                    merged[-1] = combine(merged[-1], update, self.table.schema)
                    self.stats.duplicates_merged += 1
                    continue
                except UpdateConflictError:
                    pass  # uncombinable chain: keep both records
            merged.append(update)
        return merged

    def _next_run_name(self) -> str:
        name = f"{self.name}-run-{self._run_seq:05d}"
        self._run_seq += 1
        return name

    def _write_run(
        self,
        updates: list[UpdateRecord],
        passes: int,
        size_hint: Optional[int] = None,
        replacing_bytes: int = 0,
        name: Optional[str] = None,
    ) -> MaterializedSortedRun:
        """Materialize ``updates`` as a run, enforcing the cache quota.

        ``replacing_bytes`` credits the size of runs this write supersedes
        (a 2-pass merge deletes its inputs right after), so merging near a
        full cache does not trip the quota.  ``name`` lets a caller that
        must *log* the run's name before materializing it (merges) allocate
        the name up front via :meth:`_next_run_name`.
        """
        if name is None:
            name = self._next_run_name()
        new_bytes = sum(self.codec.encoded_size(u) for u in updates)
        if self.cached_run_bytes - replacing_bytes + new_bytes > self.cache_bytes:
            raise UpdateCacheFullError(
                f"{self.name}: SSD update cache full "
                f"({self.cached_run_bytes}/{self.cache_bytes} bytes); migrate first"
            )
        try:
            run = write_run(
                self.ssd,
                name,
                updates,
                self.codec,
                block_size=self.config.block_size,
                passes=passes,
                size_hint=size_hint,
            )
        except OutOfSpaceError as exc:
            raise UpdateCacheFullError(str(exc)) from exc
        self.runs.append(run)
        self.runs_version += 1
        self.stats.runs_created += 1
        self.stats.updates_written_to_ssd += run.count
        return run

    # ----------------------------------------------------------- run merging
    def _ensure_run_budget(self) -> None:
        """Merge earliest 1-pass runs until K1 + K2 <= query pages (Fig. 8).

        With the cost-based scheduler attached, paced slices do the routine
        merging between scans; this preamble only publishes safe pending
        slices and enforces the emergency ceiling.
        """
        if self.compactor is not None:
            self.compactor.ensure_budget()
            return
        while len(self.runs) > self.params.query_pages:
            self._merge_earliest_runs(self.params.merge_fan_in)

    def _merge_earliest_runs(
        self, fan_in: int, exclude_compacting: bool = False
    ) -> Optional[MaterializedSortedRun]:
        with self._lock:
            eligible = (
                [r for r in self.runs if not r.compacting]
                if exclude_compacting
                else self.runs
            )
            if len(eligible) < 2:
                return None
            one_pass = [r for r in eligible if r.passes == 1]
            if len(one_pass) >= 2:
                victims = one_pass[: max(2, min(fan_in, len(one_pass)))]
                passes = 2
            else:
                # Degenerate fallback: merge the two earliest runs whatever
                # their pass count (would be a 3-pass run; the alpha lower
                # bound exists precisely to make this unnecessary).
                victims = eligible[:2]
                passes = max(r.passes for r in victims) + 1
            sim_interleave("masm.merge_runs")
            with trace("masm.merge_runs", fan_in=len(victims), passes=passes):
                # Fallback-aware sources: merging a quarantined victim
                # replays its content from the redo log, so the merge also
                # *heals* damaged runs — the merged output is freshly
                # written, sealed and trustworthy again.
                full = (0, 2**63 - 1)
                merged_stream = merge_update_streams(
                    [
                        iter(src)
                        for src in self.run_update_sources(
                            victims, *full, query_ts=None, use_cache=False
                        )
                    ]
                )
                size_hint = (
                    sum(r.file.size for r in victims) + self.config.block_size
                )
                # Log the merge *before* writing the product, under the
                # product's pre-allocated name: after a crash the product
                # file's intact existence tells recovery whether the merge
                # committed.  Any earlier crash leaves the victims — still
                # on the SSD — as the authoritative copies; any later crash
                # leaves victim files (e.g. parked in the graveyard for an
                # active scan) that recovery must discard, because serving
                # them alongside the product would apply every merged
                # update twice.
                name = self._next_run_name()
                if self.redo_log is not None:
                    self.redo_log.log_run_merge(
                        self.oracle.current,
                        name,
                        [v.name for v in victims],
                        covered_ts=(
                            min(r.covered_min_ts for r in victims),
                            max(r.covered_max_ts for r in victims),
                        ),
                    )
                run = self._write_run(
                    list(merged_stream),
                    passes=passes,
                    size_hint=size_hint,
                    replacing_bytes=sum(r.size_bytes for r in victims),
                    name=name,
                )
                run.covered_min_ts = min(r.covered_min_ts for r in victims)
                run.covered_max_ts = max(r.covered_max_ts for r in victims)
                # An active scan may have captured the victims in its run
                # list at registration (or reach one via the Mem_scan
                # flush-epoch handover): deleting their files now would rip
                # pages out from under it.  Park them in the graveyard until
                # every scan older than the merge has finished; without
                # scans, delete immediately as before.
                barrier_ts = self.oracle.current + 1
                oldest = self.oldest_active_query_ts()
                for victim in victims:
                    self.runs.remove(victim)
                    if oldest is not None and oldest < barrier_ts:
                        self._graveyard.append((victim, barrier_ts))
                    else:
                        self._delete_run(victim)
                self.runs_version += 1
                self.stats.runs_merged += len(victims)
                return run

    # ------------------------------------------------------------------ scans
    def range_scan(
        self, begin_key: int, end_key: int, query_ts: Optional[int] = None
    ) -> Iterator[tuple]:
        """The MaSM replacement for Table_range_scan (Figure 6/8).

        Returns fresh records: the table data merged with every cached
        update visible at the query's timestamp.  ``query_ts`` overrides the
        timestamp (snapshot-isolation reads at a transaction's start time);
        by default the query gets the next timestamp and sees all earlier
        updates.
        """
        with self._lock:
            # Flush a too-full buffer before the scan pins query pages.
            if self.buffer.pages_used(self.ssd_page_size) >= self.params.update_pages:
                self.flush_buffer()
            elif (
                self.buffer.capacity_bytes
                > self.params.update_pages * self.ssd_page_size
            ):
                # The buffer stole query pages while no scan ran; this scan
                # needs them back.  The buffered bytes still fit in S pages
                # (checked above), so shrink instead of flushing.
                self.buffer.shrink_capacity(
                    self.params.update_pages * self.ssd_page_size
                )
            self._ensure_run_budget()
            if query_ts is None:
                query_ts = self.oracle.next()
            scan_id = self._scan_seq
            self._scan_seq += 1
            self._active_scans[scan_id] = query_ts
            runs = list(self.runs)
            if self.compactor is not None:
                self.compactor.observe_scan(runs, begin_key, end_key)
            # The buffer generation this scan's snapshot belongs to: the
            # MemScan below is built lazily, so it must learn the epoch of
            # registration time, not of first-pull time.
            mem_epoch = self.buffer.flush_epoch
            sim_interleave("masm.scan.begin")

        def stream() -> Iterator[tuple]:
            try:
                span = trace("masm.scan", runs=len(runs), query_ts=query_ts)
                update_sources: list = self.run_update_sources(
                    runs, begin_key, end_key, query_ts
                )
                update_sources.append(
                    MemScan(
                        self.buffer,
                        begin_key,
                        end_key,
                        query_ts,
                        run_for_flush=self._run_for_flush,
                        cache=self.block_cache,
                        stats=self.stats,
                        flush_epoch=mem_epoch,
                    )
                )
                updates = MergeUpdates(
                    update_sources,
                    self.table.schema,
                    cpu=self.cpu,
                    use_kernels=self.config.use_kernels,
                    blocks_per_partition=self.config.kernel_blocks_per_partition,
                )
                data = self.table.range_scan_pairs(begin_key, end_key)
                data_chunks = None
                if self.config.use_kernels:
                    chunked = getattr(self.table, "range_scan_pair_chunks", None)
                    if chunked is not None:
                        data_chunks = chunked(begin_key, end_key)
                with span:
                    yield from MergeDataUpdates(
                        data,
                        updates,
                        self.table.schema,
                        cpu=self.cpu,
                        data_chunks=data_chunks,
                    )
            finally:
                sim_interleave("masm.scan.end")
                with self._lock:
                    self._active_scans.pop(scan_id, None)
                    self._gc_graveyard()
                if self.governor is not None:
                    self.governor.on_scan_end()
                elif self.compactor is not None:
                    # Ungoverned cost mode: the between-scans hook is the
                    # only pacing site (the governor co-schedules otherwise).
                    self.compactor.maybe_step()

        return stream()

    def _run_for_flush(self, flush_epoch: int) -> Optional[MaterializedSortedRun]:
        with self._lock:
            return self._runs_by_flush_epoch.get(flush_epoch)

    # ------------------------------------------------- degraded read path
    def run_update_sources(
        self,
        runs: list[MaterializedSortedRun],
        begin_key: int,
        end_key: int,
        query_ts: Optional[int],
        use_cache: bool = True,
    ) -> list[RunScan]:
        """Build the per-run scan operators for a query or migration.

        Each :class:`RunScan` gets a fallback that replays the run's
        timestamp range from the redo log, so a run whose SSD blocks fail
        checksum verification degrades to a correct (slower) stream instead
        of failing the query.  Without an attached redo log there is no
        fallback and verification errors propagate.
        """
        cache = self.block_cache if use_cache else None
        return [
            RunScan(
                run,
                begin_key,
                end_key,
                query_ts,
                cache=cache,
                stats=self.stats,
                fallback=self._fallback_for(run, begin_key, end_key, query_ts),
            )
            for run in runs
        ]

    def _fallback_for(self, run, begin_key, end_key, query_ts):
        if self.redo_log is None:
            return None
        # A truncated log no longer holds the run's covered range: replay
        # would silently return a partial stream.  Leave the scan without a
        # fallback so damage surfaces as a typed ChecksumError — the router
        # fails over to a healthy replica and schedules anti-entropy repair.
        if self.redo_log.truncated_through >= run.covered_min_ts:
            return None

        def fallback(after):
            return self._log_fallback(run, begin_key, end_key, query_ts, after)

        return fallback

    def _log_fallback(
        self,
        run: MaterializedSortedRun,
        begin_key: int,
        end_key: int,
        query_ts: Optional[int],
        after: Optional[tuple[int, int]],
    ) -> Iterator[UpdateRecord]:
        """Replace a damaged run's scan with redo-log replay of its range.

        Quarantines the run (first failure only), then yields exactly the
        updates the run's intact blocks would have yielded: the table's
        logged updates inside the run's covered timestamp range, (key, ts)-
        sorted, with the query's key range, timestamp visibility, ``after``
        resume position and the run's migrated ranges applied.
        """
        if run.quarantine("block failed verification during scan"):
            self.stats.quarantined_runs += 1
            if self.block_cache is not None:
                self.block_cache.invalidate_run(run.name)
        self.stats.log_fallback_scans += 1
        with trace(
            "masm.log_fallback",
            run=run.name,
            min_ts=run.covered_min_ts,
            max_ts=run.covered_max_ts,
        ):
            replayed = self._replay_run_updates(run)
        migrated = list(run.migrated_ranges)
        migrated_starts = [lo for lo, _ in migrated] if migrated else None
        for update in replayed:
            if update.key < begin_key or update.key > end_key:
                continue
            if query_ts is not None and update.timestamp > query_ts:
                continue
            if after is not None and update.sort_key() <= after:
                continue
            if migrated_starts is not None:
                j = bisect_right(migrated_starts, update.key) - 1
                if j >= 0 and update.key <= migrated[j][1]:
                    continue
            yield update

    def _replay_run_updates(self, run: MaterializedSortedRun) -> list[UpdateRecord]:
        """The table's logged updates in ``run``'s covered timestamp range."""
        from repro.txn.log import LogRecordType

        updates = [
            rec.update
            for rec in self.redo_log.records()
            if rec.type == LogRecordType.UPDATE
            and rec.table == self.table.name
            and run.covered_min_ts <= rec.timestamp <= run.covered_max_ts
        ]
        updates.sort(key=UpdateRecord.sort_key)
        return updates

    # ------------------------------------------------------------- scrubbing
    def scrub(self, repair: bool = False) -> "ScrubReport":
        """Proactively checksum-verify every cached run (Section 3.6's
        durability, actively enforced).

        Damaged runs are quarantined so subsequent scans use the redo-log
        fallback immediately instead of discovering the damage mid-query.
        With ``repair=True``, a quarantined run the redo log still fully
        covers is rebuilt in place from log replay and its quarantine
        cleared — damage the log can heal is not permanent.  Returns a
        report suitable for JSON export.
        """
        with self._lock:
            runs = list(self.runs)
        report = ScrubReport()
        with trace("masm.scrub", runs=len(runs)):
            for run in runs:
                damaged = run.verify_blocks()
                report.runs_checked += 1
                report.blocks_checked += run.num_blocks
                if damaged:
                    report.damaged_blocks[run.name] = damaged
                    if run.quarantine(
                        f"scrub found {len(damaged)} damaged block(s)"
                    ):
                        self.stats.quarantined_runs += 1
                        if self.block_cache is not None:
                            self.block_cache.invalidate_run(run.name)
            if repair:
                with self._lock:
                    quarantined = [r for r in self.runs if r.quarantined]
                for run in quarantined:
                    if self._rebuild_run_from_log(run) is not None:
                        report.repaired.append(run.name)
            with self._lock:
                report.quarantined = [
                    r.name for r in self.runs if r.quarantined
                ]
        self.stats.scrubs += 1
        registry = get_registry()
        registry.counter("masm.scrub.blocks_checked").add(report.blocks_checked)
        registry.counter("masm.scrub.damaged_blocks").add(
            sum(len(blocks) for blocks in report.damaged_blocks.values())
        )
        return report

    def _log_covers(self, run: MaterializedSortedRun) -> bool:
        """Can the redo log still replay the run's covered timestamp range?"""
        return (
            self.redo_log is not None
            and self.redo_log.truncated_through < run.covered_min_ts
        )

    def _rebuild_run_from_log(
        self, run: MaterializedSortedRun
    ) -> Optional[MaterializedSortedRun]:
        """Rebuild a quarantined run in place from redo-log replay.

        Returns the fresh (un-quarantined) run, or None when the log no
        longer covers the run's span — then only peer repair can help.
        """
        if not self._log_covers(run):
            return None
        updates = self._replay_run_updates(run)
        if not updates:
            return None
        return self._swap_rebuilt_run(run, updates, source="log")

    def _swap_rebuilt_run(
        self,
        run: MaterializedSortedRun,
        updates: list[UpdateRecord],
        source: str,
    ) -> MaterializedSortedRun:
        """Replace ``run``'s damaged SSD file with a fresh materialization
        of ``updates``, preserving its identity (name, position, covered
        span, migrated ranges, flush-epoch mapping)."""
        with self._lock:
            with trace("masm.repair_run", run=run.name, source=source):
                if run.name in self.ssd:
                    self.ssd.delete(run.name)
                if self.block_cache is not None:
                    self.block_cache.invalidate_run(run.name)
                rebuilt = write_run(
                    self.ssd,
                    run.name,
                    updates,
                    self.codec,
                    block_size=self.config.block_size,
                    passes=run.passes,
                )
                rebuilt.covered_min_ts = run.covered_min_ts
                rebuilt.covered_max_ts = run.covered_max_ts
                rebuilt.migrated_ranges = list(run.migrated_ranges)
                rebuilt.merged_ranges = list(run.merged_ranges)
                rebuilt.compacting = run.compacting
                if self.compactor is not None:
                    self.compactor.replace_run(run, rebuilt)
                for i, existing in enumerate(self.runs):
                    if existing is run:
                        self.runs[i] = rebuilt
                        break
                self._runs_by_flush_epoch = {
                    epoch: (rebuilt if kept is run else kept)
                    for epoch, kept in self._runs_by_flush_epoch.items()
                }
                self.runs_version += 1
                self.stats.runs_repaired += 1
                if source == "peer":
                    self.stats.peer_repairs += 1
                get_registry().counter("masm.runs.repaired").add(1)
                return rebuilt

    def repair_run_from_peer(self, run_name: str, donor: "MaSM") -> bool:
        """Anti-entropy repair: rebuild a quarantined run from a healthy
        peer's content.

        Identity is by *covered timestamp span*, not run name: replicas of
        one shard ingest the same update stream but flush and merge
        independently, so their run layouts may differ while their logical
        content is identical.  The donor hands over every durable update in
        the damaged run's span (checksum-verified on read, so corruption
        cannot spread).  Returns True when the run was rebuilt.
        """
        with self._lock:
            run = next((r for r in self.runs if r.name == run_name), None)
        if run is None or not run.quarantined:
            return False
        updates = donor.updates_in_ts_span(
            run.covered_min_ts, run.covered_max_ts
        )
        if not updates:
            return False
        self._swap_rebuilt_run(run, updates, source="peer")
        return True

    def updates_in_ts_span(self, min_ts: int, max_ts: int) -> list[UpdateRecord]:
        """Every durable update with timestamp in ``[min_ts, max_ts]``.

        The donor side of peer repair when run names do not line up: the
        union of run contents (unfiltered by migrated ranges) and the
        in-memory buffer, deduplicated by (timestamp, key) and (key, ts)-
        sorted.  Raises on quarantined runs in range — a donor must be
        healthy.
        """
        seen: set[tuple[int, int]] = set()
        collected: list[UpdateRecord] = []
        with self._lock:
            runs = list(self.runs)
            buffered = list(self.buffer._entries)
        for run in runs:
            if run.covered_max_ts < min_ts or run.covered_min_ts > max_ts:
                continue
            if run.quarantined:
                raise StorageError(
                    f"{self.name}: donor run {run.name!r} is quarantined"
                )
            for update in run.raw_records(min_ts, max_ts):
                tag = (update.timestamp, update.key)
                if tag not in seen:
                    seen.add(tag)
                    collected.append(update)
        for update in buffered:
            if min_ts <= update.timestamp <= max_ts:
                tag = (update.timestamp, update.key)
                if tag not in seen:
                    seen.add(tag)
                    collected.append(update)
        collected.sort(key=UpdateRecord.sort_key)
        return collected

    # ----------------------------------------------------------- checkpoints
    def _checkpoint_fence(self) -> int:
        """The newest timestamp provably durable outside the WAL.

        Everything at or below ``max(flushed_through, migrated_through)``
        lives in a materialized run or was migrated in place; an
        out-of-order straggler still in the buffer caps the fence below its
        timestamp, because the buffer is volatile.
        """
        fence = max(self.flushed_through, self.migrated_through)
        buffer_min = self.buffer.min_timestamp()
        if buffer_min is not None:
            fence = min(fence, buffer_min - 1)
        return max(0, fence)

    def _manifest(self, fence: int):
        from repro.txn.log import Checkpoint, RunManifestEntry

        return Checkpoint(
            table=self.table.name,
            checkpoint_ts=fence,
            migrated_ts=min(self.migrated_through, fence),
            runs=tuple(
                RunManifestEntry(
                    name=run.name,
                    covered_min_ts=run.covered_min_ts,
                    covered_max_ts=run.covered_max_ts,
                    migrated_ranges=tuple(run.migrated_ranges),
                )
                for run in self.runs
            ),
        )

    def checkpoint(self):
        """Cut a :class:`~repro.txn.log.Checkpoint` fence, or None.

        Returns None when no fence can safely be cut: no log attached,
        nothing durable yet, a quarantined run (its log-fallback needs the
        prefix), graveyarded merge victims (truncating their RUN_MERGE
        record while the victim files survive would double-apply every
        merged update on the next recovery), or an in-flight incremental
        compaction (the manifest cannot carry merge masks, and truncating a
        MERGE_SLICE record whose product is not in a manifest would orphan
        it — slices are short, so the window closes quickly).
        """
        with self._lock:
            if self.redo_log is None:
                return None
            if self._graveyard:
                return None
            if any(run.quarantined for run in self.runs):
                return None
            if self.compactor is not None and self.compactor.busy:
                return None
            if any(run.merged_ranges for run in self.runs):
                return None
            fence = self._checkpoint_fence()
            if fence <= 0:
                return None
            return self._manifest(fence)

    def checkpoint_and_truncate(self):
        """Cut a checkpoint and reclaim the WAL prefix it fences off.

        Returns ``(checkpoint, truncation_report)`` or None when no safe
        fence exists.  The reclaimed region is zeroed lazily — callers pace
        :meth:`~repro.txn.log.RedoLog.scrub_dirty` in the background.
        """
        with self._lock:
            cp = self.checkpoint()
            if cp is None:
                return None
            with trace("masm.checkpoint", fence=cp.checkpoint_ts):
                report = self.redo_log.truncate_through(cp)
            self.last_checkpoint_ts = cp.checkpoint_ts
            self.stats.checkpoints += 1
        registry = get_registry()
        registry.gauge(f"{self.stats.scope}.wal_live_bytes").set(
            self.redo_log.live_bytes
        )
        return cp, report

    # -------------------------------------------------------------- snapshots
    def export_snapshot(self) -> EngineSnapshot:
        """Export a consistent, CRC-stamped copy of the durable state.

        The fence is the same one :meth:`checkpoint` would cut: the heap
        plus the runs hold every update with ``ts <= fence``, so a replica
        that installs this snapshot only needs ``ts > fence`` from the
        primary's WAL to catch up.  Raises when a run is quarantined — an
        unhealthy replica must not donate.
        """
        from repro.storage.checksum import checksum as _crc

        with self._lock:
            quarantined = [r.name for r in self.runs if r.quarantined]
            if quarantined:
                raise StorageError(
                    f"{self.name}: cannot export snapshot with quarantined "
                    f"run(s) {quarantined}"
                )
            if (self.compactor is not None and self.compactor.busy) or any(
                r.merged_ranges for r in self.runs
            ):
                # RunSnapshot (like the manifest) does not carry merge
                # masks; exporting mid-compaction would double-apply the
                # sliced ranges on the installing replica.
                raise StorageError(
                    f"{self.name}: cannot export snapshot during an "
                    "in-flight incremental compaction; retry shortly"
                )
            fence = self._checkpoint_fence()
            heap = self.table.heap
            heap_bytes = heap.num_pages * heap.page_size
            heap_payload = (
                heap.file.read(0, heap_bytes) if heap_bytes else b""
            )
            run_snaps = []
            for run in self.runs:
                payload = run.file.read(0, run.num_blocks * run.block_size)
                run_snaps.append(
                    RunSnapshot(
                        name=run.name,
                        payload=payload,
                        crc=_crc(payload),
                        count=run.count,
                        passes=run.passes,
                        min_ts=run.min_ts,
                        max_ts=run.max_ts,
                        covered_min_ts=run.covered_min_ts,
                        covered_max_ts=run.covered_max_ts,
                        migrated_ranges=tuple(run.migrated_ranges),
                    )
                )
            snapshot = EngineSnapshot(
                table=self.table.name,
                snapshot_ts=fence,
                migrated_ts=min(self.migrated_through, fence),
                heap_pages=heap.num_pages,
                heap_payload=heap_payload,
                heap_crc=_crc(heap_payload),
                runs=tuple(run_snaps),
                checkpoint=self._manifest(fence),
            )
        get_registry().counter("masm.snapshots.exported").add(1)
        return snapshot

    @classmethod
    def install_snapshot(
        cls,
        snapshot: EngineSnapshot,
        table: Table,
        ssd_volume: StorageVolume,
        config: Optional[MaSMConfig] = None,
        oracle: Optional[TimestampOracle] = None,
        name: Optional[str] = None,
    ):
        """Install an exported snapshot into a brand-new engine.

        ``table`` wraps an empty heap file of sufficient capacity;
        ``ssd_volume`` must not hold conflicting run files.  Every payload
        is CRC-verified before anything is written, run files are
        re-verified block-by-block after landing, and the runs keep their
        *source sequence numbers* under this engine's name so replicas of
        one shard stay name-aligned (anti-entropy compares runs by name).

        Returns ``(masm, checkpoint)`` — the checkpoint carries the
        translated run names and seeds the installing replica's fresh WAL.
        """
        import re as _re

        from repro.core.sortedrun import load_run
        from repro.errors import ChecksumError
        from repro.storage.checksum import checksum as _crc
        from repro.txn.log import Checkpoint, RunManifestEntry

        if _crc(snapshot.heap_payload) != snapshot.heap_crc:
            raise ChecksumError("snapshot heap payload failed CRC verification")
        for run_snap in snapshot.runs:
            if _crc(run_snap.payload) != run_snap.crc:
                raise ChecksumError(
                    f"snapshot run {run_snap.name!r} failed CRC verification"
                )

        masm = cls(table, ssd_volume, config=config, oracle=oracle, name=name)
        heap = table.heap
        if snapshot.heap_payload:
            heap.file.write(0, snapshot.heap_payload)
        heap.num_pages = snapshot.heap_pages
        # A wiped device may hold stale bytes past the installed prefix;
        # zero the next page so the post-crash index rebuild (which scans
        # until the first unparseable page) stops where the data does.
        if heap.capacity_pages > snapshot.heap_pages:
            heap.file.zero_range(
                snapshot.heap_pages * heap.page_size, heap.page_size
            )
        from repro.txn.recovery import rebuild_table_index

        rebuild_table_index(table)

        seq_pattern = _re.compile(r"-run-(\d+)$")
        entries = []
        for run_snap in snapshot.runs:
            match = seq_pattern.search(run_snap.name)
            seq = int(match.group(1)) if match else masm._run_seq
            new_name = f"{masm.name}-run-{seq:05d}"
            masm._run_seq = max(masm._run_seq, seq + 1)
            file = ssd_volume.create(new_name, len(run_snap.payload))
            file.append(run_snap.payload)
            run = load_run(
                ssd_volume,
                new_name,
                masm.codec,
                block_size=masm.config.block_size,
                passes=run_snap.passes,
            )
            run.covered_min_ts = run_snap.covered_min_ts
            run.covered_max_ts = run_snap.covered_max_ts
            run.migrated_ranges = [tuple(r) for r in run_snap.migrated_ranges]
            masm.runs.append(run)
            entries.append(
                RunManifestEntry(
                    name=new_name,
                    covered_min_ts=run_snap.covered_min_ts,
                    covered_max_ts=run_snap.covered_max_ts,
                    migrated_ranges=tuple(run_snap.migrated_ranges),
                )
            )
        masm.runs_version += 1
        masm.flushed_through = snapshot.snapshot_ts
        masm.migrated_through = snapshot.migrated_ts
        masm.last_update_ts = snapshot.snapshot_ts
        masm.last_checkpoint_ts = snapshot.snapshot_ts
        masm.oracle.advance_past(snapshot.snapshot_ts)
        translated = Checkpoint(
            table=table.name,
            checkpoint_ts=snapshot.snapshot_ts,
            migrated_ts=snapshot.migrated_ts,
            runs=tuple(entries),
        )
        get_registry().counter("masm.snapshots.installed").add(1)
        return masm, translated

    def _delete_run(self, run: MaterializedSortedRun) -> None:
        """Delete a run's SSD file and drop its decoded blocks.

        The flush-epoch map entry dies here — with the file — and not at
        retirement: a graveyarded run must stay resolvable so an in-flight
        scan's Mem_scan handover (which may fire after the run was retired)
        still finds it.

        Idempotent against the file being already gone: after a crash the
        recovered engine owns the SSD and may have deleted this run as a
        completed-migration leftover, while this (pre-crash) instance still
        holds graveyard metadata that its surviving scans tear down late.
        """
        if run.name in self.ssd:
            self.ssd.delete(run.name)
        if self.block_cache is not None:
            self.block_cache.invalidate_run(run.name)
        self._runs_by_flush_epoch = {
            epoch: kept
            for epoch, kept in self._runs_by_flush_epoch.items()
            if kept is not run
        }

    # -------------------------------------------------------------- migration
    def attach_migrator(self, migrate_fn) -> None:
        """Install the migration strategy (see repro.core.migration)."""
        self._migrate_hook = migrate_fn

    def migrate(self) -> None:
        """Migrate all cached updates back into the main data in place."""
        from repro.core.migration import migrate_all, migrate_range

        sim_interleave("masm.migrate")
        with self._lock:
            if self.compactor is not None:
                # A full migration wants the whole cache: release the plan's
                # victim locks where safe (partially merged victims keep
                # their masks and stay cached — the next plan resumes them).
                self.compactor.abandon_plan()
            with trace("masm.migrate", runs=len(self.runs)):
                if self._migrate_hook is not None:
                    self._migrate_hook(self)
                elif self._active_scans:
                    # The full rewrite moves records across pages, which an
                    # in-flight lazy scan (reading pages as it goes) would
                    # see double or not at all.  Degrade to the page-RMW
                    # range path over the whole key space: pages stay put,
                    # the page-timestamp rule keeps concurrent scans exact,
                    # and runs too new for the oldest scan stay cached.
                    migrate_range(
                        self, 0, 2**63 - 1, redo_log=self.redo_log
                    )
                else:
                    migrate_all(self, redo_log=self.redo_log)
                self.stats.migrations += 1
            if self.governor is not None:
                self.governor.on_full_migration()

    def retire_runs(
        self, runs: list[MaterializedSortedRun], barrier_ts: Optional[int] = None
    ) -> None:
        """Remove migrated runs; delete their SSD space when safe.

        A run stays in a graveyard while any in-flight scan started before
        ``barrier_ts`` might still read it (the migration thread's "wait for
        ongoing queries earlier than t" of Section 3.2).
        """
        sim_interleave("masm.retire_runs")
        with self._lock:
            for run in runs:
                if run not in self.runs:
                    continue
                self.runs.remove(run)
                self.runs_version += 1
                oldest = self.oldest_active_query_ts()
                if barrier_ts is not None and oldest is not None and oldest < barrier_ts:
                    self._graveyard.append((run, barrier_ts))
                else:
                    self._delete_run(run)

    def _gc_graveyard(self) -> None:
        """Delete retired runs once no scan older than their barrier remains."""
        with self._lock:
            oldest = self.oldest_active_query_ts()
            survivors: list[tuple[MaterializedSortedRun, int]] = []
            for run, barrier_ts in self._graveyard:
                if oldest is not None and oldest < barrier_ts:
                    survivors.append((run, barrier_ts))
                else:
                    self._delete_run(run)
            self._graveyard = survivors

    # --------------------------------------------------------- constructors
    @classmethod
    def masm_2m(cls, table: Table, ssd_volume: StorageVolume, **kwargs) -> "MaSM":
        """MaSM-2M: minimal SSD writes (1 per update) with 2M memory."""
        config = kwargs.pop("config", None) or MaSMConfig(alpha=2.0)
        config.alpha = 2.0
        return cls(table, ssd_volume, config=config, **kwargs)

    @classmethod
    def masm_m(cls, table: Table, ssd_volume: StorageVolume, **kwargs) -> "MaSM":
        """MaSM-M: M memory at ~1.75 SSD writes per update."""
        config = kwargs.pop("config", None) or MaSMConfig(alpha=1.0)
        config.alpha = 1.0
        return cls(table, ssd_volume, config=config, **kwargs)


class MergeUpdatesPreservingDuplicates:
    """Merges runs keeping every update record (for 2-pass run creation).

    Unlike :class:`MergeUpdates`, same-key updates are *not* combined: the
    merged run must still serve queries with timestamps between the updates.
    The input runs are deleted right after the merge, so their blocks are
    scanned without going through the decoded-block cache.
    """

    def __init__(self, runs: list[MaterializedSortedRun]) -> None:
        self.runs = runs

    def __iter__(self) -> Iterator[UpdateRecord]:
        full_range = (0, 2**63 - 1)
        return merge_update_streams([run.scan(*full_range) for run in self.runs])
