"""Array-at-a-time merge kernels over structure-of-arrays update blocks.

The scan-side operators (:mod:`repro.core.operators`) spend most of their
time in per-record Python work: tuple keys, heap pushes, one iterator
round-trip per update.  These kernels replace that with column operations
over the :class:`~repro.core.update.ColumnarBlock` layout:

* a **galloping two-source merge**: each side's key column is binary-searched
  into the other (``np.searchsorted``), producing the merged permutation with
  no per-record comparisons — used whenever the two sides' key sets do not
  collide;
* a **k-way lexicographic merge**: concatenate key/timestamp columns in
  source order and ``np.lexsort`` — the stable sort reproduces exactly the
  source-order tie-breaking of the ``heapq``-based reference merge;
* a **vectorized same-key combine**: duplicate-key chains are located with
  one shifted comparison over the merged key column and only those chains go
  through :func:`~repro.core.update.combine_chain`; unique keys (the common
  case) never touch per-record combine logic;
* **key-range partition planning**: boundary keys picked from the runs' own
  sparse indexes split a scan into independently mergeable partitions —
  the unit of intra-shard parallelism and of bounded-memory batching.

Record objects are only gathered (from the blocks' lazily materialized
record lists) for positions that survive merging — the lazy materialization
boundary the columnar layout exists for.

Everything here requires numpy; :func:`enabled` gates the operators' use of
this module, and ``MASM_DISABLE_KERNELS=1`` forces the legacy
record-at-a-time paths (CI runs the equivalence suite both ways).
"""

from __future__ import annotations

import os
from itertools import chain
from typing import Optional, Sequence

from repro.core.update import UpdateRecord, UpdateType, combine_chain
from repro.engine.record import Schema
from repro.storage.iosched import (
    KERNEL_COMBINE_CPU_PER_UPDATE,
    KERNEL_MERGE_CPU_PER_UPDATE,
    CpuMeter,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


#: Identity-compared in the join's hot loops (enum ``in`` tests cost more).
_INSERT = UpdateType.INSERT
_REPLACE = UpdateType.REPLACE


def enabled() -> bool:
    """True when the kernel fast path may run (numpy present, not disabled).

    The environment variable is consulted on every call so a test or an
    operator can flip ``MASM_DISABLE_KERNELS`` without re-importing.
    """
    return _np is not None and not os.environ.get("MASM_DISABLE_KERNELS")


class SourceSlice:
    """One source's contribution to a key partition, in columnar form.

    ``keys``/``timestamps`` are int64 arrays sorted by (key, ts);
    ``records`` is the aligned :class:`UpdateRecord` object ndarray (pointer
    array — merging gathers records with one fancy-index operation).
    """

    __slots__ = ("keys", "timestamps", "records")

    def __init__(self, keys, timestamps, records) -> None:
        self.keys = keys
        self.timestamps = timestamps
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    @classmethod
    def from_records(cls, records: Sequence[UpdateRecord]) -> "SourceSlice":
        """Columnarize an already-sorted record list (buffer/fallback rows)."""
        n = len(records)
        keys = _np.fromiter((u.key for u in records), _np.int64, n)
        ts = _np.fromiter((u.timestamp for u in records), _np.int64, n)
        arr = _np.empty(n, dtype=object)
        arr[:] = records
        return cls(keys, ts, arr)


class UpdateBatch:
    """One partition's merged output: combined updates in strict key order.

    ``keys`` (int64, strictly increasing) mirrors ``records`` (an object
    ndarray, or a plain list when same-key chains were combined) so the
    batch join can binary-search updates against data keys without touching
    the record objects.
    """

    __slots__ = ("keys", "records")

    def __init__(self, keys, records) -> None:
        self.keys = keys
        self.records = records

    def __len__(self) -> int:
        return len(self.records)


# --------------------------------------------------------------------- merge
def _gallop_two_source_order(a: SourceSlice, b: SourceSlice):
    """Merged permutation of two slices via galloping binary search.

    Returns the ``order`` array (indices into the a++b concatenation), or
    None when a key occurs in both sides — cross-source ties order by
    timestamp, which positional search cannot see; the caller falls back to
    the lexicographic merge.  Within-source duplicate keys are fine: they
    stay in source (timestamp) order.
    """
    lo = _np.searchsorted(a.keys, b.keys, side="left")
    hi = _np.searchsorted(a.keys, b.keys, side="right")
    if not (lo == hi).all():
        return None  # key collision across sources: need timestamp order
    na = len(a.keys)
    nb = len(b.keys)
    order = _np.empty(na + nb, dtype=_np.int64)
    # b's element i lands after lo[i] a-elements and i earlier b-elements;
    # a's element j lands after j a-elements and (number of b-keys < it).
    b_pos = lo + _np.arange(nb, dtype=_np.int64)
    a_pos = _np.arange(na, dtype=_np.int64) + _np.searchsorted(
        b.keys, a.keys, side="left"
    )
    order[a_pos] = _np.arange(na, dtype=_np.int64)
    order[b_pos] = na + _np.arange(nb, dtype=_np.int64)
    return order


def merge_slices(
    slices: Sequence[SourceSlice],
    schema: Schema,
    cpu: Optional[CpuMeter] = None,
) -> UpdateBatch:
    """Merge (key, ts)-sorted slices and combine same-key chains.

    ``slices`` must be in source order: the stable lexicographic sort (and
    the galloping two-source path) then break (key, ts) ties exactly like
    the reference ``heapq`` merge breaks them, by source position.
    """
    live = [s for s in slices if len(s)]
    if not live:
        return UpdateBatch(_np.empty(0, dtype=_np.int64), [])
    if len(live) == 1:
        src = live[0]
        keys, recs = src.keys, src.records
    else:
        order = None
        if len(live) == 2:
            order = _gallop_two_source_order(live[0], live[1])
        keys = _np.concatenate([s.keys for s in live])
        if order is None:
            ts = _np.concatenate([s.timestamps for s in live])
            order = _np.lexsort((ts, keys))
        keys = keys[order]
        recs = _np.concatenate([s.records for s in live])[order]
    if cpu is not None:
        cpu.charge_batch(len(recs), KERNEL_MERGE_CPU_PER_UPDATE, kind="merge")
    return _combine_same_key_runs(keys, recs, schema, cpu)


def _combine_same_key_runs(
    keys, recs, schema: Schema, cpu: Optional[CpuMeter]
) -> UpdateBatch:
    """Collapse runs of equal keys via combine_chain; unique keys pass through.

    Duplicates are located with one shifted comparison; only the (typically
    rare) duplicated positions pay per-record combine cost.  The combined
    record takes the chain's position; absorbed records are dropped, keeping
    the slice-assembly cost proportional to the number of chains.
    """
    n = len(recs)
    if n < 2:
        return UpdateBatch(keys, recs)
    dup = keys[1:] == keys[:-1]
    if not dup.any():
        return UpdateBatch(keys, recs)
    recs = recs.tolist() if isinstance(recs, _np.ndarray) else recs
    dup_pos = _np.flatnonzero(dup)
    # Group consecutive duplicate positions into chains: positions p where
    # keys[p] == keys[p+1]; a gap > 1 between positions starts a new chain.
    splits = _np.flatnonzero(_np.diff(dup_pos) > 1) + 1
    pieces: list[list[UpdateRecord]] = []
    prev = 0
    combined_records = 0
    for group in _np.split(dup_pos, splits):
        start = int(group[0])
        end = int(group[-1]) + 1  # inclusive index of the chain's last record
        pieces.append(recs[prev:start])
        pieces.append([combine_chain(recs[start : end + 1], schema)])
        combined_records += end + 1 - start
        prev = end + 1
    pieces.append(recs[prev:])
    out = list(chain.from_iterable(pieces))
    keep = _np.empty(n, dtype=bool)
    keep[0] = True
    keep[1:] = ~dup  # one survivor per chain, at the chain's first position
    if cpu is not None:
        cpu.charge_batch(
            combined_records, KERNEL_COMBINE_CPU_PER_UPDATE, kind="combine"
        )
    return UpdateBatch(keys[keep], out)


# ----------------------------------------------------------------- partitions
#: Default partition grain: how many run blocks one partition may cover in
#: total across sources.  At the coarse 64 KB granularity this keeps a
#: partition's decoded working set in the low tens of MB while leaving the
#: per-partition kernel invocations large enough to amortize array setup.
DEFAULT_BLOCKS_PER_PARTITION = 32


def partition_points(
    indexes,
    begin_key: int,
    end_key: int,
    blocks_per_partition: int = DEFAULT_BLOCKS_PER_PARTITION,
) -> list[int]:
    """Interior boundary keys splitting [begin, end] into merge partitions.

    Boundaries are drawn from the runs' own sparse indexes (each candidate
    is some block's first key), so partitions tend to align with block
    edges and per-partition slicing re-reads few boundary blocks.  Returns
    a strictly increasing list of keys ``b`` with ``begin < b <= end``;
    partition ``i`` covers ``[b[i-1], b[i] - 1]`` (with ``begin`` and
    ``end`` closing the ends).  Empty when one partition suffices.
    """
    total_blocks = 0
    candidates: set[int] = set()
    for index in indexes:
        span = index.block_span(begin_key, end_key)
        if span is None:
            continue
        first, last = span
        total_blocks += last - first + 1
        for key in index.keys_in_range(begin_key, end_key):
            if begin_key < key <= end_key:
                candidates.add(key)
    if total_blocks <= blocks_per_partition or not candidates:
        return []
    wanted = min(
        -(-total_blocks // blocks_per_partition) - 1, len(candidates)
    )
    ordered = sorted(candidates)
    step = len(ordered) / (wanted + 1)
    picks = sorted({ordered[int((i + 1) * step)] for i in range(wanted)})
    return picks


def partition_ranges(
    bounds: Sequence[int], begin_key: int, end_key: Optional[int]
) -> list[tuple[int, Optional[int]]]:
    """Expand boundary keys into inclusive (lo, hi) partition ranges.

    ``end_key=None`` leaves the final partition unbounded (the caller
    drains non-columnar sources past the last run key through it).
    """
    ranges: list[tuple[int, Optional[int]]] = []
    lo = begin_key
    for bound in bounds:
        ranges.append((lo, bound - 1))
        lo = bound
    ranges.append((lo, end_key))
    return ranges


# ----------------------------------------------------------------- batch join
def join_partition(
    batch: UpdateBatch,
    data_records: list[tuple],
    data_keys,
    data_ts: list[int],
    schema: Schema,
    out: list,
) -> None:
    """Outer-join one update batch against one key-span of table records.

    ``data_keys`` is an int64 array aligned with ``data_records``/``data_ts``
    covering exactly the keys <= the batch's max key that the data stream has
    produced.  Appends result records to ``out`` in key order, applying the
    page-timestamp rule per matched record (an update at or before the page
    timestamp was already migrated in place and the base record wins).

    Untouched data spans are extended wholesale, and batches past the end of
    the data (or otherwise match-free) turn into one list comprehension over
    the surviving insertions — the per-record ``schema.key`` and
    ``apply_update`` calls of the record-at-a-time join are what this kernel
    deletes.
    """
    from repro.core.update import apply_update

    if not len(data_records):
        # No base records at these keys: only (re)insertions produce output.
        out.extend(
            tuple(u.content)
            for u in batch.records
            if u.type is _INSERT or u.type is _REPLACE
        )
        return
    positions = _np.searchsorted(data_keys, batch.keys, side="left")
    ndata = len(data_records)
    clipped = positions if positions[-1] < ndata else _np.minimum(positions, ndata - 1)
    if not (data_keys[clipped] == batch.keys).any():
        # Match-free batch: data and insertions interleave by position.
        pos_list = positions.tolist()
        prev = 0
        for update, pos in zip(batch.records, pos_list):
            if pos > prev:
                out.extend(data_records[prev:pos])
                prev = pos
            if update.type is _INSERT or update.type is _REPLACE:
                out.append(tuple(update.content))
        if prev < ndata:
            out.extend(data_records[prev:])
        return
    prev = 0
    for update, pos in zip(batch.records, positions.tolist()):
        if pos > prev:
            out.extend(data_records[prev:pos])
            prev = pos
        if pos < ndata and data_records[pos][schema.key_pos] == update.key:
            if update.timestamp > data_ts[pos]:
                produced = apply_update(data_records[pos], update, schema)
                if produced is not None:
                    out.append(produced)
            else:
                out.append(data_records[pos])  # already applied in place
            prev = pos + 1
        else:
            t = update.type
            if t is _INSERT or t is _REPLACE:
                out.append(tuple(update.content))
    if prev < ndata:
        out.extend(data_records[prev:])


def as_int64_array(values: Sequence[int]):
    """An int64 array over ``values`` (list fast path for the batch join)."""
    return _np.asarray(values, dtype=_np.int64)
