"""Experiment harness: result tables that mirror the paper's figures.

Every figure driver in :mod:`repro.bench.figures` returns a
:class:`FigureResult` — rows keyed like the paper's x-axis (range sizes,
query ids, memory sizes), one column per scheme/series, plus free-form notes
recording scaling substitutions.  ``format()`` renders the same rows the
paper reports; ``series()`` feeds assertions in the benchmark suite.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import BenchmarkError


@dataclass
class FigureResult:
    """One reproduced table/figure."""

    figure: str  # e.g. "Figure 9"
    title: str
    row_label: str  # name of the x axis, e.g. "range size"
    columns: list[str] = field(default_factory=list)
    rows: list[tuple[str, dict[str, float]]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Observability report captured while the driver ran (metrics registry
    #: dump + trace spans); populated by the instrumented driver wrappers in
    #: :mod:`repro.bench.figures` and written out by :meth:`write_metrics`.
    metrics: Optional[dict] = None

    # ------------------------------------------------------------- building
    def add_row(self, label: str, **values: float) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise BenchmarkError(
                f"{self.figure}: columns {sorted(unknown)} not declared "
                f"(have {self.columns})"
            )
        self.rows.append((str(label), dict(values)))

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -------------------------------------------------------------- queries
    def series(self, column: str) -> list[float]:
        """All values of one column, in row order (missing cells skipped)."""
        if column not in self.columns:
            raise BenchmarkError(f"{self.figure}: no column {column!r}")
        return [values[column] for _, values in self.rows if column in values]

    def cell(self, row_label: str, column: str) -> float:
        for label, values in self.rows:
            if label == str(row_label):
                return values[column]
        raise BenchmarkError(f"{self.figure}: no row {row_label!r}")

    def row_labels(self) -> list[str]:
        return [label for label, _ in self.rows]

    # ------------------------------------------------------------ rendering
    def format(self, precision: int = 2) -> str:
        """Render an aligned text table (what the bench harness prints)."""
        header = [self.row_label, *self.columns]
        body: list[list[str]] = []
        for label, values in self.rows:
            row = [label]
            for column in self.columns:
                value = values.get(column)
                row.append("-" if value is None else f"{value:.{precision}f}")
            body.append(row)
        widths = [
            max(len(str(cells[i])) for cells in [header, *body])
            for i in range(len(header))
        ]
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow([self.row_label, *self.columns])
        for label, values in self.rows:
            writer.writerow(
                [label, *(values.get(c, "") for c in self.columns)]
            )
        return out.getvalue()

    def to_dict(self) -> dict:
        """A JSON-ready representation (for machine-tracked trajectories)."""
        return {
            "figure": self.figure,
            "title": self.title,
            "row_label": self.row_label,
            "columns": list(self.columns),
            "rows": [
                {"label": label, "values": dict(values)}
                for label, values in self.rows
            ],
            "notes": list(self.notes),
        }

    def to_json(self, **extra) -> str:
        """Serialize :meth:`to_dict` (plus ``extra`` top-level keys)."""
        payload = self.to_dict()
        payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def write_metrics(self, path) -> Optional[pathlib.Path]:
        """Write the attached observability report as JSON next to the
        figure's own output; no-op (returns None) when nothing is attached."""
        if self.metrics is None:
            return None
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.metrics, indent=2, sort_keys=True) + "\n"
        )
        return path

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


def normalize(values: Sequence[float], baseline: float) -> list[float]:
    """Divide values by a baseline (the paper's 'normalized to scans
    without updates' convention)."""
    if baseline <= 0:
        raise BenchmarkError(f"baseline must be positive, got {baseline}")
    return [v / baseline for v in values]


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise BenchmarkError("geometric mean of no values")
    product = 1.0
    for v in values:
        if v <= 0:
            raise BenchmarkError("geometric mean needs positive values")
        product *= v
    return product ** (1.0 / len(values))
