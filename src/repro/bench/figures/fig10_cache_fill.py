"""Figure 10: MaSM range scans varying how full the update cache is.

25% / 50% / 75% / 99% full, range sizes from one page to the whole table,
migration disabled (threshold effectively 100%).  Following the paper, the
fine-grain index serves ranges up to 10 MB-equivalent and the coarse-grain
index the larger ones.  Expected: all values near 1.0, with at most a few
percent overhead at the smallest range.
"""

from __future__ import annotations

import random

from repro.bench.figures.common import (
    COARSE_BLOCK,
    FINE_BLOCK,
    build_rig,
    fill_cache,
    make_masm,
    random_range,
    range_size_sweep,
)
from repro.bench.harness import FigureResult

FILLS = [0.25, 0.50, 0.75, 0.99]

#: Ranges at or below this fraction of the table use the fine-grain index
#: (the paper switches at 10 MB out of 100 GB; we keep a friendlier cut
#: because the scaled sweep has fewer points).
FINE_INDEX_CUTOFF_FRACTION = 0.01


def run(scale: float = 1.0, repeats: int = 3, seed: int = 11) -> FigureResult:
    result = FigureResult(
        figure="Figure 10",
        title="MaSM range scans varying updates cached in SSD (normalized "
        "to scans without updates; migration disabled)",
        row_label="range size",
        columns=[f"{int(fill * 100)}% full" for fill in FILLS],
    )
    rng = random.Random(seed)

    rigs = {}
    for fill in FILLS:
        fine_rig = build_rig(scale=scale, seed=seed)
        fine = make_masm(fine_rig, block_size=FINE_BLOCK)
        fill_cache(fine, fine_rig, fill)
        coarse_rig = build_rig(scale=scale, seed=seed)
        coarse = make_masm(coarse_rig, block_size=COARSE_BLOCK)
        fill_cache(coarse, coarse_rig, fill)
        # Warm-up scans: run-budget merging happens once at scan setup and
        # must not land inside a measured window (steady state).
        for engine in (fine, coarse):
            for _ in engine.range_scan(0, 4):
                pass
        rigs[fill] = ((fine_rig, fine), (coarse_rig, coarse))

    reference_rig = build_rig(scale=scale, seed=seed)
    cutoff = reference_rig.table.data_bytes * FINE_INDEX_CUTOFF_FRACTION

    for label, size in range_size_sweep(reference_rig):
        ranges = [random_range(reference_rig, size, rng) for _ in range(repeats)]
        baseline = sum(
            reference_rig.measure(
                lambda b=b, e=e: reference_rig.drain(
                    reference_rig.table.range_scan(b, e)
                )
            ).elapsed
            for b, e in ranges
        ) / len(ranges)
        row = {}
        for fill in FILLS:
            (fine_rig, fine), (coarse_rig, coarse) = rigs[fill]
            rig, engine = (fine_rig, fine) if size <= cutoff else (coarse_rig, coarse)
            elapsed = sum(
                rig.measure(
                    lambda b=b, e=e: rig.drain(engine.range_scan(b, e))
                ).elapsed
                for b, e in ranges
            ) / len(ranges)
            row[f"{int(fill * 100)}% full"] = elapsed / baseline
        result.add_row(label, **row)
    result.note(
        "fine-grain run index below "
        f"{int(cutoff)} bytes, coarse-grain above (the paper's 10MB cut at "
        "100GB scale)"
    )
    return result
