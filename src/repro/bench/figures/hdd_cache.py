"""Section 4.2, "HDD as Update Cache": why the cache must be an SSD.

MaSM with the update cache on a second magnetic disk (identical to the main
disk) instead of an SSD.  The disk cache's poor random-read behaviour makes
small range scans pay seconds of seeking for the per-run block reads — the
paper measures 28.8x at 1 MB ranges and 4.7x at 10 MB.
"""

from __future__ import annotations

import random

from repro.bench.figures.common import (
    COARSE_BLOCK,
    SSD_PAGE,
    clamped_alpha,
    build_rig,
    fill_cache,
    make_masm,
    random_range,
)
from repro.bench.harness import FigureResult
from repro.core.masm import MaSM, MaSMConfig
from repro.storage.disk import SimulatedDisk
from repro.storage.file import StorageVolume
from repro.util.units import KB, MB, fmt_bytes

RANGE_SIZES = [64 * KB, 256 * KB, 1 * MB, 4 * MB]  # scaled analogues of 1MB/10MB


def run(scale: float = 1.0, seed: int = 17, repeats: int = 3) -> FigureResult:
    result = FigureResult(
        figure="Section 4.2 (HDD cache)",
        title="MaSM with a disk-based update cache vs an SSD cache "
        "(normalized to scans without updates)",
        row_label="range size",
        columns=["hdd cache", "ssd cache"],
    )
    rng = random.Random(seed)

    # SSD-cache rig (the normal configuration).
    ssd_rig = build_rig(scale=scale, seed=seed)
    ssd_masm = make_masm(ssd_rig)
    fill_cache(ssd_masm, ssd_rig, fraction=0.5, seed=seed)

    # HDD-cache rig: a second SimulatedDisk replaces the SSD volume.
    hdd_rig = build_rig(scale=scale, seed=seed)
    cache_disk = SimulatedDisk(capacity=max(8 * MB, 4 * hdd_rig.cache_bytes))
    hdd_rig.ssd = cache_disk  # measured as the "ssd" resource
    hdd_rig.ssd_volume = StorageVolume(cache_disk)
    config = MaSMConfig(
        alpha=clamped_alpha(hdd_rig.cache_bytes, 1.0),
        ssd_page_size=SSD_PAGE,
        block_size=COARSE_BLOCK,
        cache_bytes=hdd_rig.cache_bytes,
        auto_migrate=False,
    )
    hdd_masm = MaSM(
        hdd_rig.table,
        hdd_rig.ssd_volume,
        config=config,
        oracle=hdd_rig.oracle,
        cpu=hdd_rig.cpu,
    )
    fill_cache(hdd_masm, hdd_rig, fraction=0.5, seed=seed)

    for size in RANGE_SIZES:
        ranges = [random_range(ssd_rig, size, rng) for _ in range(repeats)]

        def avg(rig, fn) -> float:
            return sum(rig.measure(lambda b=b, e=e: rig.drain(fn(b, e))).elapsed
                       for b, e in ranges) / len(ranges)

        baseline = avg(ssd_rig, ssd_rig.table.range_scan)
        result.add_row(
            fmt_bytes(size),
            **{
                "hdd cache": avg(hdd_rig, hdd_masm.range_scan) / baseline,
                "ssd cache": avg(ssd_rig, ssd_masm.range_scan) / baseline,
            },
        )
    result.note(
        "paper: 28.8x at 1MB and 4.7x at 10MB ranges with a disk cache — "
        "random block reads per materialized run seek instead of flash-read; "
        "the factor compresses with the scaled-down run count (paper: 128 runs)"
    )
    return result
