"""Figure 14: replaying TPC-H queries with online updates — in-place vs MaSM.

Per query, three execution times: without updates; with concurrent in-place
updates; and with online updates cached by MaSM (flash 50% full at query
start, separate update caches per table, per Section 4.3).

Expected shape: in-place 1.6-2.2x; MaSM within ~1% of no-updates.
"""

from __future__ import annotations

from repro.bench.figures.common import COARSE_BLOCK, SSD_PAGE, clamped_alpha
from repro.bench.figures.fig03_tpch_inplace_rowstore import (
    UPDATE_RATE,
    build_instance,
    replay_with_inplace_updates,
)
from repro.bench.harness import FigureResult
from repro.core.masm import MaSM, MaSMConfig
from repro.storage.file import StorageVolume
from repro.storage.iosched import CpuMeter, OverlapWindow
from repro.storage.ssd import SimulatedSSD
from repro.util.units import MB
from repro.workloads.tpch import QUERY_IDS, replay_query, tpch_update_stream


def run(scale: float = 0.3, seed: int = 4, cache_fill: float = 0.5) -> FigureResult:
    result = FigureResult(
        figure="Figure 14",
        title="TPC-H replay with online updates (normalized to the query "
        "without updates)",
        row_label="query",
        columns=["no updates", "in-place updates", "MaSM updates"],
    )

    # --- in-place leg (its own instance; it mutates the tables) ------------
    inplace_instance = build_instance(scale, seed)
    inplace_disk = inplace_instance.tables["orders"].heap.file.device
    inplace_stream = tpch_update_stream(inplace_instance, seed=seed + 1)

    # --- MaSM leg -----------------------------------------------------------
    masm_instance = build_instance(scale, seed)
    masm_disk = masm_instance.tables["orders"].heap.file.device
    cpu = CpuMeter()
    ssd = SimulatedSSD(capacity=64 * MB)
    ssd_volume = StorageVolume(ssd)
    # "MaSM divides the flash space to maintain cached updates per table."
    total_cache = int(
        (masm_instance.tables["orders"].data_bytes
         + masm_instance.tables["lineitem"].data_bytes) * 0.04
    )
    share = {"orders": 0.25, "lineitem": 0.75}
    masms = {}
    for name in ("orders", "lineitem"):
        cache = max(64 * SSD_PAGE, int(total_cache * share[name]))
        config = MaSMConfig(
            alpha=clamped_alpha(cache, 1.0),
            ssd_page_size=SSD_PAGE,
            block_size=COARSE_BLOCK,
            cache_bytes=cache,
            auto_migrate=False,
        )
        masms[name] = MaSM(
            masm_instance.tables[name],
            ssd_volume,
            config=config,
            oracle=masm_instance.oracle,
            cpu=cpu,
            name=f"masm-{name}",
        )
    # Pre-fill each table's cache to 50% (stopping per table once it gets
    # there; lineitem sees ~4x the update volume of orders).
    stream = tpch_update_stream(masm_instance, seed=seed + 1)

    def level(masm: MaSM) -> float:
        return (masm.cached_run_bytes + masm.buffer.used_bytes) / masm.cache_bytes

    while any(level(m) < cache_fill for m in masms.values()):
        table_name, update = next(stream)
        if level(masms[table_name]) < cache_fill:
            masms[table_name].apply(update)
    for masm in masms.values():
        masm.flush_buffer()
        # Warm-up scan: triggers the run-budget merging at scan setup once,
        # outside the measured windows (steady state, as the paper measures).
        for _ in masm.range_scan(0, 4):
            pass

    def masm_scan(table_name: str, begin: int, end: int):
        engine = masms.get(table_name)
        if engine is not None:
            return engine.range_scan(begin, end)
        return masm_instance.tables[table_name].range_scan(begin, end)

    def park(disk) -> None:
        # Start every measurement from the same head position so tiny scaled
        # scans are not dominated by where the previous query stopped.
        disk.read(0, 4096)

    slow_inplace, slow_masm = [], []
    for qid in QUERY_IDS:
        park(masm_disk)
        window = OverlapWindow({"disk": masm_disk})
        with window:
            replay_query(masm_instance, qid)
        t_query = max(window.elapsed, 1e-12)

        park(inplace_disk)
        window = OverlapWindow({"disk": inplace_disk})
        with window:
            replay_with_inplace_updates(
                inplace_instance, qid, inplace_stream, UPDATE_RATE
            )
        t_inplace_base = _query_alone(inplace_instance, inplace_disk, qid)
        t_inplace = window.elapsed / max(t_inplace_base, 1e-12)

        park(masm_disk)
        window = OverlapWindow({"disk": masm_disk, "ssd": ssd}, cpu)
        with window:
            replay_query(masm_instance, qid, scan_fn=masm_scan)
        t_masm = window.elapsed / t_query

        result.add_row(
            f"q{qid}",
            **{
                "no updates": 1.0,
                "in-place updates": t_inplace,
                "MaSM updates": t_masm,
            },
        )
        slow_inplace.append(t_inplace)
        slow_masm.append(t_masm)
    result.note(
        f"avg: in-place {sum(slow_inplace) / len(slow_inplace):.2f}x "
        f"(paper 1.6-2.2x), MaSM {sum(slow_masm) / len(slow_masm):.3f}x "
        "(paper: within 1%)"
    )
    return result


def _query_alone(instance, disk, qid: int) -> float:
    disk.read(0, 4096)  # park the head (see run())
    window = OverlapWindow({"disk": disk})
    with window:
        replay_query(instance, qid)
    return window.elapsed
