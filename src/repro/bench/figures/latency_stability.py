"""Latency stability under a sustained update flood (Figure-12 flavour).

Figure 12 reports *sustained throughput*; this driver reports what the
throughput number hides — the shape of the latency distribution while the
engine is absorbing a flood.  The ungoverned engine meets a filling SSD
cache with stop-the-world migrations at flush time, so an unlucky ``apply``
pays for migrating the whole cache; the governed engine paces migration in
bounded slices and applies its overload policy at admission.

One calibration run measures the sustainable fill+migrate rate (as in
Figure 12), then the same flood — arrivals at ``flood_factor`` times the
sustainable rate — is driven through the ungoverned engine and one governed
engine per overload policy.  For each we report sustained updates/sec, the
p99 per-``apply`` simulated latency, the single longest stall, and how many
updates were shed (non-zero only under ``SHED``).

Expected shape: comparable sustained rates, but the governed engines cut
the longest stall by orders of magnitude (paced slices vs whole-cache
migration) and only ``SHED`` ever drops an update.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    COARSE_BLOCK,
    SSD_PAGE,
    build_rig,
    clamped_alpha,
    safe_rate,
)
from repro.bench.harness import FigureResult
from repro.core.compaction import CompactionConfig
from repro.core.governor import GovernorConfig, OverloadPolicy
from repro.core.masm import MaSM, MaSMConfig
from repro.errors import BackpressureError
from repro.storage.iosched import OverlapWindow
from repro.util.units import KB
from repro.workloads.synthetic import (
    FloodSchedule,
    SyntheticUpdateGenerator,
    flood_stream,
)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _calibrate(scale: float, seed: int) -> tuple[float, int]:
    """Sustainable updates/sec and updates per fill+migrate cycle.

    Measured like Figure 12: warm to the first migration, then time two
    whole fill+migrate cycles.  The per-cycle count sizes the flood so it
    spans several migration cycles whatever the scale.
    """
    rig = build_rig(scale=scale, seed=seed)
    config = MaSMConfig(
        alpha=clamped_alpha(rig.cache_bytes, 1.0),
        ssd_page_size=SSD_PAGE,
        block_size=COARSE_BLOCK,
        cache_bytes=rig.cache_bytes,
        auto_migrate=True,
        migration_threshold=0.5,
    )
    masm = MaSM(rig.table, rig.ssd_volume, config=config, oracle=rig.oracle)
    generator = SyntheticUpdateGenerator(
        num_records=rig.table.row_count, seed=seed, oracle=rig.oracle
    )
    while masm.stats.migrations < 1:
        masm.apply(generator.next_update())
    window = OverlapWindow({"disk": rig.disk, "ssd": rig.ssd}, rig.cpu)
    applied = 0
    with window:
        target = masm.stats.migrations + 2
        while masm.stats.migrations < target:
            masm.apply(generator.next_update())
            applied += 1
    return safe_rate(applied, window.elapsed), max(1, applied // 2)


def _flood(
    scale: float,
    seed: int,
    policy: Optional[OverloadPolicy],
    rate: float,
    admit_rate: float,
    count: int,
) -> dict:
    """Drive one engine through the flood; return the stability metrics."""
    rig = build_rig(scale=scale, seed=seed)
    clock = rig.disk.clock
    alpha = clamped_alpha(rig.cache_bytes, 1.0)
    if policy is None:
        config = MaSMConfig(
            alpha=alpha,
            ssd_page_size=SSD_PAGE,
            block_size=COARSE_BLOCK,
            cache_bytes=rig.cache_bytes,
            auto_migrate=True,
            migration_threshold=0.5,
        )
    else:
        config = MaSMConfig(
            alpha=alpha,
            ssd_page_size=SSD_PAGE,
            block_size=COARSE_BLOCK,
            cache_bytes=rig.cache_bytes,
            auto_migrate=False,
            governor=GovernorConfig(
                overload_policy=policy,
                admit_rate=admit_rate,
                burst=64.0,
            ),
        )
    masm = MaSM(rig.table, rig.ssd_volume, config=config, oracle=rig.oracle)
    generator = SyntheticUpdateGenerator(
        num_records=rig.table.row_count, seed=seed, oracle=rig.oracle
    )
    schedule = FloodSchedule.steady(rate, count)
    latencies: list[float] = []
    applied = 0
    shed = 0
    flood_start = clock.now
    for arrival, update in flood_stream(generator, schedule, start=flood_start):
        if clock.now < arrival:
            clock.advance_to(arrival)
        started = clock.now
        try:
            masm.apply(update)
        except BackpressureError:
            shed += 1
        else:
            applied += 1
        latencies.append(clock.now - started)
    latencies.sort()
    # Sustained throughput over the flood's wall (simulated) time: device
    # work, admission delays and inter-arrival gaps all count, so the rate
    # is capped by the arrival rate and directly comparable across engines.
    return {
        "updates/sec": safe_rate(applied, clock.now - flood_start),
        "p99 apply (ms)": _percentile(latencies, 0.99) * 1e3,
        "longest stall (ms)": (latencies[-1] if latencies else 0.0) * 1e3,
        "shed": float(shed),
    }


def run(
    scale: float = 1.0,
    seed: int = 7,
    flood_factor: float = 2.0,
    flood_updates: Optional[int] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Latency stability",
        title="Apply-latency stability under a sustained flood "
        f"({flood_factor:g}x the sustainable rate)",
        row_label="engine",
        columns=["updates/sec", "p99 apply (ms)", "longest stall (ms)", "shed"],
    )
    sustainable, per_cycle = _calibrate(scale, seed)
    # Span ~3 fill+migrate cycles by default so the flood actually exercises
    # migration pacing (an explicit flood_updates keeps smoke runs fast).
    count = flood_updates if flood_updates is not None else max(400, 3 * per_cycle)
    flood_rate = sustainable * flood_factor
    result.add_row(
        "ungoverned",
        **_flood(scale, seed, None, flood_rate, sustainable, count),
    )
    for policy in (
        OverloadPolicy.DELAY,
        OverloadPolicy.SHED,
        OverloadPolicy.SYNC_MIGRATE,
    ):
        result.add_row(
            f"governed/{policy.value}",
            **_flood(scale, seed, policy, flood_rate, sustainable, count),
        )
    result.note(
        f"sustainable rate {sustainable:.0f} upd/s; flood at "
        f"{flood_factor:g}x; governed engines bound each stall "
        "(paced migration slices) while only SHED drops updates"
    )
    return result


# --------------------------------------------------- compaction comparison
#: Engine geometry for the comparison: 1 KB pages over a 128 KB cache give
#: M=11, a 6-page (6 KB) update buffer and query_pages=5, so the flood
#: mints a fresh sorted run every couple hundred updates; with migration
#: deferred to 95% of the cache, the run count repeatedly crosses the
#: budget between scans — real pressure at bench-smoke scale.
_COMPACTION_PAGE = 1 * KB
_COMPACTION_CACHE = 128 * KB


def _compaction_engine(rig, mode: str) -> MaSM:
    """An engine sized so the flood outruns the run budget.

    A small update buffer makes flushes (hence sorted runs) frequent, so
    both engines repeatedly cross ``query_pages``: the structural engine
    answers with a stop-the-world multi-run merge inside the next scan's
    preamble, the cost engine with paced WAL-fenced slices charged to the
    ingest timeline.  Everything except the ``compaction=`` knob is
    identical — same budget trigger, same auto-migration policy.
    """
    config = MaSMConfig(
        alpha=clamped_alpha(_COMPACTION_CACHE, 1.0, page=_COMPACTION_PAGE),
        ssd_page_size=_COMPACTION_PAGE,
        block_size=_COMPACTION_PAGE,
        cache_bytes=_COMPACTION_CACHE,
        auto_migrate=True,
        migration_threshold=0.95,
        compaction=mode,
        # The cost scheduler's own tuning: plan one run above the
        # structural budget and emit coarse slices.  Riding slightly higher
        # trades marginally wider scans for strictly less re-merge work —
        # which is the point of scoring benefit against device cost.
        compaction_config=(
            CompactionConfig(trigger_runs=6, min_slice_records=1024)
            if mode == "cost"
            else None
        ),
    )
    return MaSM(rig.table, rig.ssd_volume, config=config, oracle=rig.oracle, cpu=rig.cpu)


def _scan_flood(
    scale: float,
    seed: int,
    mode: str,
    rate: float,
    count: int,
    scan_every: int,
) -> dict:
    """Flood one engine at ``rate`` with interleaved scans; return metrics."""
    rig = build_rig(scale=scale, seed=seed)
    clock = rig.disk.clock
    masm = _compaction_engine(rig, mode)
    generator = SyntheticUpdateGenerator(
        num_records=rig.table.row_count, seed=seed, oracle=rig.oracle
    )
    schedule = FloodSchedule.steady(rate, count)
    # Narrow scans over the populated key domain (keys are 2*i for row i):
    # the fixed base-table heap read must not drown the run-budget work the
    # two modes schedule differently — the stall being compared is SSD-side
    # (merge writes in the structural preamble vs paced slices on the
    # ingest timeline).
    key_lo, key_hi = 0, rig.table.row_count * 2
    span = max(16, (key_hi - key_lo) // 128)
    latencies: list[float] = []
    peak_runs = 0
    scans = 0
    flood_start = clock.now
    for index, (arrival, update) in enumerate(
        flood_stream(generator, schedule, start=flood_start)
    ):
        if clock.now < arrival:
            clock.advance_to(arrival)
        masm.apply(update)
        peak_runs = max(peak_runs, len(masm.runs))
        if masm.compactor is not None:
            # The sim has no threads; the ingest loop stands in for the
            # background compaction thread.  maybe_step() is a no-op until
            # the run count crosses the trigger, then pays one bounded
            # slice here — on the ingest timeline, not inside a scan.
            masm.compactor.maybe_step()
        if (index + 1) % scan_every == 0:
            lo = key_lo + (scans * span) % max(1, key_hi - key_lo - span)
            started = clock.now
            last = started
            # Latency is time-to-last-result: the structural preamble merge
            # delays the first row and is charged; post-delivery generator
            # cleanup (the scan-end compaction hook) is background work and
            # is not — though its device seconds still count below.
            for _ in masm.range_scan(lo, lo + span):
                last = clock.now
            latencies.append(last - started)
            scans += 1
    latencies.sort()
    device_seconds = rig.disk.stats.busy_time + rig.ssd.stats.busy_time
    compactor = masm.compactor
    report = compactor.report() if compactor is not None else {}
    return {
        "scans": float(scans),
        "p99 scan (ms)": _percentile(latencies, 0.99) * 1e3,
        "p99.9 scan (ms)": _percentile(latencies, 0.999) * 1e3,
        "max scan (ms)": (latencies[-1] if latencies else 0.0) * 1e3,
        "device (s)": device_seconds,
        "peak runs": float(peak_runs),
        "slices": float(report.get("slices_applied", 0)),
        "emergency": float(report.get("emergency_merges", 0)),
    }


def run_compaction(
    scale: float = 1.0,
    seed: int = 7,
    flood_factor: float = 2.0,
    flood_updates: Optional[int] = None,
    scan_every: int = 300,
) -> FigureResult:
    """Sustained-overload structural-vs-cost comparison on scan latency.

    Both engines absorb the same update flood at ``flood_factor`` times the
    sustainable rate with a scan every ``scan_every`` updates.  The claim
    under test: cost-based incremental compaction trims the scan-latency
    tail (p99.9) without spending more device time than the structural
    oracle — same bytes merged, paid in bounded slices instead of stalls.
    """
    result = FigureResult(
        figure="Latency stability (compaction)",
        title="Scan-latency stability under a sustained "
        f"{flood_factor:g}x flood: structural vs cost-based compaction",
        row_label="engine",
        columns=[
            "scans",
            "p99 scan (ms)",
            "p99.9 scan (ms)",
            "max scan (ms)",
            "device (s)",
            "peak runs",
            "slices",
            "emergency",
        ],
    )
    sustainable, per_cycle = _calibrate(scale, seed)
    count = flood_updates if flood_updates is not None else max(6000, 3 * per_cycle)
    flood_rate = sustainable * flood_factor
    for mode in ("structural", "cost"):
        result.add_row(
            mode, **_scan_flood(scale, seed, mode, flood_rate, count, scan_every)
        )
    structural_tail = result.cell("structural", "p99.9 scan (ms)")
    cost_tail = result.cell("cost", "p99.9 scan (ms)")
    result.note(
        f"flood at {flood_factor:g}x sustainable ({flood_rate:.0f} upd/s), "
        f"{count} updates, scan every {scan_every}; p99.9 scan "
        f"{structural_tail:.2f} ms structural vs {cost_tail:.2f} ms cost"
    )
    return result
