"""Latency stability under a sustained update flood (Figure-12 flavour).

Figure 12 reports *sustained throughput*; this driver reports what the
throughput number hides — the shape of the latency distribution while the
engine is absorbing a flood.  The ungoverned engine meets a filling SSD
cache with stop-the-world migrations at flush time, so an unlucky ``apply``
pays for migrating the whole cache; the governed engine paces migration in
bounded slices and applies its overload policy at admission.

One calibration run measures the sustainable fill+migrate rate (as in
Figure 12), then the same flood — arrivals at ``flood_factor`` times the
sustainable rate — is driven through the ungoverned engine and one governed
engine per overload policy.  For each we report sustained updates/sec, the
p99 per-``apply`` simulated latency, the single longest stall, and how many
updates were shed (non-zero only under ``SHED``).

Expected shape: comparable sustained rates, but the governed engines cut
the longest stall by orders of magnitude (paced slices vs whole-cache
migration) and only ``SHED`` ever drops an update.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    COARSE_BLOCK,
    SSD_PAGE,
    build_rig,
    clamped_alpha,
    safe_rate,
)
from repro.bench.harness import FigureResult
from repro.core.governor import GovernorConfig, OverloadPolicy
from repro.core.masm import MaSM, MaSMConfig
from repro.errors import BackpressureError
from repro.storage.iosched import OverlapWindow
from repro.workloads.synthetic import (
    FloodSchedule,
    SyntheticUpdateGenerator,
    flood_stream,
)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _calibrate(scale: float, seed: int) -> tuple[float, int]:
    """Sustainable updates/sec and updates per fill+migrate cycle.

    Measured like Figure 12: warm to the first migration, then time two
    whole fill+migrate cycles.  The per-cycle count sizes the flood so it
    spans several migration cycles whatever the scale.
    """
    rig = build_rig(scale=scale, seed=seed)
    config = MaSMConfig(
        alpha=clamped_alpha(rig.cache_bytes, 1.0),
        ssd_page_size=SSD_PAGE,
        block_size=COARSE_BLOCK,
        cache_bytes=rig.cache_bytes,
        auto_migrate=True,
        migration_threshold=0.5,
    )
    masm = MaSM(rig.table, rig.ssd_volume, config=config, oracle=rig.oracle)
    generator = SyntheticUpdateGenerator(
        num_records=rig.table.row_count, seed=seed, oracle=rig.oracle
    )
    while masm.stats.migrations < 1:
        masm.apply(generator.next_update())
    window = OverlapWindow({"disk": rig.disk, "ssd": rig.ssd}, rig.cpu)
    applied = 0
    with window:
        target = masm.stats.migrations + 2
        while masm.stats.migrations < target:
            masm.apply(generator.next_update())
            applied += 1
    return safe_rate(applied, window.elapsed), max(1, applied // 2)


def _flood(
    scale: float,
    seed: int,
    policy: Optional[OverloadPolicy],
    rate: float,
    admit_rate: float,
    count: int,
) -> dict:
    """Drive one engine through the flood; return the stability metrics."""
    rig = build_rig(scale=scale, seed=seed)
    clock = rig.disk.clock
    alpha = clamped_alpha(rig.cache_bytes, 1.0)
    if policy is None:
        config = MaSMConfig(
            alpha=alpha,
            ssd_page_size=SSD_PAGE,
            block_size=COARSE_BLOCK,
            cache_bytes=rig.cache_bytes,
            auto_migrate=True,
            migration_threshold=0.5,
        )
    else:
        config = MaSMConfig(
            alpha=alpha,
            ssd_page_size=SSD_PAGE,
            block_size=COARSE_BLOCK,
            cache_bytes=rig.cache_bytes,
            auto_migrate=False,
            governor=GovernorConfig(
                overload_policy=policy,
                admit_rate=admit_rate,
                burst=64.0,
            ),
        )
    masm = MaSM(rig.table, rig.ssd_volume, config=config, oracle=rig.oracle)
    generator = SyntheticUpdateGenerator(
        num_records=rig.table.row_count, seed=seed, oracle=rig.oracle
    )
    schedule = FloodSchedule.steady(rate, count)
    latencies: list[float] = []
    applied = 0
    shed = 0
    flood_start = clock.now
    for arrival, update in flood_stream(generator, schedule, start=flood_start):
        if clock.now < arrival:
            clock.advance_to(arrival)
        started = clock.now
        try:
            masm.apply(update)
        except BackpressureError:
            shed += 1
        else:
            applied += 1
        latencies.append(clock.now - started)
    latencies.sort()
    # Sustained throughput over the flood's wall (simulated) time: device
    # work, admission delays and inter-arrival gaps all count, so the rate
    # is capped by the arrival rate and directly comparable across engines.
    return {
        "updates/sec": safe_rate(applied, clock.now - flood_start),
        "p99 apply (ms)": _percentile(latencies, 0.99) * 1e3,
        "longest stall (ms)": (latencies[-1] if latencies else 0.0) * 1e3,
        "shed": float(shed),
    }


def run(
    scale: float = 1.0,
    seed: int = 7,
    flood_factor: float = 2.0,
    flood_updates: Optional[int] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Latency stability",
        title="Apply-latency stability under a sustained flood "
        f"({flood_factor:g}x the sustainable rate)",
        row_label="engine",
        columns=["updates/sec", "p99 apply (ms)", "longest stall (ms)", "shed"],
    )
    sustainable, per_cycle = _calibrate(scale, seed)
    # Span ~3 fill+migrate cycles by default so the flood actually exercises
    # migration pacing (an explicit flood_updates keeps smoke runs fast).
    count = flood_updates if flood_updates is not None else max(400, 3 * per_cycle)
    flood_rate = sustainable * flood_factor
    result.add_row(
        "ungoverned",
        **_flood(scale, seed, None, flood_rate, sustainable, count),
    )
    for policy in (
        OverloadPolicy.DELAY,
        OverloadPolicy.SHED,
        OverloadPolicy.SYNC_MIGRATE,
    ):
        result.add_row(
            f"governed/{policy.value}",
            **_flood(scale, seed, policy, flood_rate, sustainable, count),
        )
    result.note(
        f"sustainable rate {sustainable:.0f} upd/s; flood at "
        f"{flood_factor:g}x; governed engines bound each stall "
        "(paced migration slices) while only SHED drops updates"
    )
    return result
