"""Section 2.3: why LSM-on-SSD fails the low-writes design goal.

The analytic table reproduces the paper's arithmetic for 4 GB flash / 16 MB
memory (ratio 256): a 2-level LSM writes every entry ~128 times, the optimal
4-level one ~17 times, versus 1 for MaSM-2M and ~1.75 for MaSM-M.  A
measured miniature LSM validates the model, and the measured MaSM engines
validate theirs.
"""

from __future__ import annotations

from repro.baselines.lsm import LSMUpdateCache
from repro.bench.figures.common import build_rig, make_masm
from repro.bench.harness import FigureResult
from repro.core import theory
from repro.engine.table import Table
from repro.storage.disk import SimulatedDisk
from repro.storage.file import StorageVolume
from repro.storage.ssd import SimulatedSSD
from repro.util.units import GB, KB, MB
from repro.workloads.synthetic import SyntheticUpdateGenerator

PAPER_RATIO = (4 * GB) / (16 * MB)  # 256


def run(scale: float = 1.0, seed: int = 23) -> FigureResult:
    result = FigureResult(
        figure="Section 2.3 (LSM)",
        title="SSD writes per update record: LSM levels vs MaSM",
        row_label="scheme",
        columns=["analytic", "measured"],
    )
    for levels in (1, 2, 3, 4, 5):
        result.add_row(
            f"LSM h={levels}",
            analytic=theory.lsm_writes_per_update(PAPER_RATIO, levels),
        )
    optimal = theory.lsm_optimal_levels(PAPER_RATIO)
    result.note(
        f"optimal LSM at ratio {PAPER_RATIO:.0f} has h={optimal} "
        f"({theory.lsm_writes_per_update(PAPER_RATIO, optimal):.1f} writes "
        "per entry - a ~17x SSD lifetime penalty vs MaSM-2M)"
    )

    # --- measured miniature LSM (ratio 16, 1 level: theory (r+1)/2 = 8.5) --
    ratio = 16
    lsm = _measured_lsm(ratio=ratio, updates=int(15000 * scale) + 4000, seed=seed)
    result.add_row(
        f"LSM h=1 (measured, r={ratio})",
        analytic=theory.lsm_writes_per_update(ratio, 1),
        measured=lsm.writes_per_update,
    )

    # --- measured MaSM ------------------------------------------------------
    for alpha, label in ((2.0, "MaSM-2M"), (1.0, "MaSM-M")):
        masm, measured = _measured_masm(alpha, scale, seed)
        result.add_row(
            label,
            analytic=theory.masm_writes_per_update(alpha, M=masm.params.M),
            measured=measured,
        )
    return result


def _measured_lsm(ratio: int, updates: int, seed: int) -> LSMUpdateCache:
    disk_vol = StorageVolume(SimulatedDisk(capacity=64 * MB))
    ssd_vol = StorageVolume(SimulatedSSD(capacity=32 * MB))
    table = Table.create(disk_vol, "t", _schema(), 2000)
    table.bulk_load((i * 2, f"rec-{i}") for i in range(2000))
    lsm = LSMUpdateCache(
        table, ssd_vol, memory_bytes=4 * KB, levels=1, size_ratio=ratio,
        block_size=4 * KB,
    )
    gen = SyntheticUpdateGenerator(num_records=2000, seed=seed)
    for update in gen.stream(updates):
        lsm.apply(update)
    return lsm


def _measured_masm(alpha: float, scale: float, seed: int):
    rig = build_rig(scale=min(scale, 0.5), seed=seed)
    masm = make_masm(rig, alpha=alpha)
    gen = SyntheticUpdateGenerator(
        num_records=rig.table.row_count, seed=seed, oracle=rig.oracle
    )
    # Worst-case-style pressure: a standing scan prevents page stealing, and
    # periodic scans trigger the run-budget merges that create 2-pass runs.
    standing = masm.range_scan(0, 2)
    next(standing, None)
    target = int(masm.cache_bytes * 0.9)
    while masm.cached_run_bytes + masm.buffer.used_bytes < target:
        masm.apply(gen.next_update())
        if len(masm.runs) > masm.params.query_pages:
            rig.drain(masm.range_scan(0, 2))
    rig.drain(standing)
    return masm, masm.stats.ssd_writes_per_update


def _schema():
    from repro.engine.record import synthetic_schema

    return synthetic_schema()
