"""Shared rig for the figure drivers: devices, table, engines, measurement.

Scaling (see DESIGN.md): the paper's 100 GB table / 4 GB SSD cache shrink by
default to a 32 MB table / 2 MB cache — the same 1-10% cache:data ratio and
the same 64 KB-page arithmetic, just fewer pages.  Every driver takes a
``scale`` multiplier so benchmarks can run larger when time permits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro import obs
from repro.baselines.iu import IndexedUpdates
from repro.core.masm import MaSM, MaSMConfig
from repro.engine.table import Table
from repro.storage.clock import SimClock
from repro.storage.disk import SimulatedDisk
from repro.storage.file import StorageVolume
from repro.storage.iosched import CpuMeter, OverlapWindow, TimeBreakdown
from repro.storage.ssd import SimulatedSSD
from repro.txn.timestamps import TimestampOracle
from repro.util.units import KB, MB
from repro.workloads.synthetic import SyntheticUpdateGenerator, build_synthetic_table

#: Base scale=1.0 sizing: a 32 MB table with a 1.28 MB SSD update cache —
#: 4% of the data, inside the paper's 1-10% guidance, and at the 50%-full
#: starting condition exactly the paper's measured density (2 GB of cached
#: updates per 100 GB of data = 2%).
BASE_RECORDS = 320_000
BASE_CACHE_BYTES = int(BASE_RECORDS * 100 * 0.04)
#: Scaled stand-in for the paper's 64 KB SSD I/O page.
SSD_PAGE = 8 * KB
#: Run-index granularities, scaled with the page exactly as in the paper:
#: coarse = one entry per SSD page, fine = one entry per 1/16 page
#: (64 KB and 4 KB at full scale).
COARSE_BLOCK = SSD_PAGE
FINE_BLOCK = SSD_PAGE // 16


@dataclass
class Rig:
    """One experiment setup: devices, table, timing."""

    disk: SimulatedDisk
    ssd: SimulatedSSD
    disk_volume: StorageVolume
    ssd_volume: StorageVolume
    cpu: CpuMeter
    table: Table
    oracle: TimestampOracle
    cache_bytes: int

    def measure(self, fn, *args, label: str = "query", **kwargs) -> TimeBreakdown:
        """Run ``fn`` under the async-overlap model; returns the breakdown."""
        window = OverlapWindow(
            {"disk": self.disk, "ssd": self.ssd}, self.cpu, label=label
        )
        with window:
            fn(*args, **kwargs)
        return window.result

    def drain(self, iterator: Iterator) -> int:
        count = 0
        for _ in iterator:
            count += 1
        return count

    def pure_scan_time(self, begin: int, end: int) -> float:
        """Elapsed time of a plain table range scan (the normalizer)."""
        result = self.measure(lambda: self.drain(self.table.range_scan(begin, end)))
        return result.elapsed


def build_rig(
    scale: float = 1.0,
    num_records: Optional[int] = None,
    cache_bytes: Optional[int] = None,
    seed: int = 0,
) -> Rig:
    """A synthetic-table rig at the given scale."""
    records = num_records if num_records is not None else int(BASE_RECORDS * scale)
    cache = cache_bytes if cache_bytes is not None else int(BASE_CACHE_BYTES * scale)
    table_bytes = records * 100
    # One virtual timeline for the whole rig: devices advance it as simulated
    # work completes, and the active tracer records spans against it so
    # traces are deterministic (no host time anywhere).
    clock = SimClock()
    disk = SimulatedDisk(capacity=max(4 * table_bytes, 64 * MB), clock=clock)
    ssd = SimulatedSSD(capacity=max(4 * cache, 8 * MB), clock=clock)
    obs.get_tracer().bind_clock(clock)
    cpu = CpuMeter()
    disk_volume = StorageVolume(disk)
    ssd_volume = StorageVolume(ssd)
    table = build_synthetic_table(disk_volume, records, cpu=cpu)
    return Rig(
        disk=disk,
        ssd=ssd,
        disk_volume=disk_volume,
        ssd_volume=ssd_volume,
        cpu=cpu,
        table=table,
        oracle=TimestampOracle(),
        cache_bytes=cache,
    )


def safe_rate(count: float, elapsed: float) -> float:
    """``count / elapsed`` guarded against zero simulated elapsed time.

    Tiny ``--scale`` smoke runs can complete a measured section in zero
    simulated seconds (everything in cache, no device I/O), so rate
    computations clamp the denominator to one picosecond and report a
    large-but-finite rate instead of raising ``ZeroDivisionError``.
    """
    return count / max(elapsed, 1e-12)


def clamped_alpha(cache_bytes: int, alpha: float, page: int = SSD_PAGE) -> float:
    """Raise alpha to its Section 3.4 lower bound when a scaled-down cache
    makes M too small for the requested value (alpha >= 2/cbrt(M))."""
    import math

    from repro.core.theory import alpha_lower_bound

    M = max(2, math.isqrt(max(1, cache_bytes // page)))
    return min(2.0, max(alpha, alpha_lower_bound(M) * 1.0001))


def make_masm(
    rig: Rig,
    alpha: float = 1.0,  # the paper's experiments use MaSM-M (Section 4.1)
    block_size: Optional[int] = None,
    auto_migrate: bool = False,
    merge_duplicates: bool = False,
) -> MaSM:
    if block_size is None:
        block_size = COARSE_BLOCK
    alpha = clamped_alpha(rig.cache_bytes, alpha)
    """A MaSM engine on the rig's SSD with the scaled page size."""
    config = MaSMConfig(
        alpha=alpha,
        ssd_page_size=SSD_PAGE,
        block_size=block_size,
        cache_bytes=rig.cache_bytes,
        auto_migrate=auto_migrate,
        merge_duplicates_on_flush=merge_duplicates,
    )
    return MaSM(rig.table, rig.ssd_volume, config=config, oracle=rig.oracle, cpu=rig.cpu)


def make_iu(rig: Rig) -> IndexedUpdates:
    return IndexedUpdates(
        rig.table, rig.ssd_volume, oracle=rig.oracle, cache_bytes=rig.cache_bytes
    )


def fill_cache(engine, rig: Rig, fraction: float, seed: int = 1) -> int:
    """Apply updates until the engine caches ``fraction`` of the rig's SSD
    cache budget (the paper's '50% full' starting condition).

    Works for MaSM (flushes to runs) and IU (appends to SSD tables).
    Returns the number of updates applied.
    """
    from repro.errors import UpdateCacheFullError

    generator = SyntheticUpdateGenerator(
        num_records=rig.table.row_count, seed=seed, oracle=rig.oracle
    )
    target = int(rig.cache_bytes * fraction)
    applied = 0
    try:
        while _cached_bytes(engine) < target:
            engine.apply(generator.next_update())
            applied += 1
        flush = getattr(engine, "flush_buffer", None)
        if flush is not None:
            flush()
    except UpdateCacheFullError:
        # Block padding makes very high fill fractions land slightly short
        # of the nominal target; "as full as fits" is the paper's 99% case.
        pass
    return applied


def _cached_bytes(engine) -> int:
    if isinstance(engine, MaSM):
        return engine.cached_run_bytes + engine.buffer.used_bytes
    return engine.cached_bytes


#: The paper's Figure 9/10 range-size sweep, scaled.  At scale=1.0 the table
#: is 32 MB ("100 GB" in the paper) and the smallest range is one 4 KB page,
#: matching the paper's endpoints relative to table size.
def range_size_sweep(rig: Rig) -> list[tuple[str, int]]:
    table_bytes = rig.table.data_bytes
    sweep: list[tuple[str, int]] = []
    size = 4 * KB
    while size < table_bytes:
        sweep.append((_label(size), size))
        size *= 10
    sweep.append(("full", table_bytes))
    return sweep


def _label(size: int) -> str:
    from repro.util.units import fmt_bytes

    return fmt_bytes(size)


def random_range(rig: Rig, size_bytes: int, rng: random.Random) -> tuple[int, int]:
    from repro.workloads.synthetic import range_for_bytes

    if size_bytes >= rig.table.data_bytes:
        return rig.table.full_key_range()
    return range_for_bytes(rig.table, size_bytes, rng)
