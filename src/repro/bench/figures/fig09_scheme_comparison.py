"""Figure 9: the impact of online update schemes on range scan performance.

Range sizes sweep from one 4 KB page to the whole table; the update cache is
50% full.  Four schemes, as in the paper:

* in-place updates running concurrently with the scan (shared disk head);
* ideal-case Indexed Updates (one synchronous random SSD read per entry);
* MaSM with the coarse-grain run index (64 KB blocks);
* MaSM with the fine-grain run index (4 KB blocks).

All values are normalized to the same scan with no updates.  Expected shape
(paper): in-place 1.7-3.7x everywhere; IU up to 3.8x, worst in the middle;
MaSM-coarse near 1 for large ranges but paying whole blocks per run at small
ranges; MaSM-fine within a few percent everywhere.
"""

from __future__ import annotations

import random

from repro.baselines.inplace import interleaved_scan
from repro.bench.figures.common import (
    COARSE_BLOCK,
    FINE_BLOCK,
    build_rig,
    fill_cache,
    make_iu,
    make_masm,
    random_range,
    range_size_sweep,
)
from repro.bench.harness import FigureResult
from repro.workloads.synthetic import SyntheticUpdateGenerator

#: Concurrent in-place updates serviced per 1 MB scan chunk (the online
#: update arrival rate for the in-place bars).
INPLACE_UPDATES_PER_CHUNK = 1.0

CACHE_FILL = 0.5  # "the cached updates occupy 50% of the allocated flash"


def run(scale: float = 1.0, repeats: int = 3, seed: int = 7) -> FigureResult:
    result = FigureResult(
        figure="Figure 9",
        title="Range scans with online updates, normalized to scans without "
        "updates (cache 50% full)",
        row_label="range size",
        columns=["in-place", "IU", "masm-coarse", "masm-fine"],
    )
    rng = random.Random(seed)

    # --- independent rigs per scheme so caches/head state don't interact ---
    inplace_rig = build_rig(scale=scale, seed=seed)

    iu_rig = build_rig(scale=scale, seed=seed)
    iu = make_iu(iu_rig)
    fill_cache(iu, iu_rig, CACHE_FILL)

    coarse_rig = build_rig(scale=scale, seed=seed)
    masm_coarse = make_masm(coarse_rig, block_size=COARSE_BLOCK)
    fill_cache(masm_coarse, coarse_rig, CACHE_FILL)

    fine_rig = build_rig(scale=scale, seed=seed)
    masm_fine = make_masm(fine_rig, block_size=FINE_BLOCK)
    fill_cache(masm_fine, fine_rig, CACHE_FILL)

    result.note(
        f"table {inplace_rig.table.data_bytes} bytes stands in for the "
        f"paper's 100GB; cache {coarse_rig.cache_bytes} bytes for its 4GB; "
        f"runs: coarse={len(masm_coarse.runs)}, fine={len(masm_fine.runs)} "
        "(the paper saw 128 at full scale - small-range factors compress "
        "with the run count)"
    )

    for label, size in range_size_sweep(inplace_rig):
        ranges = [random_range(inplace_rig, size, rng) for _ in range(repeats)]

        def averaged(measure_one) -> float:
            return sum(measure_one(b, e) for b, e in ranges) / len(ranges)

        baseline = averaged(
            lambda b, e: inplace_rig.measure(
                lambda: inplace_rig.drain(inplace_rig.table.range_scan(b, e))
            ).elapsed
        )

        def inplace_time(b: int, e: int) -> float:
            gen = SyntheticUpdateGenerator(
                num_records=inplace_rig.table.row_count,
                seed=rng.randrange(10**6),
                oracle=inplace_rig.oracle,
            )
            return inplace_rig.measure(
                lambda: inplace_rig.drain(
                    interleaved_scan(
                        inplace_rig.table,
                        b,
                        e,
                        gen.stream(),
                        INPLACE_UPDATES_PER_CHUNK,
                    )
                )
            ).elapsed

        def engine_time(rig, engine):
            def timer(b: int, e: int) -> float:
                return rig.measure(
                    lambda: rig.drain(engine.range_scan(b, e))
                ).elapsed

            return timer

        result.add_row(
            label,
            **{
                "in-place": averaged(inplace_time) / baseline,
                "IU": averaged(engine_time(iu_rig, iu)) / baseline,
                "masm-coarse": averaged(engine_time(coarse_rig, masm_coarse))
                / baseline,
                "masm-fine": averaged(engine_time(fine_rig, masm_fine)) / baseline,
            },
        )

    # The coarse-vs-fine mechanism at small ranges (one block read per run):
    # report the SSD bytes each index granularity touches for a 4KB range.
    begin, end = random_range(inplace_rig, 4096, rng)
    coarse_io = coarse_rig.measure(
        lambda: coarse_rig.drain(masm_coarse.range_scan(begin, end))
    ).stats("ssd")
    fine_io = fine_rig.measure(
        lambda: fine_rig.drain(masm_fine.range_scan(begin, end))
    ).stats("ssd")
    result.note(
        f"4KB-range SSD reads: coarse {coarse_io.bytes_read}B vs fine "
        f"{fine_io.bytes_read}B - both overlap under the disk I/O here; at "
        "the paper's 128-run scale the coarse reads exceed the disk time "
        "(its 2.9x), while fine stays within a few percent"
    )
    return result
