"""Figure 4: TPC-H queries with emulated random updates on a column store.

Reproduces the paper's methodology precisely: the column store only supports
offline updates, so the update I/O is *recorded as a trace* while applying
updates offline, and during queries the trace is replayed with writes
converted to reads — identical disk-head movement without corrupting data
(Section 2.2).

Expected shape: 1.2-4.0x slowdowns, ~2.6x on average.
"""

from __future__ import annotations

import itertools
import random

from repro.bench.harness import FigureResult
from repro.engine.columnstore import ColumnTable
from repro.storage.disk import SimulatedDisk
from repro.storage.file import StorageVolume
from repro.storage.iosched import OverlapWindow
from repro.util.units import GB
from repro.workloads.tpch import QUERY_IDS, QUERY_SCANS, ROWS_PER_SF, SCHEMAS
from repro.workloads.traces import TraceRecorder, replay_trace

#: Trace events replayed per scanned column chunk during a query.
REPLAY_RATE = 3

LINEITEMS_PER_ORDER = 4


def build_column_instance(scale: float, seed: int):
    volume = StorageVolume(SimulatedDisk(capacity=4 * GB))
    rng = random.Random(seed)
    counts = {
        name: (rows if name in ("nation", "region") else max(2, int(rows * scale)))
        for name, rows in ROWS_PER_SF.items()
    }
    counts["lineitem"] = counts["orders"] * LINEITEMS_PER_ORDER
    tables: dict[str, ColumnTable] = {}
    for name, schema in SCHEMAS.items():
        table = ColumnTable(name, schema, volume, capacity_rows=counts[name] + 64)
        rows = _rows_for(name, counts, rng)
        table.bulk_load(rows)
        tables[name] = table
    return tables, volume.device, rng


def _rows_for(name: str, counts: dict, rng: random.Random):
    n = counts[name]
    if name == "region":
        return [(i, f"REGION-{i}") for i in range(n)]
    if name == "nation":
        return [(i, i % counts["region"], f"NATION-{i}") for i in range(n)]
    if name == "supplier":
        return [(i, i % counts["nation"], 1.0 * i, f"Supplier-{i}") for i in range(n)]
    if name == "customer":
        return [(i, i % counts["nation"], 1.0 * i, "BUILDING") for i in range(n)]
    if name == "part":
        return [(i, 1 + i % 50, 900.0 + i, f"Brand#{i % 5}", "STEEL") for i in range(n)]
    if name == "partsupp":
        return [((i // 4) * 16 + i % 4, 1 + i % 9999, 1.0 + i % 999) for i in range(n)]
    if name == "orders":
        return [(i * 2, i % counts["customer"], i % 2200, 100.0 + i, "1-URGENT") for i in range(n)]
    # lineitem
    return [
        (
            (i // 4) * 16 + i % 4,
            i % counts["part"],
            i % counts["supplier"],
            1 + i % 50,
            900.0 + i,
            0.05,
            i % 2600,
            f"li-{i}",
        )
        for i in range(n)
    ]


def record_update_trace(tables, device, rng, num_updates: int):
    """Apply updates offline under a trace recorder (the paper's method)."""
    orders = tables["orders"]
    lineitem = tables["lineitem"]
    order_keys = [k for k in range(0, orders.row_count * 2, 2)]
    with TraceRecorder(device) as trace:
        for _ in range(num_updates):
            orderkey = rng.choice(order_keys)
            if rng.random() < 0.5:
                orders.modify_in_place(orderkey, {"o_totalprice": rng.uniform(1, 9)})
            else:
                line = rng.randrange(LINEITEMS_PER_ORDER)
                try:
                    lineitem.modify_in_place(
                        (orderkey // 2) * 16 + line, {"l_quantity": 1}
                    )
                except Exception:
                    continue
    return trace.events


def run(scale: float = 0.3, seed: int = 2, num_updates: int = 400) -> FigureResult:
    result = FigureResult(
        figure="Figure 4",
        title="TPC-H queries with emulated random updates on a column store "
        "(normalized to the query without updates)",
        row_label="query",
        columns=["no updates", "query w/ updates"],
    )
    tables, device, rng = build_column_instance(scale, seed)
    events = record_update_trace(tables, device, rng, num_updates)
    device.reset_stats()

    slowdowns = []
    for qid in QUERY_IDS:
        window = OverlapWindow({"disk": device})
        with window:
            _replay_columns(tables, qid)
        t_query = window.elapsed

        window = OverlapWindow({"disk": device})
        with window:
            _replay_columns(tables, qid, events)
        t_mixed = window.elapsed

        base = max(t_query, 1e-12)
        result.add_row(
            f"q{qid}",
            **{"no updates": 1.0, "query w/ updates": t_mixed / base},
        )
        slowdowns.append(t_mixed / base)
    result.note(
        f"avg slowdown {sum(slowdowns) / len(slowdowns):.2f}x "
        "(paper: 2.6x avg, 1.2-4.0x); update I/O emulated by replaying a "
        "recorded trace with writes converted to reads"
    )
    return result


def _replay_columns(tables, query_id: int, events=None) -> None:
    """Scan each catalogued table column-wise, optionally interleaving the
    replayed update trace (writes-as-reads).

    The trace cycles, modelling a continuous online update stream for the
    whole query duration (the paper replays its traces "outside of the DBMS
    to emulate online updates").
    """
    event_iter = itertools.cycle(events) if events else None
    device = next(iter(tables.values())).volume.device
    for table_name, fraction in QUERY_SCANS[query_id]:
        table = tables[table_name]
        end_rid = max(0, int(table.row_count * fraction) - 1)
        rows = 0
        for _ in table.range_scan(0, end_rid):
            rows += 1
            if event_iter is not None and rows % 512 == 0:
                replay_trace(itertools.islice(event_iter, REPLAY_RATE), device)
        if event_iter is not None:
            replay_trace(itertools.islice(event_iter, REPLAY_RATE), device)
