"""Experiment drivers, one per table/figure of the paper (see DESIGN.md's
experiment index).  Each module exposes ``run(scale=...) -> FigureResult``.

Every driver in :data:`ALL_DRIVERS` is wrapped so it executes under a fresh
metrics registry and tracer (tracing is always on): devices, engines and
measured regions built inside the driver register into an isolated
namespace, and the finished :class:`FigureResult` carries the full
observability report on ``result.metrics`` — the machine-readable dump the
bench CLI writes next to the figure's CSV and CI uploads as an artifact.
"""

import functools

from repro import obs
from repro.bench.figures import (
    ablations,
    availability_chaos,
    durability_churn,
    fig01_migration_tradeoff,
    fig03_tpch_inplace_rowstore,
    fig04_tpch_inplace_columnstore,
    fig09_scheme_comparison,
    fig10_cache_fill,
    fig11_migration,
    fig12_sustained_updates,
    fig13_cpu_cost,
    fig14_tpch_replay,
    hdd_cache,
    latency_stability,
    lsm_write_amplification,
    noisy_neighbor,
    serving_scale,
    theorem_writes,
)


def instrumented(key, driver):
    """Run ``driver`` under its own registry + tracer; attach the report."""

    @functools.wraps(driver)
    def run(**kwargs):
        with obs.use_registry() as registry, obs.use_tracer() as tracer:
            result = driver(**kwargs)
        result.metrics = obs.report_dict(registry, tracer, experiment=key)
        return result

    return run


ALL_DRIVERS = {
    key: instrumented(key, driver)
    for key, driver in {
        "figure-1": fig01_migration_tradeoff.run,
        "figure-3": fig03_tpch_inplace_rowstore.run,
        "figure-4": fig04_tpch_inplace_columnstore.run,
        "figure-9": fig09_scheme_comparison.run,
        "figure-10": fig10_cache_fill.run,
        "figure-11": fig11_migration.run,
        "figure-12": fig12_sustained_updates.run,
        "figure-13": fig13_cpu_cost.run,
        "figure-14": fig14_tpch_replay.run,
        "availability-under-chaos": availability_chaos.run,
        "durability-under-churn": durability_churn.run,
        "hdd-cache": hdd_cache.run,
        "latency-stability": latency_stability.run,
        "latency-stability-compaction": latency_stability.run_compaction,
        "lsm-write-amplification": lsm_write_amplification.run,
        "noisy-neighbor": noisy_neighbor.run,
        "serving-scale": serving_scale.run,
        "theorem-writes": theorem_writes.run,
        "ablation-materialization": ablations.run_materialization,
        "ablation-skew": ablations.run_skew,
    }.items()
}

__all__ = ["ALL_DRIVERS", "instrumented"]
