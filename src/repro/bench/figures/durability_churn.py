"""Durability under churn: checkpoints, bootstrap and repair while serving.

The robustness acceptance experiment for the durability subsystem: a
3-way replicated warehouse serves a deterministic stream of range queries
while the full durability lifecycle unfolds on the shared virtual
timeline —

* **checkpointed WAL truncation**: every ``MAINT_EVERY`` requests each
  ONLINE replica flushes, cuts a checkpoint and compacts its WAL behind
  the fence, then zeroes one paced slice of the reclaimed tail.  The
  figure tracks the primary's live WAL bytes against the cumulative bytes
  ever appended — bounded (flat) versus linear is the whole point of
  checkpointing.
* **wipe + snapshot bootstrap**: one follower's durable state (runs, WAL,
  heap) is destroyed mid-run; serving continues on the survivors, and the
  node is later revived wholesale from a healthy peer's CRC-verified
  snapshot and catches up from the primary's (finite) WAL.
* **silent corruption + read-repair**: a byte of a primary's sealed run
  is flipped.  The next scan that touches the block fails typed, fails
  over to a healthy replica (the response is still byte-correct) and
  drops a read-repair intent on the :class:`~repro.server.health.RepairQueue`;
  draining the queue runs an anti-entropy pass that repairs the run from
  the replica's own log or a peer.

Every response is byte-compared against a fault-free :class:`ModelTable`
oracle at its pinned snapshot timestamp — truncation, bootstrap and
repair may change where bytes live, never what a query answers.  Virtual
time makes the run a pure function of ``(scale, seed)``; the benchmark
suite runs it twice and asserts byte-identical metrics.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.bench.harness import FigureResult
from repro.core.replication import ReplicatedWarehouse
from repro.core.update import UpdateRecord, UpdateType
from repro.engine.record import synthetic_schema
from repro.errors import ReproError
from repro.obs import get_registry
from repro.server import (
    QueryRequest,
    RepairQueue,
    ReplicatedBackend,
    RequestRouter,
)
from repro.sim.model import ModelTable
from repro.storage.clock import SimClock

SHARDS = 2
REPLICATION = 3
RECORDS_PER_NODE = 1_200
#: Requests at scale=1.0; durability landmarks are fractions of this stream.
BASE_REQUESTS = 240
#: Updates absorbed (and replicated) before serving starts.
WARMUP_UPDATES = 300
#: Updates interleaved between consecutive requests during serving.
UPDATES_PER_REQUEST = 2
#: Requests between checkpoint/truncate/zeroing maintenance ticks.
MAINT_EVERY = 10

#: Lifecycle schedule as fractions of the request stream.
WIPE_AT, BOOTSTRAP_AT = 0.25, 0.45
FLIP_AT, FLIP_END = 0.60, 0.80


def _phase(i: int, total: int) -> str:
    if i < int(total * WIPE_AT):
        return "baseline"
    if i < int(total * BOOTSTRAP_AT):
        return "wiped-window"
    if i < int(total * FLIP_AT):
        return "bootstrapped"
    if i < int(total * FLIP_END):
        return "corruption-window"
    return "recovered"


PHASES = (
    "baseline",
    "wiped-window",
    "bootstrapped",
    "corruption-window",
    "recovered",
)


def _p(samples: list, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def run(
    scale: float = 1.0, seed: int = 31, requests: Optional[int] = None
) -> FigureResult:
    total_requests = (
        requests if requests is not None else max(80, int(BASE_REQUESTS * scale))
    )
    rng = random.Random(f"{seed}:durability")
    clock = SimClock()
    schema = synthetic_schema(100)
    warehouse = ReplicatedWarehouse(
        schema,
        SHARDS,
        clock,
        replication=REPLICATION,
        records_per_node=RECORDS_PER_NODE,
    )
    total = SHARDS * RECORDS_PER_NODE
    base = [(i * 2, f"rec-{i}") for i in range(total)]
    warehouse.bulk_load(base)
    model = ModelTable(schema, base)
    universe = 2 * total

    def apply_one(tag: str) -> None:
        """One replicated update, acknowledged to the fault-free oracle."""
        state = model.snapshot(2**62)
        live = sorted(state)
        ts = warehouse.oracle.next()
        roll = rng.random()
        if roll < 0.2:
            key = rng.randrange(1, universe, 2)  # odd keys stay insertable
            if key in state:
                update = UpdateRecord(
                    ts, key, UpdateType.MODIFY, {"payload": tag}
                )
            else:
                update = UpdateRecord(ts, key, UpdateType.INSERT, (key, tag))
        elif roll < 0.35 and live:
            update = UpdateRecord(ts, rng.choice(live), UpdateType.DELETE, None)
        else:
            update = UpdateRecord(
                ts, rng.choice(live), UpdateType.MODIFY, {"payload": tag}
            )
        warehouse.shards[warehouse.route(update.key)].apply(update)
        model.record(update)

    def primary_wal_bytes() -> int:
        return sum(
            shard.primary.wal.live_bytes
            for shard in warehouse.shards
            if shard.primary.wal is not None
        )

    for i in range(WARMUP_UPDATES):
        apply_one(f"warm-{i}")
    warehouse.flush_all()
    # Checkpoint away the warmup WAL so the serving-time measurement
    # starts from a truncated baseline.
    warehouse.maintenance(force_checkpoint=True)
    reclaimed = 0.0

    queue = RepairQueue(scope="durability")
    backend = ReplicatedBackend(
        warehouse, scope="durability", repair_queue=queue
    )
    router = RequestRouter(backend, scope="durability", keep_records=True)

    latencies: dict[str, list] = {}
    counts: dict[str, dict] = {}
    wrong_answers = 0
    max_wal = primary_wal_bytes()
    appended = float(max_wal)
    last_wal = max_wal
    for i in range(total_requests):
        if i and i % MAINT_EVERY == 0:
            warehouse.flush_all()
            for entry in warehouse.maintenance(force_checkpoint=True).values():
                reclaimed += entry.get("reclaimed_bytes", 0)
        if len(queue):
            # Background repair tick: drain read-repair intents through
            # one anti-entropy pass per implicated shard.
            warehouse.run_repairs(queue)
        if i == int(total_requests * WIPE_AT):
            warehouse.wipe_replica(0, 1)
        if i == int(total_requests * BOOTSTRAP_AT):
            warehouse.bootstrap_replica(0, 1)
        if i == int(total_requests * FLIP_AT):
            victim = warehouse.shards[1].primary.masm
            run_ = victim.runs[0]
            flip_at = run_.block_size // 2
            byte = run_.file.read(flip_at, 1)[0]
            run_.file.write(flip_at, bytes([byte ^ 0xFF]))
            victim.block_cache.invalidate_run(run_.name)
        for j in range(UPDATES_PER_REQUEST):
            apply_one(f"u{i}.{j}")
        wal_now = primary_wal_bytes()
        # Live bytes only ever move by appends (up) or truncation (down);
        # cumulative appends = positive deltas + what truncation reclaimed.
        appended += max(0, wal_now - last_wal)
        last_wal = wal_now
        max_wal = max(max_wal, wal_now)
        lo = rng.randrange(universe)
        hi = lo + rng.randrange(150, 600)
        phase = _phase(i, total_requests)
        tally = counts.setdefault(phase, {"ok": 0, "failed": 0, "wrong": 0})
        request = QueryRequest(
            tenant="churn",
            session=0,
            seq=i,
            begin_key=lo,
            end_key=hi,
            arrival=clock.now,
        )
        try:
            result = router.execute(request)
        except ReproError:
            tally["failed"] += 1
            continue
        expected = tuple(model.snapshot_records(result.query_ts, lo, hi))
        if result.records != expected:
            tally["wrong"] += 1
            wrong_answers += 1
        else:
            tally["ok"] += 1
        latencies.setdefault(phase, []).append(result.latency_seconds)

    # Final background passes: anything still queued gets repaired, and a
    # last scrub proves no silent damage is left anywhere in the fleet.
    if len(queue):
        warehouse.run_repairs(queue)
    final_scrub = warehouse.anti_entropy()
    unrepaired = sum(len(r["unrepaired"]) for r in final_scrub.values())
    appended += reclaimed

    registry = get_registry()

    def counter(name: str) -> float:
        return float(registry.counter(name).value)

    result = FigureResult(
        figure="Durability under churn",
        title=(
            "3-way replicated serving through checkpointed WAL truncation, "
            "a wipe + snapshot bootstrap, and bit-flip read-repair"
        ),
        row_label="phase",
        columns=[
            "requests",
            "ok",
            "failed",
            "wrong",
            "p50 (ms)",
            "p99 (ms)",
            "success_rate",
            "max_wal_kb",
            "appended_kb",
            "wal_bound_ratio",
            "checkpoints",
            "bootstraps",
            "repairs",
            "repairs_scheduled",
            "failovers",
            "unrepaired",
        ],
    )
    for phase in PHASES:
        tally = counts.get(phase, {"ok": 0, "failed": 0, "wrong": 0})
        samples = latencies.get(phase, [])
        attempts = tally["ok"] + tally["failed"] + tally["wrong"]
        result.add_row(
            phase,
            **{
                "requests": float(attempts),
                "ok": float(tally["ok"]),
                "failed": float(tally["failed"]),
                "wrong": float(tally["wrong"]),
                "p50 (ms)": _p(samples, 0.50) * 1e3,
                "p99 (ms)": _p(samples, 0.99) * 1e3,
                "success_rate": tally["ok"] / max(attempts, 1),
            },
        )
    all_ok = sum(t["ok"] for t in counts.values())
    all_attempts = sum(
        t["ok"] + t["failed"] + t["wrong"] for t in counts.values()
    )
    result.add_row(
        "all",
        **{
            "requests": float(all_attempts),
            "ok": float(all_ok),
            "failed": float(sum(t["failed"] for t in counts.values())),
            "wrong": float(wrong_answers),
            "success_rate": all_ok / max(all_attempts, 1),
            "max_wal_kb": max_wal / 1024.0,
            "appended_kb": appended / 1024.0,
            "wal_bound_ratio": max_wal / max(appended, 1.0),
            "checkpoints": counter("replication.checkpoints"),
            "bootstraps": counter("replication.bootstraps"),
            "repairs": counter("replication.repairs"),
            "repairs_scheduled": counter("durability.repairs.scheduled"),
            "failovers": counter("durability.read_failovers"),
            "unrepaired": float(unrepaired),
        },
    )
    result.note(
        f"{total_requests} requests over {SHARDS} shards x {REPLICATION} "
        f"replicas; checkpoint+truncate every {MAINT_EVERY} requests; "
        f"shard0.r1 wiped at {WIPE_AT:.0%} and snapshot-bootstrapped at "
        f"{BOOTSTRAP_AT:.0%}; shard1 primary's run bit-flipped at "
        f"{FLIP_AT:.0%}; every response byte-compared to the fault-free "
        f"oracle at its snapshot ts"
    )
    result.note(
        f"wrong answers: {wrong_answers}; live WAL peaked at "
        f"{max_wal / 1024:.0f} KB against {appended / 1024:.0f} KB ever "
        f"appended ({max_wal / max(appended, 1.0):.0%} — flat, not linear); "
        f"final replica states: "
        + ", ".join(
            f"{k}={v}" for k, v in sorted(warehouse.replica_report().items())
        )
    )
    return result
