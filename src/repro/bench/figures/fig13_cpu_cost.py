"""Figure 13: range scan and MaSM performance under injected CPU cost.

The paper injects 0.5-2.5 us of CPU work per retrieved record into a 10 GB
range scan: execution time stays flat while the scan is I/O bound, turns
linear once it becomes CPU bound (past ~1.5 us/record), and — the point of
the figure — MaSM is indistinguishable from the pure scan everywhere,
because merging cached updates overlaps with (and is dwarfed by) the scan.
"""

from __future__ import annotations

import random

from repro.bench.figures.common import build_rig, fill_cache, make_masm, random_range
from repro.bench.harness import FigureResult
from repro.util.units import US

INJECTED_COSTS_US = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]

#: The paper's 10 GB range out of 100 GB: 10% of the table.
RANGE_FRACTION = 0.10


def run(scale: float = 1.0, seed: int = 13) -> FigureResult:
    result = FigureResult(
        figure="Figure 13",
        title="Range scan vs MaSM with injected CPU cost per record "
        "(execution time, milliseconds of simulated time)",
        row_label="injected us/record",
        columns=["scan w/o updates", "MaSM"],
    )
    rng = random.Random(seed)
    rig = build_rig(scale=scale, seed=seed)
    masm = make_masm(rig)
    fill_cache(masm, rig, fraction=0.5, seed=seed)
    size = int(rig.table.data_bytes * RANGE_FRACTION)
    begin, end = random_range(rig, size, rng)

    def scan_with_cost(source_fn, cost_us: float) -> float:
        def work() -> None:
            count = 0
            for _ in source_fn():
                count += 1
            rig.cpu.charge(count * cost_us * US)

        return rig.measure(work).elapsed

    for cost in INJECTED_COSTS_US:
        t_scan = scan_with_cost(lambda: rig.table.range_scan(begin, end), cost)
        t_masm = scan_with_cost(lambda: masm.range_scan(begin, end), cost)
        result.add_row(
            f"{cost:.1f}",
            **{"scan w/o updates": t_scan * 1000, "MaSM": t_masm * 1000},
        )
    result.note(
        "flat while I/O bound, linear once CPU bound (~1.5us/record at this "
        "scale too, since both time axes scale together); MaSM tracks the "
        "pure scan throughout, as in the paper"
    )
    return result
