"""Figure 13: range scan and MaSM performance under injected CPU cost.

The paper injects 0.5-2.5 us of CPU work per retrieved record into a 10 GB
range scan: execution time stays flat while the scan is I/O bound, turns
linear once it becomes CPU bound (past ~1.5 us/record), and — the point of
the figure — MaSM is indistinguishable from the pure scan everywhere,
because merging cached updates overlaps with (and is dwarfed by) the scan.
"""

from __future__ import annotations

import random

from repro.bench.figures.common import build_rig, fill_cache, make_masm, random_range
from repro.bench.harness import FigureResult
from repro.util.units import US

INJECTED_COSTS_US = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]

#: The paper's 10 GB range out of 100 GB: 10% of the table.
RANGE_FRACTION = 0.10


def run(scale: float = 1.0, seed: int = 13) -> FigureResult:
    result = FigureResult(
        figure="Figure 13",
        title="Range scan vs MaSM with injected CPU cost per record "
        "(execution time, milliseconds of simulated time)",
        row_label="injected us/record",
        columns=["scan w/o updates", "MaSM"],
    )
    rng = random.Random(seed)
    rig = build_rig(scale=scale, seed=seed)
    masm = make_masm(rig)
    fill_cache(masm, rig, fraction=0.5, seed=seed)
    size = int(rig.table.data_bytes * RANGE_FRACTION)
    begin, end = random_range(rig, size, rng)

    def scan_with_cost(source_fn, cost_us: float) -> float:
        def work() -> None:
            count = 0
            for _ in source_fn():
                count += 1
            rig.cpu.charge(count * cost_us * US, kind="injected")

        return rig.measure(work).elapsed

    # Attribute MaSM's CPU to cost classes across all its scans: the scan
    # class (retrieving base records) must dwarf the merge-side classes
    # (merge + decode + combine) for the paper's "indistinguishable from a
    # pure scan" claim to hold mechanically.
    masm_classes: dict[str, float] = {}
    for cost in INJECTED_COSTS_US:
        t_scan = scan_with_cost(lambda: rig.table.range_scan(begin, end), cost)
        before = dict(rig.cpu.by_class)
        t_masm = scan_with_cost(lambda: masm.range_scan(begin, end), cost)
        for kind, total in rig.cpu.by_class.items():
            delta = total - before.get(kind, 0.0)
            if delta > 0:
                masm_classes[kind] = masm_classes.get(kind, 0.0) + delta
        result.add_row(
            f"{cost:.1f}",
            **{"scan w/o updates": t_scan * 1000, "MaSM": t_masm * 1000},
        )
    result.note(
        "flat while I/O bound, linear once CPU bound (~1.5us/record at this "
        "scale too, since both time axes scale together); MaSM tracks the "
        "pure scan throughout, as in the paper"
    )
    merge_side = sum(
        masm_classes.get(kind, 0.0) for kind in ("merge", "decode", "combine")
    )
    data_side = masm_classes.get("scan", 0.0) + masm_classes.get("injected", 0.0)
    breakdown = ", ".join(
        f"{kind} {seconds * 1000:.2f}ms"
        for kind, seconds in sorted(masm_classes.items())
    )
    if data_side > 0:
        result.note(
            f"MaSM CPU by cost class (summed over rows): {breakdown}; "
            f"merge-side classes are {merge_side / data_side:.1%} of the "
            "data-side (scan + injected) CPU"
        )
    return result
