"""Figure 1: migration overhead vs memory footprint (log-log).

The analytic curves come straight from the models of Section 3.7 /
:mod:`repro.core.theory` (prior art: overhead ∝ 1/memory; MaSM: ∝ 1/memory²,
normalized so prior art at 16 GB equals 1).  A measured miniature validates
the defining property of each curve: doubling memory halves the in-memory
scheme's migration count but quarters MaSM's migration frequency.
"""

from __future__ import annotations

from repro.baselines.memdiff import InMemoryDifferential
from repro.bench.harness import FigureResult
from repro.bench.figures.common import build_rig
from repro.core import theory
from repro.core.masm import MaSM, MaSMConfig
from repro.bench.figures.common import SSD_PAGE
from repro.util.units import GB, KB, MB, fmt_bytes
from repro.workloads.synthetic import SyntheticUpdateGenerator

#: The paper's x axis: memory buffer sizes from 1 MB to 16 GB.
MEMORY_POINTS = [
    1 * MB,
    4 * MB,
    16 * MB,
    64 * MB,
    256 * MB,
    1 * GB,
    4 * GB,
    16 * GB,
]


def run(scale: float = 0.25) -> FigureResult:
    result = FigureResult(
        figure="Figure 1",
        title="Migration overhead vs memory footprint (normalized to prior "
        "state-of-the-art at 16GB)",
        row_label="memory",
        columns=["state-of-the-art", "masm (alpha=1)", "masm (alpha=2)"],
    )
    for memory in MEMORY_POINTS:
        result.add_row(
            fmt_bytes(memory),
            **{
                "state-of-the-art": theory.inmemory_migration_overhead(memory),
                "masm (alpha=1)": theory.masm_migration_overhead(memory, alpha=1.0),
                "masm (alpha=2)": theory.masm_migration_overhead(memory, alpha=2.0),
            },
        )
    result.note(
        "log-log curves per Section 3.7: halving prior-art overhead needs 2x "
        "memory; halving MaSM overhead needs sqrt(2)x memory"
    )
    _measured_validation(result, scale)
    return result


def _measured_validation(result: FigureResult, scale: float) -> None:
    """Measure migration counts at a miniature scale for both schemes."""
    updates = int(40_000 * scale) + 2000

    def memdiff_migrations(memory_bytes: int) -> int:
        rig = build_rig(scale=0.02)
        engine = InMemoryDifferential(
            rig.table, memory_bytes=memory_bytes, oracle=rig.oracle
        )
        gen = SyntheticUpdateGenerator(
            num_records=rig.table.row_count, seed=3, oracle=rig.oracle
        )
        for update in gen.stream(updates):
            engine.apply(update)
        return engine.migrations

    def masm_migrations(memory_factor: float) -> int:
        rig = build_rig(scale=0.05)
        # MaSM's cache (and so its migration frequency) is derived from its
        # memory: cache = M^2 pages where memory = alpha*M pages.
        base_m = 4
        m = int(base_m * memory_factor)
        cache = m * m * SSD_PAGE
        config = MaSMConfig(
            alpha=2.0,  # alpha=1 needs M >= 8; the scaling law is the same
            ssd_page_size=SSD_PAGE,
            cache_bytes=cache,
            auto_migrate=True,
            migration_threshold=0.9,
        )
        masm = MaSM(rig.table, rig.ssd_volume, config=config, oracle=rig.oracle)
        gen = SyntheticUpdateGenerator(
            num_records=rig.table.row_count, seed=3, oracle=rig.oracle
        )
        for update in gen.stream(updates):
            masm.apply(update)
        return masm.stats.migrations

    small, large = memdiff_migrations(4 * KB), memdiff_migrations(8 * KB)
    result.note(
        f"measured (in-memory diff): 2x memory -> migrations {small} vs "
        f"{large} (~{small / max(1, large):.1f}x fewer)"
    )
    m_small, m_large = masm_migrations(1.0), masm_migrations(2.0)
    result.note(
        f"measured (MaSM): 2x memory -> migrations {m_small} vs {m_large} "
        f"(~{m_small / max(1, m_large):.1f}x fewer; theory: 4x)"
    )
