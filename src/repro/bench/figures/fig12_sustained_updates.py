"""Figure 12: sustained update throughput.

Five bars, as in the paper: raw disk random writes; conventional in-place
updates; and MaSM with three SSD cache sizes (x, 2x, 4x — the paper's 2, 4
and 8 GB).  For MaSM the updates arrive as fast as possible with a 50%
migration threshold, so in the steady state every table scan migrates half
the cache while the other half fills — the sustained rate is bounded by
migration, and doubling the cache doubles it.

Expected shape: MaSM orders of magnitude above in-place; 2x cache -> 2x rate.
"""

from __future__ import annotations

import random

from repro.baselines.inplace import InPlaceUpdater
from repro.bench.figures.common import (
    COARSE_BLOCK,
    SSD_PAGE,
    build_rig,
    clamped_alpha,
    safe_rate,
)
from repro.bench.harness import FigureResult
from repro.core.masm import MaSM, MaSMConfig
from repro.storage.iosched import OverlapWindow
from repro.util.units import fmt_bytes
from repro.workloads.synthetic import SyntheticUpdateGenerator, UpdateMix


def run(scale: float = 1.0, seed: int = 5) -> FigureResult:
    result = FigureResult(
        figure="Figure 12",
        title="Sustained updates per second (simulated time)",
        row_label="scheme",
        columns=["updates/sec"],
    )

    # --- raw random writes --------------------------------------------------
    rig = build_rig(scale=scale, seed=seed)
    rng = random.Random(seed)
    n = 300
    window = OverlapWindow({"disk": rig.disk})
    with window:
        for _ in range(n):
            offset = rng.randrange(0, rig.disk.capacity - 4096)
            rig.disk.write(offset, b"w" * 4096)
    result.add_row("random writes", **{"updates/sec": safe_rate(n, window.elapsed)})

    # --- conventional in-place updates --------------------------------------
    rig = build_rig(scale=scale, seed=seed)
    updater = InPlaceUpdater(rig.table, oracle=rig.oracle)
    generator = SyntheticUpdateGenerator(
        num_records=rig.table.row_count,
        seed=seed,
        oracle=rig.oracle,
        mix=UpdateMix(insert=0.2, delete=0.2, modify=0.6),
    )
    window = OverlapWindow({"disk": rig.disk})
    with window:
        for update in generator.stream(n):
            updater.apply(update, lenient=True)
    result.add_row(
        "in-place updates", **{"updates/sec": safe_rate(n, window.elapsed)}
    )

    # --- MaSM at three cache sizes ------------------------------------------
    base_cache = None
    for factor in (1, 2, 4):
        rig = build_rig(scale=scale, seed=seed)
        cache = rig.cache_bytes * factor
        config = MaSMConfig(
            alpha=clamped_alpha(cache, 1.0),
            ssd_page_size=SSD_PAGE,
            block_size=COARSE_BLOCK,
            cache_bytes=cache,
            auto_migrate=True,
            migration_threshold=0.5,
        )
        masm = MaSM(rig.table, rig.ssd_volume, config=config, oracle=rig.oracle)
        generator = SyntheticUpdateGenerator(
            num_records=rig.table.row_count, seed=seed, oracle=rig.oracle
        )
        # Warm up to steady state (fill to the threshold and migrate once),
        # then measure whole fill+migrate cycles.
        while masm.stats.migrations < 1:
            masm.apply(generator.next_update())
        window = OverlapWindow({"disk": rig.disk, "ssd": rig.ssd}, rig.cpu)
        applied = 0
        with window:
            target_migrations = masm.stats.migrations + 2
            while masm.stats.migrations < target_migrations:
                masm.apply(generator.next_update())
                applied += 1
        rate = safe_rate(applied, window.elapsed)
        label = f"MaSM {fmt_bytes(cache)} cache"
        result.add_row(label, **{"updates/sec": rate})
        if base_cache is None:
            base_cache = rate
    result.note(
        "paper: 68 random writes/s, 48 in-place upd/s, MaSM 3.5k/6.6k/12.5k "
        "for 2/4/8GB; doubling the SSD roughly doubles the sustained rate"
    )
    return result
