"""Serving at scale: thousands of concurrent sessions on one warehouse.

The MaSM paper measures one query at a time; a warehouse front door serves
thousands of concurrent sessions whose scans all ride the same cached
updates.  This driver stands up the full serving stack — a sharded
warehouse on one simulated timeline, a quota-gated front door, and a
session population mixing open-loop Poisson, open-loop bursty and
closed-loop think-time clients across three tenant classes — and reports
the per-tenant latency surface (p50/p99/p999), admission outcomes and
aggregate throughput.

Everything runs on virtual time, so the whole run is a pure function of
``(scale, seed)``: the benchmark suite runs it twice and asserts the
exported metrics are byte-identical.  The default scale drives ~2,400
concurrent sessions; ``--scale`` trades session count for wall time.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.bench.harness import FigureResult
from repro.core.sharding import ShardedWarehouse
from repro.engine.record import synthetic_schema
from repro.server import (
    ArrivalKind,
    FrontDoor,
    QuotaPolicy,
    SessionManager,
    SessionMode,
    SessionSpec,
    TenantQuota,
    WarehouseBackend,
)
from repro.storage.clock import SimClock
from repro.workloads.synthetic import SyntheticUpdateGenerator

#: Sessions at scale=1.0 (the acceptance floor is 2,000 concurrent).
BASE_SESSIONS = 2_400
#: Warehouse sizing: small shards so a run stays minutes, not hours — the
#: serving experiment stresses concurrency, not table size.
NODES = 4
RECORDS_PER_NODE = 4_000
#: Updates absorbed before serving starts, so every scan really merges
#: cached update runs (scans of a pristine heap would flatter latency).
WARMUP_UPDATES = 1_500


def build_warehouse(seed: int) -> ShardedWarehouse:
    """A served warehouse: shared timeline, warmed update cache."""
    clock = SimClock()
    warehouse = ShardedWarehouse(
        synthetic_schema(100),
        num_nodes=NODES,
        records_per_node=RECORDS_PER_NODE,
        clock=clock,
    )
    total = NODES * RECORDS_PER_NODE
    warehouse.bulk_load((i * 2, f"rec-{i}") for i in range(total))
    generator = SyntheticUpdateGenerator(
        num_records=total, seed=seed, oracle=warehouse.oracle
    )
    for _ in range(WARMUP_UPDATES):
        update = generator.next_update()
        node = warehouse.nodes[warehouse.route(update.key)]
        node.masm.apply(update)
    for node in warehouse.nodes:
        node.masm.flush_buffer()
    return warehouse


def tenant_specs(sessions: int, requests: int) -> list[SessionSpec]:
    """Three tenant classes splitting the session population 50/30/20.

    Per-session rates are low — thousands of mostly-idle sessions, like a
    real warehouse front door — sized so the aggregate offered load sits
    around 75% of the single router's ~45 queries/sec service capacity.
    Queueing is visible in the tails but the system is stable; only the
    batch class's bursts herd hard enough to hit their quota.
    """
    standard = max(1, sessions * 5 // 10)
    batch = max(1, sessions * 3 // 10)
    gold = max(1, sessions - standard - batch)
    return [
        SessionSpec(
            tenant="standard",
            sessions=standard,
            requests=requests,
            mode=SessionMode.OPEN,
            rate=0.01,
            arrivals=ArrivalKind.POISSON,
            range_records=24,
        ),
        SessionSpec(
            tenant="batch",
            sessions=batch,
            requests=requests,
            mode=SessionMode.OPEN,
            rate=4.0,
            arrivals=ArrivalKind.BURSTY,
            burst_len=4,
            idle_seconds=90.0,
            range_records=48,
        ),
        SessionSpec(
            tenant="gold",
            sessions=gold,
            requests=requests,
            mode=SessionMode.CLOSED,
            think_seconds=60.0,
            range_records=16,
        ),
    ]


def default_quotas() -> dict:
    """Roomy DELAY quotas for the interactive classes; the batch class is
    metered hard (SHED) so its burst herds cannot monopolize the door."""
    return {
        "standard": TenantQuota(rate=100.0, burst=64.0),
        "gold": TenantQuota(rate=100.0, burst=64.0),
        # Below the batch class's ~16 q/s aggregate arrival rate, so the
        # meter engages and sheds the excess above the contracted rate.
        "batch": TenantQuota(
            rate=10.0, burst=16.0, policy=QuotaPolicy.SHED
        ),
    }


def run(
    scale: float = 1.0,
    seed: int = 11,
    sessions: Optional[int] = None,
    requests: int = 2,
) -> FigureResult:
    result = FigureResult(
        figure="Serving scale",
        title="Multi-tenant front door under thousands of concurrent sessions",
        row_label="tenant",
        columns=[
            "sessions",
            "requests",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "delayed",
            "shed",
            "queries/sec",
        ],
    )
    population = sessions if sessions is not None else max(30, int(BASE_SESSIONS * scale))
    warehouse = build_warehouse(seed)
    frontdoor = FrontDoor(
        WarehouseBackend(warehouse), quotas=default_quotas(), scope="serving"
    )
    specs = tenant_specs(population, requests)
    manager = SessionManager(
        frontdoor,
        specs,
        key_universe=2 * NODES * RECORDS_PER_NODE,
        seed=seed,
    )
    # The per-request fan-out would emit far more spans than the tracer's
    # cap; the latency surfaces live in the registry, so trace only the
    # warmup and keep the exported artifact small.
    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = False
    try:
        stats = manager.run()
    finally:
        tracer.enabled = was_enabled

    by_tenant = {spec.tenant: spec for spec in specs}
    report = frontdoor.tenant_report()
    for tenant in sorted(report):
        surface = report[tenant]
        result.add_row(
            tenant,
            **{
                "sessions": float(by_tenant[tenant].sessions),
                "requests": float(surface["requests"]),
                "p50 (ms)": surface["latency_p50_ms"],
                "p99 (ms)": surface["latency_p99_ms"],
                "p999 (ms)": surface["latency_p999_ms"],
                "delayed": float(surface.get("delayed", 0)),
                "shed": float(surface.get("shed", 0)),
            },
        )
    elapsed = max(stats.elapsed, 1e-12)
    result.add_row(
        "all",
        **{
            "sessions": float(manager.num_sessions),
            "requests": float(stats.executed),
            "shed": float(stats.shed),
            "delayed": float(stats.reschedules),
            "queries/sec": stats.executed / elapsed,
        },
    )
    result.note(
        f"{manager.num_sessions} concurrent sessions, {requests} requests "
        f"each, over {NODES}x{RECORDS_PER_NODE}-record shards with "
        f"{WARMUP_UPDATES} cached updates; all latencies are simulated "
        f"(virtual clock), so the run is deterministic in (scale, seed)"
    )
    return result
