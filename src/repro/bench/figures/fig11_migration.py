"""Figure 11: MaSM update migration cost.

A full table scan versus the same scan performing in-place migration of a
nearly full update cache.  The paper measures 2.3x — the migration adds the
sequential write-back (and the read/write head alternation) on top of the
sequential read.
"""

from __future__ import annotations

from repro.bench.figures.common import build_rig, fill_cache, make_masm
from repro.bench.harness import FigureResult


def run(scale: float = 1.0, seed: int = 3) -> FigureResult:
    result = FigureResult(
        figure="Figure 11",
        title="MaSM update migration (normalized to a pure table scan)",
        row_label="operation",
        columns=["normalized time"],
    )
    rig = build_rig(scale=scale, seed=seed)
    masm = make_masm(rig)
    fill_cache(masm, rig, fraction=0.99, seed=seed)

    begin, end = rig.table.full_key_range()
    t_scan = rig.measure(
        lambda: rig.drain(rig.table.range_scan(begin, end))
    ).elapsed

    breakdown = rig.measure(masm.migrate)
    t_migrate = breakdown.elapsed

    result.add_row("full scan", **{"normalized time": 1.0})
    result.add_row("scan w/ migration", **{"normalized time": t_migrate / t_scan})
    stats_disk = breakdown.stats("disk")
    result.note(
        f"migration read {stats_disk.bytes_read}B and wrote "
        f"{stats_disk.bytes_written}B sequentially in place "
        f"({stats_disk.rand_writes} random writes); paper measures 2.3x"
    )
    result.note(
        f"runs migrated: {masm.stats.migrations} migration retired the "
        "whole cache; updates now live in the main data"
    )
    return result
