"""Ablations of MaSM design choices called out in DESIGN.md.

* **Materialization** (Section 3.1): materialized, reusable sorted runs vs
  re-sorting the cached updates for every query.  Without materialization,
  each query must read the whole cache and regenerate sorted runs before it
  can merge — SSD traffic MaSM amortizes across many queries.  (At the
  scaled-down sizes the extra SSD work hides under the disk scan in the
  overlap model, so the table reports the SSD bytes each design moves per
  query — the quantity that stops overlapping at full scale.)
* **Skew handling** (Section 3.5): merging duplicate updates at flush time
  under zipfian workloads shrinks the cache footprint per ingested update.
"""

from __future__ import annotations

import random

from repro.bench.figures.common import (
    build_rig,
    fill_cache,
    make_masm,
    random_range,
)
from repro.bench.harness import FigureResult
from repro.errors import UpdateCacheFullError
from repro.util.units import KB
from repro.workloads.synthetic import SyntheticUpdateGenerator, UpdateMix


def run_materialization(
    scale: float = 0.5, seed: int = 31, queries: int = 5
) -> FigureResult:
    result = FigureResult(
        figure="Ablation: materialization",
        title="Materialized sorted runs vs re-sorting per query "
        "(SSD bytes moved per 64KB-range query)",
        row_label="query #",
        columns=["masm (materialized)", "resort per query"],
    )
    rng = random.Random(seed)
    rig = build_rig(scale=scale, seed=seed)
    masm = make_masm(rig)
    applied = fill_cache(masm, rig, fraction=0.5, seed=seed)
    rig.drain(masm.range_scan(0, 4))  # settle the run budget
    cache_bytes = masm.cached_run_bytes
    size = 64 * KB

    for i in range(queries):
        begin, end = random_range(rig, size, rng)
        breakdown = rig.measure(lambda: rig.drain(masm.range_scan(begin, end)))
        masm_ssd = breakdown.stats("ssd").bytes_total
        # Without materialization the query reads every cached update and
        # rewrites it as sorted runs before the same merge can start.
        resort_ssd = 2 * cache_bytes + masm_ssd
        result.add_row(
            str(i + 1),
            **{
                "masm (materialized)": float(masm_ssd),
                "resort per query": float(resort_ssd),
            },
        )
    result.note(
        f"{applied} cached updates ({cache_bytes} run bytes); MaSM reads "
        "only the run blocks its run indexes select — re-sorting pays the "
        "full cache read + write on every query, which the materialized "
        "runs amortize (Section 3.1)"
    )
    return result


def run_skew(scale: float = 0.5, seed: int = 37, updates: int = 20_000) -> FigureResult:
    result = FigureResult(
        figure="Ablation: skew",
        title="Zipfian updates with and without duplicate merging at flush "
        "(Section 3.5)",
        row_label="configuration",
        columns=["cache bytes used", "updates stored", "duplicates merged"],
    )

    def ingest(merge: bool, budget: int) -> tuple:
        rig = build_rig(scale=scale, seed=seed)
        masm = make_masm(rig, merge_duplicates=merge)
        gen = SyntheticUpdateGenerator(
            num_records=rig.table.row_count,
            seed=seed,
            distribution="zipf",
            zipf_s=1.3,
            mix=UpdateMix(insert=0.1, delete=0.1, modify=0.8),
            oracle=rig.oracle,
        )
        applied = 0
        try:
            for update in gen.stream(budget):
                masm.apply(update)
                applied += 1
            masm.flush_buffer()
        except UpdateCacheFullError:
            pass
        stored = sum(run.count for run in masm.runs)
        return applied, masm, stored

    # Size the stream so the duplicate-keeping configuration just fits.
    applied, keep_masm, keep_stored = ingest(merge=False, budget=updates)
    _, merge_masm, merge_stored = ingest(merge=True, budget=applied)

    for label, masm, stored in [
        ("keep duplicates", keep_masm, keep_stored),
        ("merge duplicates", merge_masm, merge_stored),
    ]:
        result.add_row(
            label,
            **{
                "cache bytes used": float(masm.cached_run_bytes),
                "updates stored": float(stored),
                "duplicates merged": float(masm.stats.duplicates_merged),
            },
        )
    result.note(
        f"same {applied}-update zipfian stream: merging duplicates stores "
        "fewer records and bytes, postponing migration (Section 3.5); "
        "correctness holds because no concurrent scan separates the merged "
        "timestamps"
    )
    return result
