"""Theorems 3.2/3.3: the memory-footprint vs SSD-writes spectrum of MaSM-αM.

Sweeps alpha from 1 to 2, measuring the engine's actual SSD writes per
ingested update under merge pressure against the closed form 2 - 0.25*α²
(1.75 + 2/M exactly at alpha = 1).  Also reports each configuration's memory
footprint, exhibiting the trade-off the theorems describe.
"""

from __future__ import annotations

from repro.bench.figures.common import build_rig, make_masm
from repro.bench.harness import FigureResult
from repro.core import theory
from repro.workloads.synthetic import SyntheticUpdateGenerator

ALPHAS = [1.0, 1.2, 1.4, 1.7, 2.0]


def run(scale: float = 0.5, seed: int = 29) -> FigureResult:
    result = FigureResult(
        figure="Theorems 3.2/3.3",
        title="SSD writes per update vs memory footprint (MaSM-alphaM)",
        row_label="alpha",
        columns=["memory pages", "theory writes/upd", "measured writes/upd"],
    )
    for alpha in ALPHAS:
        rig = build_rig(scale=scale, seed=seed)
        masm = make_masm(rig, alpha=alpha)
        gen = SyntheticUpdateGenerator(
            num_records=rig.table.row_count, seed=seed, oracle=rig.oracle
        )
        # Keep a scan standing so the update buffer never steals query pages
        # (the worst case of the theorems assumes minimal 1-pass runs), and
        # trigger the budget-driven merging with periodic scans.
        standing = masm.range_scan(0, 2)
        next(standing, None)
        target = int(masm.cache_bytes * 0.9)
        while masm.cached_run_bytes + masm.buffer.used_bytes < target:
            masm.apply(gen.next_update())
            if len(masm.runs) > masm.params.query_pages:
                rig.drain(masm.range_scan(0, 2))
        rig.drain(standing)
        result.add_row(
            f"{alpha:.1f}",
            **{
                "memory pages": float(masm.params.total_memory_pages),
                "theory writes/upd": theory.masm_writes_per_update(
                    alpha, M=masm.params.M
                ),
                "measured writes/upd": masm.stats.ssd_writes_per_update,
            },
        )
    result.note(
        "theory: alpha=2 writes each update once; alpha=1 about 1.75 times; "
        "measured values track the bound within small-M quantization and "
        "fall with alpha (values below 1.0 reflect updates still buffered)"
    )
    return result
