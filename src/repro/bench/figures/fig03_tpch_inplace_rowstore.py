"""Figure 3: TPC-H queries with random in-place updates on a row store.

Three bars per query, as in the paper: the query alone; the query with
online in-place updates running concurrently; and the sum of the query alone
plus applying the same number of updates offline.  The gap between the last
two is the *interference* (disk head contention), which the paper measures
at ~1.6x on average.

Expected shape: with-updates 1.5-4.1x (avg ~2.2x), consistently above
query+offline-updates.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.baselines.inplace import InPlaceUpdater
from repro.bench.harness import FigureResult, geometric_mean
from repro.storage.disk import SimulatedDisk
from repro.storage.file import StorageVolume
from repro.storage.iosched import OverlapWindow
from repro.workloads.tpch import (
    QUERY_IDS,
    QUERY_SCANS,
    TPCHInstance,
    generate_tpch,
    tpch_update_stream,
)

#: In-place updates serviced per scan I/O chunk while a query runs.
UPDATE_RATE = 0.6


def build_instance(scale: float, seed: int = 1) -> TPCHInstance:
    """Generate the warehouse on a disk sized ~4x the data.

    Sizing the device relative to the data keeps seek distances realistic:
    on the paper's testbed the 30GB database spanned a large fraction of the
    200GB disk, so random updates moved the head across real distances.
    """
    rows = int(6000 * scale) * 150  # lineitem rows * bytes, roughly
    capacity = max(64 * 1024 * 1024, 8 * rows)
    volume = StorageVolume(SimulatedDisk(capacity=capacity))
    return generate_tpch(volume, scale=scale, seed=seed)


def replay_with_inplace_updates(
    instance: TPCHInstance,
    query_id: int,
    stream: Iterator,
    updates_per_chunk: float,
) -> int:
    """Replay one query's scans, servicing updates between scan chunks.

    Updates go to whichever table they target (orders or lineitem) — the
    interference is on the shared disk regardless of which table the query
    is scanning.
    """
    updaters = {
        name: InPlaceUpdater(instance.tables[name], oracle=instance.oracle)
        for name in ("orders", "lineitem")
    }
    applied = 0

    def service(count: float) -> None:
        nonlocal applied
        whole = int(count)
        for _ in range(whole):
            item = next(stream, None)
            if item is None:
                return
            table_name, update = item
            updaters[table_name].apply(update, lenient=True)
            applied += 1

    # Queueing delay (see Figure 9): one in-flight update ahead of the scan.
    service(1)
    for table_name, fraction in QUERY_SCANS[query_id]:
        table = instance.tables[table_name]
        begin, end = table.full_key_range()
        if fraction < 1.0 and not table.index.is_empty:
            entries = table.index.entries()
            cut = max(1, int(len(entries) * fraction))
            if cut < len(entries):
                end = entries[cut][0] - 1
        pages = 0
        credit = 0.0
        for _page_no, _page in table.scan_page_range(begin, end):
            pages += 1
            if pages % table.heap.pages_per_chunk == 0:
                credit += updates_per_chunk
                if credit >= 1.0:
                    service(credit)
                    credit -= int(credit)
    return applied


def run(scale: float = 0.3, seed: int = 1) -> FigureResult:
    result = FigureResult(
        figure="Figure 3",
        title="TPC-H queries with random in-place updates on a row store "
        "(normalized to the query without updates)",
        row_label="query",
        columns=["no updates", "query w/ updates", "query only + update only"],
    )

    instance = build_instance(scale, seed)
    disk = instance.tables["orders"].heap.file.device
    stream = tpch_update_stream(instance, seed=seed + 1)

    slowdowns = []
    for qid in QUERY_IDS:
        # Bar 1: the query alone.
        window = OverlapWindow({"disk": disk})
        with window:
            from repro.workloads.tpch import replay_query

            replay_query(instance, qid)
        t_query = window.elapsed

        # Bar 2: the query with concurrent in-place updates.
        window = OverlapWindow({"disk": disk})
        with window:
            applied = replay_with_inplace_updates(instance, qid, stream, UPDATE_RATE)
        t_mixed = window.elapsed

        # Bar 3: the query alone plus the same updates applied offline.
        window = OverlapWindow({"disk": disk})
        with window:
            updaters = {
                name: InPlaceUpdater(instance.tables[name], oracle=instance.oracle)
                for name in ("orders", "lineitem")
            }
            for table_name, update in itertools.islice(stream, applied):
                updaters[table_name].apply(update, lenient=True)
        t_updates_alone = window.elapsed

        base = max(t_query, 1e-12)
        result.add_row(
            f"q{qid}",
            **{
                "no updates": 1.0,
                "query w/ updates": t_mixed / base,
                "query only + update only": (t_query + t_updates_alone) / base,
            },
        )
        slowdowns.append(t_mixed / base)
    result.note(
        f"avg slowdown {sum(slowdowns) / len(slowdowns):.2f}x "
        f"(paper: 2.2x avg, 1.5-4.1x range)"
    )
    result.note(
        f"geometric mean {geometric_mean(slowdowns):.2f}x; interference = "
        "bar2 minus bar3 (paper: 1.6x extra on average)"
    )
    return result
