"""Noisy-neighbor isolation: per-tenant quotas contain a flooding tenant.

Two phases over identical warehouses (same seed, same warmup):

* **solo** — the victim tenant runs its open-loop workload alone; its p99
  is the baseline the SLO is written against.
* **shared** — the same victim workload runs next to a flooding tenant
  whose open-loop arrival rate is far above its quota.  The flood is shed
  (or delayed) at the admission door *before* it can occupy the router, so
  the victim's latency surface should stay close to its solo baseline.

The acceptance bound (enforced by ``benchmarks/bench_serving.py`` and the
regression gate): victim p99 with the flooder present stays within 2x the
solo baseline, while the flooder shows a non-trivial shed count — i.e. the
quota did real work, it didn't just never trigger.
"""

from __future__ import annotations

from repro import obs
from repro.bench.figures.serving_scale import build_warehouse
from repro.bench.harness import FigureResult
from repro.server import (
    ArrivalKind,
    FrontDoor,
    QuotaPolicy,
    SessionManager,
    SessionMode,
    SessionSpec,
    TenantQuota,
    WarehouseBackend,
)

from repro.bench.figures.serving_scale import NODES, RECORDS_PER_NODE

VICTIM = "victim"
FLOODER = "flooder"


def _victim_spec(scale: float, requests: int) -> SessionSpec:
    # Offered load stays well under the router's service capacity at every
    # scale (the victim must be unsaturated solo for its baseline p99 to
    # mean anything): ~24 sessions x 0.5/s = 12 q/s at scale 1.0 against a
    # ~45 q/s single-router capacity.
    return SessionSpec(
        tenant=VICTIM,
        sessions=max(4, int(24 * scale)),
        requests=requests,
        mode=SessionMode.OPEN,
        rate=0.5,
        arrivals=ArrivalKind.POISSON,
        range_records=24,
    )


def _flooder_spec(scale: float, requests: int) -> SessionSpec:
    return SessionSpec(
        tenant=FLOODER,
        sessions=max(4, int(30 * scale)),
        requests=requests * 4,
        mode=SessionMode.OPEN,
        rate=20.0,
        arrivals=ArrivalKind.BURSTY,
        burst_len=8,
        idle_seconds=0.25,
        range_records=48,
    )


def _quotas() -> dict:
    return {
        # The victim's quota is roomy: it should essentially never meter.
        VICTIM: TenantQuota(rate=300.0, burst=64.0),
        # The flooder's sustainable rate is a small fraction of its arrival
        # rate and its burst is shallow, so even a full burst occupies the
        # router only briefly; everything over quota is shed immediately
        # (SHED) and never reaches the router at all.
        FLOODER: TenantQuota(rate=8.0, burst=4.0, policy=QuotaPolicy.SHED),
    }


def _phase(specs, seed: int, scope: str) -> dict:
    """Run one phase on a fresh warehouse; return its tenant report."""
    warehouse = build_warehouse(seed)
    frontdoor = FrontDoor(
        WarehouseBackend(warehouse), quotas=_quotas(), scope=scope
    )
    manager = SessionManager(
        frontdoor,
        specs,
        key_universe=2 * NODES * RECORDS_PER_NODE,
        seed=seed,
    )
    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = False
    try:
        manager.run()
    finally:
        tracer.enabled = was_enabled
    return frontdoor.tenant_report()


def run(scale: float = 1.0, seed: int = 23, requests: int = 6) -> FigureResult:
    result = FigureResult(
        figure="Noisy neighbor",
        title="Quota isolation: victim latency with and without a flooding tenant",
        row_label="tenant/phase",
        columns=[
            "requests",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "admitted",
            "shed",
            "p99 vs solo",
        ],
    )
    solo = _phase([_victim_spec(scale, requests)], seed, scope="nn.solo")
    shared = _phase(
        [_victim_spec(scale, requests), _flooder_spec(scale, requests)],
        seed,
        scope="nn.shared",
    )

    solo_victim = solo[VICTIM]
    baseline_p99 = max(solo_victim["latency_p99_ms"], 1e-9)

    def add(label: str, surface: dict) -> None:
        result.add_row(
            label,
            **{
                "requests": float(surface["requests"]),
                "p50 (ms)": surface["latency_p50_ms"],
                "p99 (ms)": surface["latency_p99_ms"],
                "p999 (ms)": surface["latency_p999_ms"],
                "admitted": float(surface.get("admitted", surface["requests"])),
                "shed": float(surface.get("shed", 0)),
                "p99 vs solo": surface["latency_p99_ms"] / baseline_p99,
            },
        )

    add("victim-solo", solo_victim)
    add("victim-shared", shared[VICTIM])
    add(FLOODER, shared[FLOODER])
    result.note(
        "flood arrivals far above the flooder's quota are shed at the "
        "admission door before they can occupy the router; the victim's "
        "p99-vs-solo ratio is the isolation metric (target: <= 2.0)"
    )
    return result
