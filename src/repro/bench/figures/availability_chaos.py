"""Availability under chaos: replica kills and brownouts during serving.

The robustness acceptance experiment for the replication subsystem: a
3-way replicated warehouse serves a deterministic stream of range queries
while chaos unfolds on the shared virtual timeline —

* **crash**: the primary replica of shard 0 is killed mid-run (a
  :class:`~repro.storage.faults.NodeFaultPlan` node crash, discovered by
  the next operation that touches it); the set fails over and the router's
  circuit breaker routes around the corpse.  The victim later rejoins via
  recover + catch-up.
* **brownout**: shard 1's primary is slow-degraded for a window; the
  router's EWMA hedge delay fires backup reads at the same snapshot and
  the backups win.

Every response is byte-compared against a fault-free :class:`ModelTable`
oracle at the request's pinned snapshot timestamp — failover and hedging
may change *where* rows come from, never *what* they are.  The figure
reports per-phase latency percentiles, the success rate, the wrong-answer
count (must be zero) and the chaos counters.  Virtual time makes the whole
run a pure function of ``(scale, seed)``; the benchmark suite runs it
twice and asserts byte-identical metrics.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.bench.harness import FigureResult
from repro.core.replication import ReplicatedWarehouse
from repro.core.update import UpdateRecord, UpdateType
from repro.engine.record import synthetic_schema
from repro.errors import ReproError
from repro.obs import get_registry
from repro.server import QueryRequest, ReplicatedBackend, RequestRouter
from repro.sim.model import ModelTable
from repro.storage.clock import SimClock
from repro.storage.faults import NodeFaultPlan

SHARDS = 2
REPLICATION = 3
RECORDS_PER_NODE = 1_200
#: Requests at scale=1.0; chaos landmarks are fractions of this stream.
BASE_REQUESTS = 240
#: Updates absorbed (and replicated) before serving starts, so scans merge
#: real cached runs on every replica.
WARMUP_UPDATES = 300
#: Updates interleaved between consecutive requests during serving.
UPDATES_PER_REQUEST = 2

#: Chaos schedule as fractions of the request stream: the crash window is
#: [CRASH_AT, REJOIN_AT) and the brownout window is [SLOW_AT, SLOW_END).
CRASH_AT, REJOIN_AT = 0.25, 0.50
SLOW_AT, SLOW_END = 0.65, 0.85
#: Virtual seconds a browned-out node adds to every operation it serves.
BROWNOUT_OP_SECONDS = 0.05


def _phase(i: int, total: int) -> str:
    if i < int(total * CRASH_AT):
        return "baseline"
    if i < int(total * REJOIN_AT):
        return "failover-window"
    if int(total * SLOW_AT) <= i < int(total * SLOW_END):
        return "brownout-window"
    return "recovered"


def _p(samples: list, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def run(
    scale: float = 1.0, seed: int = 23, requests: Optional[int] = None
) -> FigureResult:
    total_requests = (
        requests if requests is not None else max(80, int(BASE_REQUESTS * scale))
    )
    rng = random.Random(f"{seed}:availability")
    clock = SimClock()
    schema = synthetic_schema(100)
    crash_plan = NodeFaultPlan()
    slow_plan = NodeFaultPlan(slow_op_seconds=BROWNOUT_OP_SECONDS)
    warehouse = ReplicatedWarehouse(
        schema,
        SHARDS,
        clock,
        replication=REPLICATION,
        records_per_node=RECORDS_PER_NODE,
        node_faults={(0, 0): crash_plan, (1, 0): slow_plan},
    )
    total = SHARDS * RECORDS_PER_NODE
    base = [(i * 2, f"rec-{i}") for i in range(total)]
    warehouse.bulk_load(base)
    model = ModelTable(schema, base)
    universe = 2 * total

    def apply_one(tag: str) -> None:
        """One replicated update, acknowledged to the fault-free oracle."""
        state = model.snapshot(2**62)
        live = sorted(state)
        ts = warehouse.oracle.next()
        roll = rng.random()
        if roll < 0.2:
            key = rng.randrange(1, universe, 2)  # odd keys stay insertable
            if key in state:
                update = UpdateRecord(
                    ts, key, UpdateType.MODIFY, {"payload": tag}
                )
            else:
                update = UpdateRecord(
                    ts, key, UpdateType.INSERT, (key, tag)
                )
        elif roll < 0.35 and live:
            update = UpdateRecord(ts, rng.choice(live), UpdateType.DELETE, None)
        else:
            update = UpdateRecord(
                ts, rng.choice(live), UpdateType.MODIFY, {"payload": tag}
            )
        warehouse.shards[warehouse.route(update.key)].apply(update)
        model.record(update)

    for i in range(WARMUP_UPDATES):
        apply_one(f"warm-{i}")
    warehouse.flush_all()

    backend = ReplicatedBackend(warehouse, scope="availability")
    router = RequestRouter(backend, scope="availability", keep_records=True)

    latencies: dict[str, list] = {}
    counts: dict[str, dict] = {}
    wrong_answers = 0
    for i in range(total_requests):
        if i == int(total_requests * REJOIN_AT):
            warehouse.rejoin_replica(0, 0)
        if i == int(total_requests * SLOW_AT):
            slow_plan.slow_at = clock.now  # shard 1's primary browns out
        if i == int(total_requests * SLOW_END):
            slow_plan.slow_at = None
        for j in range(UPDATES_PER_REQUEST):
            apply_one(f"u{i}.{j}")
        if i == int(total_requests * CRASH_AT):
            # Shard 0's primary dies NOW — after this step's updates, so
            # the *router* is first to touch the corpse: its attempt fails
            # typed, the breaker records it, and the read fails over.
            crash_plan.crash_at = clock.now
        lo = rng.randrange(universe)
        hi = lo + rng.randrange(150, 600)
        phase = _phase(i, total_requests)
        tally = counts.setdefault(phase, {"ok": 0, "failed": 0, "wrong": 0})
        request = QueryRequest(
            tenant="chaos",
            session=0,
            seq=i,
            begin_key=lo,
            end_key=hi,
            arrival=clock.now,
        )
        try:
            result = router.execute(request)
        except ReproError:
            tally["failed"] += 1
            continue
        expected = tuple(model.snapshot_records(result.query_ts, lo, hi))
        if result.records != expected:
            tally["wrong"] += 1
            wrong_answers += 1
        else:
            tally["ok"] += 1
        latencies.setdefault(phase, []).append(result.latency_seconds)

    registry = get_registry()

    def counter(name: str) -> float:
        return float(registry.counter(f"availability.{name}").value)

    result = FigureResult(
        figure="Availability under chaos",
        title=(
            "3-way replicated serving through a primary kill, failover, "
            "rejoin and a brownout"
        ),
        row_label="phase",
        columns=[
            "requests",
            "ok",
            "failed",
            "wrong",
            "p50 (ms)",
            "p99 (ms)",
            "success_rate",
            "p99_vs_baseline",
            "failovers",
            "hedges",
            "hedge_wins",
        ],
    )
    baseline_p99 = _p(latencies.get("baseline", []), 0.99)
    for phase in ("baseline", "failover-window", "brownout-window", "recovered"):
        tally = counts.get(phase, {"ok": 0, "failed": 0, "wrong": 0})
        samples = latencies.get(phase, [])
        attempts = tally["ok"] + tally["failed"] + tally["wrong"]
        p99 = _p(samples, 0.99)
        result.add_row(
            phase,
            **{
                "requests": float(attempts),
                "ok": float(tally["ok"]),
                "failed": float(tally["failed"]),
                "wrong": float(tally["wrong"]),
                "p50 (ms)": _p(samples, 0.50) * 1e3,
                "p99 (ms)": p99 * 1e3,
                "success_rate": tally["ok"] / max(attempts, 1),
                "p99_vs_baseline": p99 / baseline_p99 if baseline_p99 else 0.0,
            },
        )
    all_ok = sum(t["ok"] for t in counts.values())
    all_attempts = sum(
        t["ok"] + t["failed"] + t["wrong"] for t in counts.values()
    )
    result.add_row(
        "all",
        **{
            "requests": float(all_attempts),
            "ok": float(all_ok),
            "failed": float(sum(t["failed"] for t in counts.values())),
            "wrong": float(wrong_answers),
            "success_rate": all_ok / max(all_attempts, 1),
            "failovers": counter("read_failovers"),
            "hedges": counter("hedges"),
            "hedge_wins": counter("hedge_wins"),
        },
    )
    report = warehouse.replica_report()
    result.note(
        f"{total_requests} requests over {SHARDS} shards x {REPLICATION} "
        f"replicas; shard0.r0 killed at {CRASH_AT:.0%} of the stream and "
        f"rejoined at {REJOIN_AT:.0%}; shard1.r0 browned out "
        f"[{SLOW_AT:.0%}, {SLOW_END:.0%}); every response byte-compared "
        f"to the fault-free oracle at its snapshot ts"
    )
    result.note(
        f"wrong answers: {wrong_answers}; final replica states: "
        + ", ".join(f"{k}={v}" for k, v in sorted(report.items()))
    )
    return result
