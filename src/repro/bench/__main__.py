"""Command-line runner for the figure-reproduction experiments.

Usage::

    python -m repro.bench --list
    python -m repro.bench figure-9 figure-14
    python -m repro.bench --all --scale 0.5
    python -m repro.bench figure-12 --csv out/

Each experiment prints the paper-style table; ``--csv`` also writes one CSV
plus one ``<experiment>.metrics.json`` observability report per experiment.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.figures import ALL_DRIVERS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the MaSM paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (see --list); default: none",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="override the driver's default scale (bigger = slower, closer "
        "to the paper's regime)",
    )
    parser.add_argument(
        "--csv",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="also write <experiment>.csv files into DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        for key in sorted(ALL_DRIVERS):
            print(key)
        return 0

    keys = sorted(ALL_DRIVERS) if args.all else args.experiments
    if not keys:
        parser.print_usage()
        print("nothing to run: name experiments, or use --all / --list")
        return 2
    unknown = [k for k in keys if k not in ALL_DRIVERS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use --list to see the available ids", file=sys.stderr)
        return 2

    if args.csv is not None:
        args.csv.mkdir(parents=True, exist_ok=True)

    for key in keys:
        driver = ALL_DRIVERS[key]
        kwargs = {} if args.scale is None else {"scale": args.scale}
        started = time.perf_counter()
        result = driver(**kwargs)
        elapsed = time.perf_counter() - started
        print(result.format())
        print(f"[{key} finished in {elapsed:.1f}s wall time]\n")
        if args.csv is not None:
            (args.csv / f"{key}.csv").write_text(result.to_csv())
            result.write_metrics(args.csv / f"{key}.metrics.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
