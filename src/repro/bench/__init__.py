"""Benchmark harness and per-figure experiment drivers."""

from repro.bench.harness import FigureResult, geometric_mean, normalize

__all__ = ["FigureResult", "geometric_mean", "normalize"]
