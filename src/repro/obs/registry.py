"""Process-wide metrics registry: counters, gauges, histograms.

The repro library previously kept three disjoint accounting mechanisms —
:class:`repro.storage.stats.IOStats` on devices, ``MaSMStats`` counters on
the engine, and ad-hoc dicts in benchmarks.  The registry is the shared
substrate underneath all of them: every instrument lives in one namespace
(``device.hdd.read.latency``, ``masm.flushes``, ...), can be snapshotted and
diffed exactly like ``IOStats``, and exports to JSON for the CI regression
gates.

Design points:

* **Get-or-create.**  ``registry.counter(name)`` returns the existing
  instrument when the name is taken, so independent components can share a
  series without coordination.  Asking for the same name with a different
  instrument kind is an error.
* **Deterministic histograms.**  Reservoirs are bounded by *stride
  decimation* (keep every 2^k-th sample once full), not random sampling, so
  repeated runs of a deterministic simulation export identical reports.
* **Scopes.**  Components that can have many live instances
  (``MaSM``) allocate a unique scope (``masm-lineitem``, ``masm-lineitem#2``)
  so per-instance attribute views stay exact.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, Optional, Union

Number = Union[int, float]


class Counter:
    """A cumulative numeric series (monotonic by convention, not enforced:
    attribute views like ``MaSMStats`` assign through :meth:`set`)."""

    kind = "counter"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> Number:
        return self._value

    def add(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def reset(self) -> None:
        self.set(0)

    def scalars(self) -> dict[str, Number]:
        return {"value": self._value}

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self._value}


class Gauge(Counter):
    """A point-in-time value (utilization, queue depth, cache residency)."""

    kind = "gauge"
    __slots__ = ()


class Histogram:
    """Distribution of observed values with a bounded, deterministic
    reservoir.

    Aggregates (count/total/min/max) are exact; percentiles come from the
    reservoir.  When the reservoir fills, every other sample is dropped and
    the keep-stride doubles — deterministic, so identical simulations export
    identical reports (no random sampling).
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "_samples",
        "_stride",
        "_capacity",
        "_lock",
    )

    def __init__(self, name: str, reservoir: int = 512) -> None:
        if reservoir < 2:
            raise ValueError(f"histogram reservoir must be >= 2, got {reservoir}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: list[float] = []
        self._stride = 1
        self._capacity = reservoir
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        value = float(value)
        with self._lock:
            if self.count % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) > self._capacity:
                    self._samples = self._samples[::2]
                    self._stride *= 2
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]) from the reservoir."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = (q / 100.0) * (len(samples) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(samples) - 1)
        frac = rank - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self._samples = []
            self._stride = 1

    def scalars(self) -> dict[str, Number]:
        return {"count": self.count, "total": self.total}

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "reservoir_size": len(self._samples),
            "reservoir_stride": self._stride,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsSnapshot:
    """A frozen view of a registry's scalar values at one instant.

    Mirrors :class:`repro.storage.stats.IOStats`'s snapshot/delta idiom:
    take one before a measured region, one after, and :meth:`delta` the two.
    Histograms contribute their ``count`` and ``total`` scalars.
    """

    __slots__ = ("_values",)

    def __init__(self, values: dict[str, dict[str, Number]]) -> None:
        self._values = values

    def value(self, name: str, scalar: str = "value") -> Number:
        """One scalar (0 when the instrument did not exist at snapshot)."""
        return self._values.get(name, {}).get(scalar, 0)

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Scalars accumulated since ``earlier`` was taken."""
        out: dict[str, dict[str, Number]] = {}
        for name, scalars in self._values.items():
            before = earlier._values.get(name, {})
            out[name] = {
                key: value - before.get(key, 0) for key, value in scalars.items()
            }
        return MetricsSnapshot(out)

    def as_dict(self) -> dict[str, dict[str, Number]]:
        return {name: dict(scalars) for name, scalars in self._values.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)


class MetricsRegistry:
    """A namespace of instruments, safe for concurrent use."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._scopes: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- creation
    def _get_or_create(self, name: str, factory: Callable[[], Instrument]):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                existing = factory()
                self._instruments[name] = existing
            return existing

    def counter(self, name: str) -> Counter:
        instrument = self._get_or_create(name, lambda: Counter(name))
        if instrument.kind != "counter":
            raise ValueError(f"{name!r} already registered as {instrument.kind}")
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._get_or_create(name, lambda: Gauge(name))
        if instrument.kind != "gauge":
            raise ValueError(f"{name!r} already registered as {instrument.kind}")
        return instrument

    def histogram(self, name: str, reservoir: int = 512) -> Histogram:
        instrument = self._get_or_create(name, lambda: Histogram(name, reservoir))
        if instrument.kind != "histogram":
            raise ValueError(f"{name!r} already registered as {instrument.kind}")
        return instrument

    def unique_scope(self, prefix: str) -> str:
        """A scope name no other caller of this registry holds.

        The first request for ``masm-lineitem`` gets exactly that; later
        requests get ``masm-lineitem#2``, ``#3``, ... so per-instance series
        never merge.
        """
        with self._lock:
            n = self._scopes.get(prefix, 0) + 1
            self._scopes[prefix] = n
        return prefix if n == 1 else f"{prefix}#{n}"

    # -------------------------------------------------------------- queries
    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(n for n in self._instruments if n.startswith(prefix))

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            instruments = list(self._instruments.values())
        return MetricsSnapshot(
            {inst.name: inst.scalars() for inst in instruments}
        )

    def to_dict(self, prefix: str = "") -> dict[str, dict]:
        """JSON-ready dump of every instrument (optionally one namespace)."""
        with self._lock:
            instruments = [
                inst
                for name, inst in self._instruments.items()
                if name.startswith(prefix)
            ]
        return {inst.name: inst.to_dict() for inst in sorted(
            instruments, key=lambda i: i.name
        )}

    def reset(self) -> None:
        """Zero every instrument (keeps registrations)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for inst in instruments:
            inst.reset()


# --------------------------------------------------------------------------
# The process-wide default registry.  Components capture it at construction
# time, so a driver that wants an isolated view installs its own with
# use_registry() before building devices/engines.
_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The current process-wide registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide default; returns the old one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


class use_registry:
    """Context manager installing a registry for the dynamic extent.

    >>> with use_registry(MetricsRegistry()) as reg:
    ...     rig = build_rig()        # devices register into ``reg``
    ...     run_experiment(rig)
    >>> report = reg.to_dict()
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> None:
        set_registry(self._previous)
