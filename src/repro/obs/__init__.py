"""Unified observability: metrics registry + phase tracing + exporters.

One substrate replaces the previous patchwork of ``IOStats`` sums,
``MaSMStats`` counters and per-benchmark dicts:

* :mod:`repro.obs.registry` — process-wide counters, gauges and histograms
  with ``snapshot()/delta()`` mirroring ``IOStats``;
* :mod:`repro.obs.tracing` — nestable spans recorded against simulated
  (deterministic) time: ``with obs.trace("masm.migrate"): ...``;
* :mod:`repro.obs.export` — JSON and flat-text reports the benchmark
  drivers write next to their ``FigureResult`` and CI uploads as artifacts.
"""

from repro.obs.export import export_json, export_text, report_dict, write_report
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    trace,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "Tracer",
    "export_json",
    "export_text",
    "get_registry",
    "get_tracer",
    "report_dict",
    "set_registry",
    "set_tracer",
    "trace",
    "use_registry",
    "use_tracer",
    "write_report",
]
