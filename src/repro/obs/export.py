"""Exporters: one observability report as JSON or flat text.

The JSON report is what CI consumes (uploaded as a workflow artifact next to
the benchmark results); the flat text form is for eyeballs and grep.  Both
render the same payload: every instrument in a registry plus the tracer's
finished spans.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Union

from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer, get_tracer


def report_dict(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    **extra,
) -> dict:
    """The canonical report payload (defaults to the process-wide instances)."""
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    payload = {
        "metrics": registry.to_dict(),
        "trace": tracer.to_dict(),
    }
    payload.update(extra)
    return payload


def export_json(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    **extra,
) -> str:
    """The report serialized as deterministic (sorted-key) JSON."""
    return json.dumps(report_dict(registry, tracer, **extra), indent=2, sort_keys=True) + "\n"


def export_text(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> str:
    """Flat ``name value`` lines: counters/gauges one line, histograms their
    summary scalars, then one line per traced phase with total duration."""
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    lines: list[str] = []
    for name, payload in registry.to_dict().items():
        if payload["kind"] in ("counter", "gauge"):
            lines.append(f"{name} {payload['value']}")
        else:
            for scalar in ("count", "total", "mean", "min", "max", "p50", "p99"):
                value = payload[scalar]
                lines.append(f"{name}.{scalar} {0 if value is None else value}")
    totals: dict[str, tuple[int, float]] = {}
    for span in tracer.spans:
        count, duration = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, duration + span.duration)
    for name in sorted(totals):
        count, duration = totals[name]
        lines.append(f"trace.{name}.count {count}")
        lines.append(f"trace.{name}.total_duration {duration}")
    return "\n".join(lines) + "\n"


def write_report(
    path: Union[str, pathlib.Path],
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    **extra,
) -> pathlib.Path:
    """Write the JSON report to ``path`` (parents created); returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(export_json(registry, tracer, **extra))
    return path
