"""Lightweight span-based phase tracing on simulated time.

``with trace("masm.migrate"):`` brackets a phase; spans nest (a merge inside
a migration records the migration as its parent) and every span carries
start/end timestamps read from a :class:`repro.storage.clock.SimClock` — the
*virtual* timeline devices advance as simulated work completes — so a trace
of a deterministic experiment is itself deterministic, byte for byte.

The tracer is deliberately minimal: no sampling, no ids, just an append-only
list of finished spans bounded by ``max_spans`` (overflow is counted, never
silently lost).  Exporters in :mod:`repro.obs.export` serialize it next to
the metrics registry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional


class _NullClock:
    """Stands in for a SimClock until one is bound: time frozen at zero.

    (A real import of :class:`repro.storage.clock.SimClock` would be
    circular — the storage layer itself records spans — and the tracer only
    ever reads ``.now``.)
    """

    now = 0.0


@dataclass
class Span:
    """One finished traced phase."""

    name: str
    start: float  # virtual seconds
    end: float  # virtual seconds
    depth: int  # 0 for a root span
    parent: Optional[str]  # enclosing span's name, None at the root
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload


class _ActiveSpan:
    """Context manager for one in-flight span (returned by Tracer.trace)."""

    __slots__ = ("_tracer", "name", "meta", "start", "depth", "parent")

    def __init__(self, tracer: "Tracer", name: str, meta: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.meta = meta

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self)

    def annotate(self, **meta) -> None:
        """Attach metadata to the span while it is open."""
        self.meta.update(meta)


class Tracer:
    """Collects nested spans against a bound virtual clock.

    The clock may be rebound mid-experiment (``build_rig`` binds each rig's
    shared device clock); span ends are clamped to their starts so a rebind
    can never produce a negative duration.
    """

    def __init__(
        self,
        clock=None,
        max_spans: int = 100_000,
        enabled: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else _NullClock()
        self.max_spans = max_spans
        self.enabled = enabled
        self.spans: list[Span] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # ----------------------------------------------------------------- clock
    def bind_clock(self, clock) -> None:
        """Record subsequent spans against ``clock``'s timeline (any object
        with a ``now`` attribute in seconds, typically a SimClock)."""
        self.clock = clock

    @property
    def now(self) -> float:
        return self.clock.now

    # ----------------------------------------------------------------- spans
    def trace(self, name: str, **meta) -> _ActiveSpan:
        """Open a span; use as ``with tracer.trace("masm.flush"):``."""
        return _ActiveSpan(self, name, meta)

    def _stack(self) -> list:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _push(self, span: _ActiveSpan) -> None:
        stack = self._stack()
        span.start = self.clock.now
        span.depth = len(stack)
        span.parent = stack[-1].name if stack else None
        stack.append(span)

    def _pop(self, span: _ActiveSpan) -> None:
        stack = self._stack()
        while stack and stack[-1] is not span:
            stack.pop()  # unwound through an exception: close abandoned spans
        if stack:
            stack.pop()
        if not self.enabled:
            return
        finished = Span(
            name=span.name,
            start=span.start,
            end=max(span.start, self.clock.now),
            depth=span.depth,
            parent=span.parent,
            meta=span.meta,
        )
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
            else:
                self.spans.append(finished)

    # --------------------------------------------------------------- queries
    def find(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def total_duration(self, name: str) -> float:
        return sum(s.duration for s in self.find(name))

    def reset(self) -> None:
        with self._lock:
            self.spans = []
            self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    def to_dict(self) -> dict:
        with self._lock:
            spans = [s.to_dict() for s in self.spans]
            dropped = self.dropped
        return {
            "clock": self.clock.now,
            "span_count": len(spans),
            "dropped": dropped,
            "spans": spans,
        }


# --------------------------------------------------------------------------
# Process-wide default tracer, mirroring the default registry.
_default_tracer = Tracer()
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _default_tracer
    with _default_lock:
        previous = _default_tracer
        _default_tracer = tracer
    return previous


class use_tracer:
    """Context manager installing a tracer for the dynamic extent."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracer(self._previous)


def trace(name: str, **meta) -> _ActiveSpan:
    """Open a span on the current default tracer."""
    return _default_tracer.trace(name, **meta)
