"""In-memory differential updates (PDT-style) — the Figure 1 comparand.

The prior state of the art ([11, 22] in the paper): updates are cached in an
in-memory structure with a positional index and merged into scans on the
fly.  When the buffer fills, *all* updates migrate by scanning the warehouse,
applying the updates, and writing a **new copy** of the data, which is then
swapped in — doubling the disk-capacity requirement and making migration
overhead inversely proportional to the (expensive) memory buffer.

This engine exists to measure exactly those two properties against MaSM.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.migration import MigrationStats
from repro.core.operators import MergeDataUpdates, MergeUpdates
from repro.core.update import UpdateCodec, UpdateRecord, UpdateType
from repro.engine.btree import BPlusTree
from repro.engine.heapfile import HeapFile
from repro.engine.table import Table
from repro.storage.file import StorageVolume
from repro.txn.timestamps import TimestampOracle


class InMemoryDifferential:
    """Differential updates cached purely in memory, PDT-style."""

    def __init__(
        self,
        table: Table,
        memory_bytes: int,
        oracle: Optional[TimestampOracle] = None,
        disk_volume: Optional[StorageVolume] = None,
        auto_migrate: bool = True,
    ) -> None:
        self.table = table
        self.memory_bytes = memory_bytes
        self.oracle = oracle or TimestampOracle()
        self.codec = UpdateCodec(table.schema)
        # ``disk_volume`` is where migration allocates the new data copy;
        # default: the volume backing the table's heap file.
        self.disk = disk_volume or table.heap.file.volume
        self.auto_migrate = auto_migrate
        self._tree = BPlusTree()
        self._bytes = 0
        self._copy_seq = 0
        self.migrations = 0
        self.updates_ingested = 0

    # ---------------------------------------------------------------- updates
    def insert(self, record: tuple) -> int:
        ts = self.oracle.next()
        self.apply(
            UpdateRecord(ts, self.table.schema.key(record), UpdateType.INSERT, record)
        )
        return ts

    def delete(self, key: int) -> int:
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.DELETE, None))
        return ts

    def modify(self, key: int, changes: dict) -> int:
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.MODIFY, dict(changes)))
        return ts

    def apply(self, update: UpdateRecord) -> None:
        self._tree.insert(update.key, update)
        self._bytes += self.codec.encoded_size(update)
        self.updates_ingested += 1
        if self.auto_migrate and self._bytes >= self.memory_bytes:
            self.migrate()

    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def is_full(self) -> bool:
        return self._bytes >= self.memory_bytes

    # ------------------------------------------------------------------ scans
    def _updates(self, begin_key: int, end_key: int, query_ts: int):
        for _key, update in self._tree.range(begin_key, end_key):
            if update.timestamp <= query_ts:
                yield update

    def range_scan(self, begin_key: int, end_key: int) -> Iterator[tuple]:
        query_ts = self.oracle.next()
        updates = MergeUpdates(
            [self._updates(begin_key, end_key, query_ts)],
            self.table.schema,
            cpu=self.table.cpu,
        )
        data = self.table.range_scan_pairs(begin_key, end_key)
        return iter(
            MergeDataUpdates(data, updates, self.table.schema, cpu=self.table.cpu)
        )

    # -------------------------------------------------------------- migration
    def migrate(self) -> Optional[MigrationStats]:
        """Migrate by writing a *new copy* of the table, then swapping it in.

        This is the prior-art migration the paper contrasts with MaSM's
        in-place scheme: it needs a second extent as large as the data.
        """
        if len(self._tree) == 0:
            return None
        t = self.oracle.next()
        updates = iter(
            MergeUpdates(
                [self._updates(0, 2**63 - 1, t)], self.table.schema, cpu=self.table.cpu
            )
        )
        heap = self.table.heap
        copy_name = f"{self.table.name}-copy-{self._copy_seq}"
        self._copy_seq += 1
        new_file = self.disk.create(copy_name, heap.file.size)
        new_heap = HeapFile(
            new_file, self.table.schema, page_size=heap.page_size, io_chunk=heap.io_chunk
        )
        stats = MigrationStats(timestamp=t)

        # Reuse the streaming rewrite, but read from the old heap and write
        # to the copy: read/write frontiers never conflict across files.
        rows, entries, out_pages = _copy_rewrite(heap, new_heap, self.table.schema, updates, stats)
        new_heap.num_pages = out_pages
        old_name = heap.file.name
        self.table.heap = new_heap
        self.table.replace_contents(entries, rows)
        self.disk.delete(old_name)
        self._tree = BPlusTree()
        self._bytes = 0
        self.migrations += 1
        stats.rows_after = rows
        return stats


def _copy_rewrite(src: HeapFile, dst: HeapFile, schema, updates, stats) -> tuple:
    """Stream src pages + updates into dst (migration to a new copy)."""
    from repro.core.update import apply_update
    from repro.engine.heapfile import DEFAULT_FILL_FACTOR
    from repro.engine.page import SlottedPage

    budget = int((dst.page_size - 24) * DEFAULT_FILL_FACTOR)
    out: list[SlottedPage] = []
    entries: list[tuple[int, int]] = []
    rows = 0
    written = 0
    current = SlottedPage(dst.page_size)
    used = 0
    first_key = None

    def close_page() -> None:
        nonlocal current, used, first_key, written
        entries.append((first_key if first_key is not None else 0, written + len(out)))
        out.append(current)
        current = SlottedPage(dst.page_size)
        used = 0
        first_key = None
        if len(out) >= dst.pages_per_chunk:
            flush()

    def flush() -> None:
        nonlocal written
        if not out:
            return
        dst.write_pages_sequential(written, out)
        written += len(out)
        stats.pages_written += len(out)
        out.clear()

    def emit(record: tuple, ts: int) -> None:
        nonlocal used, first_key, rows
        data = schema.pack(record)
        cost = len(data) + 8
        if used + cost > budget or not current.fits(len(data)):
            close_page()
        current.insert(data)
        current.timestamp = max(current.timestamp, ts)
        used += cost
        if first_key is None:
            first_key = schema.key(record)
        rows += 1

    update = next(updates, None)
    for _page_no, page in src.scan_pages():
        stats.pages_read += 1
        page_ts = page.timestamp
        records = sorted(
            (schema.unpack(d) for _, d in page.records()), key=schema.key
        )
        for record in records:
            key = schema.key(record)
            while update is not None and update.key < key:
                produced = apply_update(None, update, schema)
                if produced is not None:
                    emit(produced, update.timestamp)
                stats.updates_applied += 1
                update = next(updates, None)
            if update is not None and update.key == key:
                if update.timestamp > page_ts:
                    produced = apply_update(record, update, schema)
                    if produced is not None:
                        emit(produced, max(page_ts, update.timestamp))
                else:
                    emit(record, page_ts)
                stats.updates_applied += 1
                update = next(updates, None)
            else:
                emit(record, page_ts)
    while update is not None:
        produced = apply_update(None, update, schema)
        if produced is not None:
            emit(produced, update.timestamp)
        stats.updates_applied += 1
        update = next(updates, None)
    if current.slot_count or not entries:
        close_page()
    flush()
    return rows, entries, written
