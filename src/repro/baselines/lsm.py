"""An LSM-tree update cache on SSD — the Section 2.3 write-amplification
baseline.

C0 is an in-memory tree; C1..Ch live on the SSD as sorted runs with sizes in
geometric progression ``r = (SSD/mem)^(1/h)``.  When a component exceeds its
target size it merges into the next level, rewriting that level's existing
entries — the source of the (r+1) writes per update per level that shortens
SSD lifetime ~17x versus MaSM (the paper's argument for rejecting LSM).

Range scans are efficient (index range scans on every level, no wasteful
random reads), so this baseline demonstrates that LSM fails design goal 3
(low SSD writes), not query performance.
"""

from __future__ import annotations

from typing import Iterator, Optional

import heapq

from repro.core.operators import MergeDataUpdates, MergeUpdates
from repro.core.runindex import COARSE_GRANULARITY
from repro.core.sortedrun import MaterializedSortedRun, write_run
from repro.core.update import UpdateCodec, UpdateRecord, UpdateType
from repro.engine.table import Table
from repro.storage.file import StorageVolume
from repro.txn.timestamps import TimestampOracle


class LSMUpdateCache:
    """Multi-level LSM of cached updates with write accounting."""

    def __init__(
        self,
        table: Table,
        ssd_volume: StorageVolume,
        memory_bytes: int,
        levels: int,
        size_ratio: Optional[float] = None,
        oracle: Optional[TimestampOracle] = None,
        block_size: int = COARSE_GRANULARITY,
        name: str = "lsm",
    ) -> None:
        if levels < 1:
            raise ValueError("LSM needs at least one SSD level")
        self.table = table
        self.ssd = ssd_volume
        self.memory_bytes = memory_bytes
        self.levels = levels
        self.oracle = oracle or TimestampOracle()
        self.codec = UpdateCodec(table.schema)
        self.block_size = block_size
        self.name = name
        total = ssd_volume.device.capacity
        if size_ratio is None:
            size_ratio = (total / memory_bytes) ** (1.0 / levels)
        self.size_ratio = size_ratio
        #: target capacity (bytes) of each SSD level C1..Ch
        self.level_targets = [
            memory_bytes * (size_ratio ** (i + 1)) for i in range(levels)
        ]
        self._c0: list[UpdateRecord] = []
        self._c0_bytes = 0
        self._runs: list[Optional[MaterializedSortedRun]] = [None] * levels
        self._seq = 0
        self.updates_ingested = 0
        self.entry_writes = 0  # total update-entry writes to SSD

    # ---------------------------------------------------------------- updates
    def insert(self, record: tuple) -> int:
        ts = self.oracle.next()
        self.apply(
            UpdateRecord(ts, self.table.schema.key(record), UpdateType.INSERT, record)
        )
        return ts

    def delete(self, key: int) -> int:
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.DELETE, None))
        return ts

    def modify(self, key: int, changes: dict) -> int:
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.MODIFY, dict(changes)))
        return ts

    def apply(self, update: UpdateRecord) -> None:
        self._c0.append(update)
        self._c0_bytes += self.codec.encoded_size(update)
        self.updates_ingested += 1
        if self._c0_bytes >= self.memory_bytes:
            self._propagate(0)

    # ------------------------------------------------------------ propagation
    def _propagate(self, level: int) -> None:
        """Merge the overflowing component into SSD level ``level``.

        Level 0 means "merge C0 into C1"; rewriting the destination level's
        existing entries is what inflates the write count.
        """
        if level == 0:
            incoming = sorted(self._c0, key=UpdateRecord.sort_key)
            self._c0 = []
            self._c0_bytes = 0
        else:
            run = self._runs[level - 1]
            incoming = list(run.scan(0, 2**63 - 1)) if run else []
            if run is not None:
                self.ssd.delete(run.name)
                self._runs[level - 1] = None
        if not incoming:
            return
        existing_run = self._runs[level]
        sources = [iter(incoming)]
        size_hint = self._estimate_bytes(incoming) + self.block_size
        if existing_run is not None:
            sources.append(existing_run.scan(0, 2**63 - 1))
            size_hint += existing_run.file.size + self.block_size
        merged = heapq.merge(*sources, key=UpdateRecord.sort_key)
        new_name = f"{self.name}-c{level + 1}-{self._seq:05d}"
        self._seq += 1
        new_run = write_run(
            self.ssd,
            new_name,
            merged,
            self.codec,
            block_size=self.block_size,
            passes=level + 1,
            size_hint=size_hint,
        )
        if existing_run is not None:
            self.ssd.delete(existing_run.name)
        self._runs[level] = new_run
        self.entry_writes += new_run.count
        if new_run.size_bytes > self.level_targets[level]:
            if level + 1 < self.levels:
                self._propagate(level + 1)
            else:
                # The bottom level is full: migrate its updates to the main
                # data (what bounds Ch at its target in the steady state).
                self.migrate()

    def _estimate_bytes(self, updates: list[UpdateRecord]) -> int:
        return sum(self.codec.encoded_size(u) for u in updates)

    # ------------------------------------------------------------------ scans
    def _c0_scan(
        self, begin_key: int, end_key: int, query_ts: int
    ) -> Iterator[UpdateRecord]:
        visible = [
            u
            for u in self._c0
            if begin_key <= u.key <= end_key and u.timestamp <= query_ts
        ]
        visible.sort(key=UpdateRecord.sort_key)
        return iter(visible)

    def range_scan(self, begin_key: int, end_key: int) -> Iterator[tuple]:
        """Fresh records: index range scans on every LSM level plus C0."""
        query_ts = self.oracle.next()
        sources = [
            run.scan(begin_key, end_key, query_ts)
            for run in self._runs
            if run is not None
        ]
        sources.append(self._c0_scan(begin_key, end_key, query_ts))
        updates = MergeUpdates(sources, self.table.schema, cpu=self.table.cpu)
        data = self.table.range_scan_pairs(begin_key, end_key)
        return iter(
            MergeDataUpdates(data, updates, self.table.schema, cpu=self.table.cpu)
        )

    # -------------------------------------------------------------- migration
    def migrate(self) -> None:
        """Apply the bottom level's updates to the table and drop the run."""
        from repro.core.migration import MigrationStats, rewrite_heap_with_updates

        run = self._runs[-1]
        if run is None:
            return
        t = self.oracle.next()
        updates = iter(
            MergeUpdates(
                [run.scan(0, 2**63 - 1, query_ts=t)], self.table.schema
            )
        )
        stats = MigrationStats(timestamp=t)
        rows, entries, out_pages = rewrite_heap_with_updates(
            self.table.heap, self.table.schema, updates, stats
        )
        self.table.heap.truncate(out_pages)
        self.table.replace_contents(entries, rows)
        self.ssd.delete(run.name)
        self._runs[-1] = None

    # ------------------------------------------------------------- accounting
    @property
    def writes_per_update(self) -> float:
        """Measured SSD entry writes per ingested update (Section 2.3)."""
        if self.updates_ingested == 0:
            return 0.0
        return self.entry_writes / self.updates_ingested

    @property
    def cached_bytes(self) -> int:
        return sum(run.size_bytes for run in self._runs if run is not None)

    def level_sizes(self) -> list[int]:
        return [run.size_bytes if run else 0 for run in self._runs]
