"""Indexed Updates (IU) extended to SSDs — the Section 2.3 baseline.

The "ideal-case IU" the paper implements for Figure 9: incoming updates are
*appended* to insert/delete/modify tables on the SSD (avoiding random SSD
writes) while an in-memory index maps keys to the update entries.  During a
range scan, every relevant update entry costs one small synchronous SSD read
that fetches a whole page and discards all but one entry — the wasteful
random-read pattern behind IU's up-to-3.8x slowdowns.

The index lives entirely in memory ("we model the best performance for IU"),
which also demonstrates IU's much larger memory footprint compared to MaSM.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.operators import MergeDataUpdates
from repro.core.update import UpdateCodec, UpdateRecord, UpdateType, combine_chain
from repro.engine.btree import BPlusTree
from repro.engine.table import Table
from repro.errors import UpdateCacheFullError
from repro.storage.file import SimFile, StorageVolume
from repro.txn.timestamps import TimestampOracle
from repro.util.units import KB

IU_PAGE = 4 * KB  # "the SSD has 4KB internal page size, IU uses 4KB I/Os"

#: Estimated bytes of index memory per cached update entry (key, location,
#: tree overhead) — used to report IU's memory footprint.
INDEX_BYTES_PER_ENTRY = 64


class _AppendTable:
    """An append-only update table on the SSD, written in 4 KB pages."""

    def __init__(self, file: SimFile) -> None:
        self.file = file
        self._page = bytearray()
        self._page_base = 0  # file offset of the buffered page

    @property
    def used_bytes(self) -> int:
        return self._page_base + len(self._page)

    def append(self, data: bytes) -> tuple[int, int]:
        """Append an entry; returns (file_offset, length).

        Full pages are written out; entries never straddle a page so one
        page read retrieves a whole entry (like the paper's IU layout).
        """
        if len(self._page) + len(data) > IU_PAGE:
            self._flush_page()
        offset = self._page_base + len(self._page)
        self._page.extend(data)
        if len(self._page) >= IU_PAGE:
            self._flush_page()
        return offset, len(data)

    def _flush_page(self) -> None:
        if not self._page:
            return
        if self._page_base + IU_PAGE > self.file.size:
            raise UpdateCacheFullError(
                f"IU table {self.file.name!r} is full"
            )
        self.file.write(self._page_base, bytes(self._page).ljust(IU_PAGE, b"\x00"))
        self._page_base += IU_PAGE
        self._page.clear()

    def read_entry(self, offset: int, length: int) -> bytes:
        """Fetch one entry: reads (and discards most of) a whole SSD page."""
        if offset >= self._page_base:
            # Still in the memory page (not yet written).
            start = offset - self._page_base
            return bytes(self._page[start : start + length])
        page_start = (offset // IU_PAGE) * IU_PAGE
        read_sync = getattr(self.file.device, "read_sync", None)
        if read_sync is not None:
            page = read_sync(self.file.offset + page_start, IU_PAGE)
        else:  # non-SSD device (the HDD-as-cache experiment)
            page = self.file.device.read(self.file.offset + page_start, IU_PAGE)
        start = offset - page_start
        return page[start : start + length]


class IndexedUpdates:
    """The IU differential-update engine (in-memory index + SSD tables)."""

    def __init__(
        self,
        table: Table,
        ssd_volume: StorageVolume,
        oracle: Optional[TimestampOracle] = None,
        cache_bytes: Optional[int] = None,
        name: str = "iu",
    ) -> None:
        self.table = table
        self.ssd = ssd_volume
        self.oracle = oracle or TimestampOracle()
        self.codec = UpdateCodec(table.schema)
        total = cache_bytes or ssd_volume.device.capacity
        per_table = (total // 3 // IU_PAGE) * IU_PAGE
        self.tables = {
            kind: _AppendTable(ssd_volume.create(f"{name}-{label}", per_table))
            for kind, label in [
                (UpdateType.INSERT, "inserts"),
                (UpdateType.DELETE, "deletes"),
                (UpdateType.MODIFY, "modifies"),
            ]
        }
        # Positional index on the cached updates: key -> (type, offset, len, ts).
        self.index = BPlusTree()
        self.cached_updates = 0

    # ---------------------------------------------------------------- updates
    def insert(self, record: tuple) -> int:
        ts = self.oracle.next()
        self.apply(
            UpdateRecord(ts, self.table.schema.key(record), UpdateType.INSERT, record)
        )
        return ts

    def delete(self, key: int) -> int:
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.DELETE, None))
        return ts

    def modify(self, key: int, changes: dict) -> int:
        ts = self.oracle.next()
        self.apply(UpdateRecord(ts, key, UpdateType.MODIFY, dict(changes)))
        return ts

    def apply(self, update: UpdateRecord) -> None:
        kind = (
            UpdateType.INSERT
            if update.type in (UpdateType.INSERT, UpdateType.REPLACE)
            else update.type
        )
        data = self.codec.encode(update)
        offset, length = self.tables[kind].append(data)
        self.index.insert(update.key, (kind, offset, length, update.timestamp))
        self.cached_updates += 1

    # ------------------------------------------------------------------ scans
    def _fetch(self, entry: tuple) -> UpdateRecord:
        kind, offset, length, _ts = entry
        data = self.tables[kind].read_entry(offset, length)
        update, _ = self.codec.decode(data)
        return update

    def _updates_for_range(
        self, begin_key: int, end_key: int, query_ts: int
    ) -> Iterator[UpdateRecord]:
        """Combined updates per key, fetched with one random read each."""
        chain: list[UpdateRecord] = []
        for key, entry in self.index.range(begin_key, end_key):
            if entry[3] > query_ts:
                continue
            update = self._fetch(entry)
            if chain and chain[0].key != key:
                yield self._combined(chain)
                chain = []
            chain.append(update)
        if chain:
            yield self._combined(chain)

    def _combined(self, chain: list[UpdateRecord]) -> UpdateRecord:
        chain.sort(key=UpdateRecord.sort_key)
        return combine_chain(chain, self.table.schema)

    def range_scan(self, begin_key: int, end_key: int) -> Iterator[tuple]:
        """Fresh records: table scan merged with index-fetched updates."""
        query_ts = self.oracle.next()
        updates = self._updates_for_range(begin_key, end_key, query_ts)
        data = self.table.range_scan_pairs(begin_key, end_key)
        return iter(
            MergeDataUpdates(data, updates, self.table.schema, cpu=self.table.cpu)
        )

    # ------------------------------------------------------------- accounting
    @property
    def cached_bytes(self) -> int:
        return sum(t.used_bytes for t in self.tables.values())

    @property
    def index_memory_bytes(self) -> int:
        """The in-memory index cost the paper calls out for IU."""
        return len(self.index) * INDEX_BYTES_PER_ENTRY
