"""Baseline online-update schemes the paper compares MaSM against:

* :class:`InPlaceUpdater` — conventional random in-place updates (§2.2);
* :class:`IndexedUpdates` — the ideal-case SSD IU of §2.3 / Figure 9;
* :class:`LSMUpdateCache` — LSM-on-SSD with measured write amplification;
* :class:`InMemoryDifferential` — PDT-style in-memory cache (Figure 1).
"""

from repro.baselines.inplace import InPlaceUpdater, interleaved_scan
from repro.baselines.iu import IU_PAGE, IndexedUpdates
from repro.baselines.lsm import LSMUpdateCache
from repro.baselines.memdiff import InMemoryDifferential

__all__ = [
    "IU_PAGE",
    "InMemoryDifferential",
    "InPlaceUpdater",
    "IndexedUpdates",
    "LSMUpdateCache",
    "interleaved_scan",
]
