"""The conventional baseline: random in-place updates (Section 2.2).

Updates are applied directly to the main data with small read-modify-write
I/Os against the disk.  When interleaved with range scans on the same device,
the disk head bounces between the scan position and the scattered update
targets; the slowdown the paper measures (1.5-4.1x on TPC-H) emerges from the
shared head position in :class:`repro.storage.disk.SimulatedDisk`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.update import UpdateRecord, UpdateType
from repro.engine.table import Table
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.txn.timestamps import TimestampOracle


class InPlaceUpdater:
    """Applies well-formed updates straight to the table, in place."""

    def __init__(self, table: Table, oracle: Optional[TimestampOracle] = None):
        self.table = table
        self.oracle = oracle or TimestampOracle()
        self.applied = 0
        self.skipped = 0

    def insert(self, record: tuple) -> int:
        ts = self.oracle.next()
        self.table.insert_in_place(record, timestamp=ts)
        self.applied += 1
        return ts

    def delete(self, key: int) -> int:
        ts = self.oracle.next()
        self.table.delete_in_place(key, timestamp=ts)
        self.applied += 1
        return ts

    def modify(self, key: int, changes: dict) -> int:
        ts = self.oracle.next()
        self.table.modify_in_place(key, changes, timestamp=ts)
        self.applied += 1
        return ts

    def apply(self, update: UpdateRecord, lenient: bool = False) -> None:
        """Apply one :class:`UpdateRecord` (timestamps reused as given).

        ``lenient`` swallows duplicate-insert / missing-key errors, which is
        convenient when replaying a stream that was generated for a
        differential engine.
        """
        try:
            if update.type in (UpdateType.INSERT, UpdateType.REPLACE):
                self.table.insert_in_place(
                    tuple(update.content), timestamp=update.timestamp
                )
            elif update.type == UpdateType.DELETE:
                self.table.delete_in_place(update.key, timestamp=update.timestamp)
            else:
                self.table.modify_in_place(
                    update.key, dict(update.content), timestamp=update.timestamp
                )
            self.applied += 1
        except (DuplicateKeyError, KeyNotFoundError):
            if not lenient:
                raise
            self.skipped += 1


def interleaved_scan(
    table: Table,
    begin_key: int,
    end_key: int,
    updates: Iterable[UpdateRecord],
    updates_per_chunk: float,
    updater: Optional[InPlaceUpdater] = None,
) -> Iterator[tuple]:
    """Range-scan while concurrent in-place updates hit the same disk.

    Models online updates arriving at a steady rate: after every scan I/O
    chunk, ``updates_per_chunk`` updates (on average) are serviced.  This is
    the Section 2.2 experiment — the scan pays both the update service time
    and the head-movement interference.
    """
    updater = updater or InPlaceUpdater(table)
    source = iter(updates)
    heap = table.heap
    schema = table.schema
    if heap.num_pages == 0:
        return
    first, last = table.index.page_span(begin_key, end_key)
    pages_per_chunk = heap.pages_per_chunk
    credit = 0.0
    done = False
    pages_seen = 0
    # Queueing delay: with updates running continuously, the scan's first
    # I/O waits behind the update(s) in service (Section 4.2: even a single
    # 4KB read is "significantly delayed because of the random updates").
    if updates_per_chunk > 0:
        for _ in range(max(1, round(updates_per_chunk))):
            update = next(source, None)
            if update is None:
                break
            updater.apply(update, lenient=True)
    for page_no, page in heap.scan_pages(first, last):
        records = sorted(
            (schema.unpack(data) for _, data in page.records()), key=schema.key
        )
        for record in records:
            key = schema.key(record)
            if key < begin_key:
                continue
            if key > end_key:
                done = True
                break
            yield record
        pages_seen += 1
        if pages_seen % pages_per_chunk == 0:
            credit += updates_per_chunk
            while credit >= 1.0 and not done:
                update = next(source, None)
                if update is None:
                    done = True
                    break
                updater.apply(update, lenient=True)
                credit -= 1.0
        if done:
            break
