"""Simulated wall clock shared by an experiment.

The repro library separates *what happens* (bytes actually stored and moved,
so correctness is real) from *how long it takes* (service times computed by
analytic device models, so a "100 GB" experiment finishes in milliseconds of
host time).  :class:`SimClock` is the single timeline an experiment advances
as simulated work completes.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock, in seconds.

    The clock never moves backwards; :meth:`advance` with a negative delta is
    rejected because it always indicates an accounting bug in a device model.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the experiment started."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"clock cannot move backwards (delta={delta})")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move the clock forward to ``when`` if it is in the future."""
        if when > self._now:
            self._now = when
        return self._now

    def reset(self) -> None:
        """Restart the timeline at zero (used between benchmark repetitions)."""
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f}s)"
