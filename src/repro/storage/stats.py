"""I/O accounting shared by all simulated devices.

Every device keeps an :class:`IOStats`; experiments snapshot it before and
after a measured region and diff the snapshots.  Busy time is the integral of
device service time, which is what the overlap model in
:mod:`repro.storage.iosched` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class IOStats:
    """Cumulative counters for one device.

    Attributes:
        reads: number of read operations serviced.
        writes: number of write operations serviced.
        bytes_read: payload bytes returned by reads.
        bytes_written: payload bytes accepted by writes.
        seq_reads / seq_writes: operations that continued the previous
            access position (no repositioning cost).
        rand_reads / rand_writes: operations that required repositioning.
        busy_time: total seconds the device spent servicing requests.
        seek_time: seconds of ``busy_time`` spent repositioning (HDD only).
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seq_reads: int = 0
    seq_writes: int = 0
    rand_reads: int = 0
    rand_writes: int = 0
    busy_time: float = 0.0
    seek_time: float = 0.0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return the counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    @property
    def ops(self) -> int:
        """Total read + write operations."""
        return self.reads + self.writes

    @property
    def bytes_total(self) -> int:
        """Total payload bytes moved in either direction."""
        return self.bytes_read + self.bytes_written

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def describe(self) -> str:
        """One-line human-readable summary, used by example scripts."""
        from repro.util.units import fmt_bytes, fmt_time

        return (
            f"{self.reads} reads ({fmt_bytes(self.bytes_read)}), "
            f"{self.writes} writes ({fmt_bytes(self.bytes_written)}), "
            f"busy {fmt_time(self.busy_time)}"
        )
