"""Device profiles and the common base class for simulated devices.

Profiles are calibrated to the hardware of the paper's testbed (Section 4.1):

* ``BARRACUDA_HDD`` — 200 GB 7200 rpm Seagate Barracuda, 77 MB/s sequential
  read/write.  With the seek-curve constants below, a random 4 KB write costs
  ~14.6 ms (the paper measures 68 sustained random writes/s, i.e. 14.7 ms) and
  a 4 KB read-modify-write in place costs ~23 ms (paper: 48 updates/s).
* ``X25E_SSD`` — Intel X25-E: 250 MB/s sequential read, 170 MB/s sequential
  write, >35 000 random 4 KB reads/s when requests are batched across the
  device's internal channels.

Capacities are configurable because every experiment in this reproduction is
scaled down (see DESIGN.md); the *ratios* between the constants are what the
paper's results depend on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import DeviceBoundsError
from repro.obs.registry import get_registry
from repro.storage.clock import SimClock
from repro.storage.stats import IOStats
from repro.util.units import GB, KB, MB, MS, US

# Data is held in fixed-size blocks allocated lazily, so a "100 GB" device
# only consumes host memory proportional to the bytes actually written.
_BACKING_BLOCK = 256 * KB


@dataclass(frozen=True)
class DeviceProfile:
    """Analytic performance parameters for a simulated device.

    HDD-specific fields (``seek_*``, ``rotation_time``) are zero for SSDs;
    SSD-specific fields (``read_latency`` etc.) are zero for HDDs.
    """

    name: str
    capacity: int
    seq_read_bw: float  # bytes/second for sequential reads
    seq_write_bw: float  # bytes/second for sequential writes
    # --- HDD mechanics ---
    seek_track_to_track: float = 0.0  # seconds, minimum repositioning
    seek_full_stroke: float = 0.0  # seconds, worst-case arm travel
    rotation_time: float = 0.0  # seconds per platter revolution
    # --- SSD electronics ---
    read_latency: float = 0.0  # seconds fixed cost per read command
    write_latency: float = 0.0  # seconds fixed cost per write command
    random_write_penalty: float = 0.0  # extra seconds for a non-append write
    internal_parallelism: int = 1  # concurrent commands the device overlaps
    erase_block: int = 128 * KB  # flash erase-block size (wear accounting)
    endurance_cycles: int = 0  # program/erase cycles per cell (0 = HDD)

    def with_capacity(self, capacity: int) -> "DeviceProfile":
        """Return a copy of this profile with a different capacity."""
        return replace(self, capacity=capacity)


BARRACUDA_HDD = DeviceProfile(
    name="seagate-barracuda-7200rpm",
    capacity=200 * GB,
    seq_read_bw=77 * MB,
    seq_write_bw=77 * MB,
    seek_track_to_track=0.8 * MS,
    seek_full_stroke=18.0 * MS,
    rotation_time=8.33 * MS,  # 7200 rpm
)

X25E_SSD = DeviceProfile(
    name="intel-x25e",
    capacity=32 * GB,
    seq_read_bw=250 * MB,
    seq_write_bw=170 * MB,
    read_latency=90 * US,
    write_latency=85 * US,
    random_write_penalty=2.0 * MS,
    internal_parallelism=10,
    erase_block=128 * KB,
    endurance_cycles=100_000,  # enterprise SLC NAND (Section 3.7)
)


class BlockStore:
    """Sparse byte store backing a device.

    Reads of never-written ranges return zero bytes, matching a freshly
    formatted device.  The store is thread-safe because MaSM exercises real
    concurrent scans in tests.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._blocks: dict[int, bytearray] = {}
        self._lock = threading.Lock()

    def read(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        out = bytearray(size)
        with self._lock:
            pos = 0
            while pos < size:
                abs_off = offset + pos
                block_id, block_off = divmod(abs_off, _BACKING_BLOCK)
                chunk = min(size - pos, _BACKING_BLOCK - block_off)
                block = self._blocks.get(block_id)
                if block is not None:
                    out[pos : pos + chunk] = block[block_off : block_off + chunk]
                pos += chunk
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        with self._lock:
            pos = 0
            size = len(data)
            while pos < size:
                abs_off = offset + pos
                block_id, block_off = divmod(abs_off, _BACKING_BLOCK)
                chunk = min(size - pos, _BACKING_BLOCK - block_off)
                block = self._blocks.get(block_id)
                if block is None:
                    block = bytearray(_BACKING_BLOCK)
                    self._blocks[block_id] = block
                block[block_off : block_off + chunk] = data[pos : pos + chunk]
                pos += chunk

    def discard(self, offset: int, size: int) -> None:
        """Drop whole backing blocks covered by the range (TRIM-like)."""
        self._check_range(offset, size)
        first = -(-offset // _BACKING_BLOCK)  # first block fully inside
        last = (offset + size) // _BACKING_BLOCK  # first block past the end
        with self._lock:
            for block_id in range(first, last):
                self._blocks.pop(block_id, None)

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.capacity:
            raise DeviceBoundsError(
                f"access [{offset}, {offset + size}) outside device "
                f"capacity {self.capacity}"
            )

    @property
    def resident_bytes(self) -> int:
        """Host memory actually consumed by written data."""
        with self._lock:
            return len(self._blocks) * _BACKING_BLOCK


class Device:
    """Base simulated device: a byte store plus a service-time model.

    Subclasses implement :meth:`_read_time` and :meth:`_write_time`; this
    class handles data movement, statistics and clock accounting.  All service
    time lands in ``stats.busy_time`` so the overlap model can compute query
    critical paths.
    """

    def __init__(self, profile: DeviceProfile, clock: Optional[SimClock] = None):
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        self.store = BlockStore(profile.capacity)
        self.stats = IOStats()
        self._lock = threading.Lock()
        # Registry instrumentation: per-op service-time distributions, which
        # the hand-rolled busy_time sum cannot provide.  Devices sharing a
        # profile name share these series (an experiment-level aggregate);
        # exact per-device accounting stays on ``self.stats``.
        registry = get_registry()
        self._obs_read_latency = registry.histogram(
            f"device.{profile.name}.read.latency"
        )
        self._obs_write_latency = registry.histogram(
            f"device.{profile.name}.write.latency"
        )

    # -- subclass hooks -----------------------------------------------------
    def _read_time(self, offset: int, size: int) -> tuple[float, float, bool]:
        """Return (service_time, reposition_time, was_sequential)."""
        raise NotImplementedError

    def _write_time(self, offset: int, size: int) -> tuple[float, float, bool]:
        raise NotImplementedError

    # -- public API ----------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.profile.capacity

    @property
    def name(self) -> str:
        return self.profile.name

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset``, charging simulated service time."""
        with self._lock:
            service, reposition, sequential = self._read_time(offset, size)
            self.stats.reads += 1
            self.stats.bytes_read += size
            self.stats.busy_time += service
            self.stats.seek_time += reposition
            if sequential:
                self.stats.seq_reads += 1
            else:
                self.stats.rand_reads += 1
            self.clock.advance(service)
        self._obs_read_latency.observe(service)
        return self.store.read(offset, size)

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, charging simulated service time."""
        size = len(data)
        with self._lock:
            service, reposition, sequential = self._write_time(offset, size)
            self.stats.writes += 1
            self.stats.bytes_written += size
            self.stats.busy_time += service
            self.stats.seek_time += reposition
            if sequential:
                self.stats.seq_writes += 1
            else:
                self.stats.rand_writes += 1
            self.clock.advance(service)
        self._obs_write_latency.observe(service)
        self.store.write(offset, data)

    def peek(self, offset: int, size: int) -> bytes:
        """Read data without charging any simulated time (debug/recovery)."""
        return self.store.read(offset, size)

    def poke(self, offset: int, data: bytes) -> None:
        """Write data without charging simulated time (test setup only)."""
        self.store.write(offset, data)

    def snapshot(self) -> IOStats:
        """Snapshot cumulative stats for later :meth:`IOStats.delta`."""
        with self._lock:
            return self.stats.snapshot()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = IOStats()
