"""Deterministic fault injection for simulated devices.

The simulated devices are perfectly reliable, so the paper's correctness-
under-failure claims (Section 3.6) were untestable against media faults.
This module supplies the adverse conditions:

* :class:`FaultPlan` — a seedable, fully deterministic schedule of faults:
  transient read/write errors (probabilistic or pinned to specific
  operation indexes), torn writes that persist only a prefix, silent
  bit-flip corruption of stored bytes, latency spikes, and named crash
  points that raise :class:`~repro.errors.SimulatedCrash`;
* :class:`FaultyDevice` — a wrapper that composes over ``SimulatedDisk`` /
  ``SimulatedSSD`` and injects the plan's faults around the inner device's
  cost model (which it never touches);
* :func:`crash_point` — a hook the library calls at named sites
  (``"masm.flush.run_written"``, ``"migration.emit"``, ``"wal.append"``)
  so tests can schedule a crash at an exact logical moment instead of
  hand-tearing state.

Every injected fault increments the process-wide ``faults.injected``
counter (plus a per-kind counter), so a metrics report proves the run was
actually exercised under faults rather than silently fault-free.

Determinism: a plan owns one ``random.Random(seed)``; outcomes depend only
on the seed and the exact operation sequence, so a deterministic workload
fails the same way every run.  Probabilistic transient errors are capped at
``max_consecutive_errors`` in a row, which keeps them *transient by
construction*: a retry policy with more attempts than the cap always
eventually succeeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulatedCrash, TransientIOError
from repro.obs.registry import get_registry


def _count_fault(kind: str) -> None:
    registry = get_registry()
    registry.counter("faults.injected").add(1)
    registry.counter(f"faults.injected.{kind}").add(1)


@dataclass
class ReadFault:
    """Outcome of one read-op consultation."""

    transient: bool = False
    latency: float = 0.0


@dataclass
class WriteFault:
    """Outcome of one write-op consultation."""

    transient: bool = False
    torn_keep_fraction: Optional[float] = None
    bit_flip: bool = False
    latency: float = 0.0


class FaultPlan:
    """A deterministic, seedable schedule of storage faults.

    Probabilistic faults (``read_error_rate`` etc.) draw from the plan's
    seeded RNG per operation; scheduled faults pin a fault to an exact
    operation index (0-based, counted separately for reads and writes,
    shared across every device the plan wraps).  ``read_op_count`` /
    ``write_op_count`` expose the counters so callers can schedule a fault
    on *the next* operation (``plan.torn_write_at(plan.write_op_count)``)
    without knowing absolute indexes.
    """

    def __init__(
        self,
        seed: int = 0,
        read_error_rate: float = 0.0,
        write_error_rate: float = 0.0,
        latency_spike_rate: float = 0.0,
        latency_spike_seconds: float = 5e-3,
        max_consecutive_errors: int = 2,
    ) -> None:
        for name, rate in (
            ("read_error_rate", read_error_rate),
            ("write_error_rate", write_error_rate),
            ("latency_spike_rate", latency_spike_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if max_consecutive_errors < 1:
            raise ValueError("max_consecutive_errors must be >= 1")
        self.seed = seed
        self.read_error_rate = read_error_rate
        self.write_error_rate = write_error_rate
        self.latency_spike_rate = latency_spike_rate
        self.latency_spike_seconds = latency_spike_seconds
        self.max_consecutive_errors = max_consecutive_errors
        self._rng = random.Random(seed)
        self.read_op_count = 0
        self.write_op_count = 0
        self._consecutive = 0
        self._read_error_ops: set[int] = set()
        self._write_error_ops: set[int] = set()
        self._torn_writes: dict[int, float] = {}
        self._bit_flip_ops: set[int] = set()
        self._crash_sites: dict[str, int] = {}
        self._crash_hits: dict[str, int] = {}

    # ------------------------------------------------------------ scheduling
    def fail_read_at(self, op_index: int) -> "FaultPlan":
        """Inject a transient error on the ``op_index``-th read operation."""
        self._read_error_ops.add(op_index)
        return self

    def fail_write_at(self, op_index: int) -> "FaultPlan":
        """Inject a transient error on the ``op_index``-th write operation."""
        self._write_error_ops.add(op_index)
        return self

    def torn_write_at(self, op_index: int, keep_fraction: float = 0.5) -> "FaultPlan":
        """Tear the ``op_index``-th write: persist a prefix, then crash.

        Models power loss mid-write: the device keeps ``keep_fraction`` of
        the data and :class:`SimulatedCrash` unwinds the writer.  Never
        retried (it is not a :class:`TransientIOError`), so the torn state
        survives for recovery to find.
        """
        if not 0.0 <= keep_fraction < 1.0:
            raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
        self._torn_writes[op_index] = keep_fraction
        return self

    def bit_flip_at(self, op_index: int) -> "FaultPlan":
        """Silently flip one stored bit of the ``op_index``-th write.

        The write reports success; the damage is only discoverable by
        checksum verification on a later read or scrub.
        """
        self._bit_flip_ops.add(op_index)
        return self

    def crash_at(self, site: str, occurrence: int = 1) -> "FaultPlan":
        """Raise :class:`SimulatedCrash` the ``occurrence``-th time the named
        crash-point site is reached (see :func:`crash_point`)."""
        if occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {occurrence}")
        self._crash_sites[site] = occurrence
        return self

    # ----------------------------------------------------------- consultation
    def _roll(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if self._consecutive >= self.max_consecutive_errors:
            # Forced-clean op: keeps probabilistic errors transient by
            # construction (a bounded retry loop always outlasts them).
            return False
        return self._rng.random() < rate

    def next_read_fault(self) -> ReadFault:
        """Consult the plan for the next read operation (advances counters)."""
        op = self.read_op_count
        self.read_op_count += 1
        fault = ReadFault()
        if self.latency_spike_rate and self._rng.random() < self.latency_spike_rate:
            fault.latency = self.latency_spike_seconds
        if op in self._read_error_ops or self._roll(self.read_error_rate):
            fault.transient = True
            self._consecutive += 1
        else:
            self._consecutive = 0
        return fault

    def next_write_fault(self) -> WriteFault:
        """Consult the plan for the next write operation (advances counters)."""
        op = self.write_op_count
        self.write_op_count += 1
        fault = WriteFault()
        if self.latency_spike_rate and self._rng.random() < self.latency_spike_rate:
            fault.latency = self.latency_spike_seconds
        if op in self._torn_writes:
            fault.torn_keep_fraction = self._torn_writes[op]
            return fault
        if op in self._bit_flip_ops:
            fault.bit_flip = True
            return fault
        if op in self._write_error_ops or self._roll(self.write_error_rate):
            fault.transient = True
            self._consecutive += 1
        else:
            self._consecutive = 0
        return fault

    def corruption_position(self, size: int) -> tuple[int, int]:
        """Deterministic (byte offset, bit mask) for a bit flip in ``size``
        bytes, drawn from the plan's RNG."""
        return self._rng.randrange(size), 1 << self._rng.randrange(8)

    def check_crash_point(self, site: str) -> None:
        """Record a crash-point hit; raise when its occurrence is reached."""
        target = self._crash_sites.get(site)
        if target is None:
            return
        hits = self._crash_hits.get(site, 0) + 1
        self._crash_hits[site] = hits
        if hits == target:
            _count_fault("crash")
            raise SimulatedCrash(f"crash point {site!r} (occurrence {hits})")


class FaultyDevice:
    """A device wrapper injecting a :class:`FaultPlan`'s faults.

    Composes over any simulated device: cost models, statistics and the
    byte store stay on the inner device (every attribute not overridden
    here delegates to it), so a ``StorageVolume`` built over a
    ``FaultyDevice`` behaves identically until a fault fires.

    Failed operations charge no device service time (the command aborts);
    retry backoff time is charged separately by the retry policy.  Latency
    spikes advance the shared clock and land in ``stats.busy_time`` so the
    overlap model sees them on the critical path.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyDevice({self.inner!r})"

    # -------------------------------------------------------------- plumbing
    def _charge_latency(self, extra: float) -> None:
        if extra <= 0.0:
            return
        _count_fault("latency_spike")
        get_registry().counter("faults.latency_seconds").add(extra)
        inner = self.inner
        with inner._lock:
            inner.stats.busy_time += extra
            inner.clock.advance(extra)

    def _flip_stored_bit(self, offset: int, size: int) -> None:
        _count_fault("bit_flip")
        pos, mask = self.plan.corruption_position(size)
        raw = bytearray(self.inner.store.read(offset + pos, 1))
        raw[0] ^= mask
        self.inner.store.write(offset + pos, bytes(raw))

    # ------------------------------------------------------------------ reads
    def read(self, offset: int, size: int) -> bytes:
        fault = self.plan.next_read_fault()
        self._charge_latency(fault.latency)
        if fault.transient:
            _count_fault("read_error")
            raise TransientIOError(
                f"injected transient read error at offset {offset} (+{size})"
            )
        return self.inner.read(offset, size)

    def read_batch(self, requests) -> list[bytes]:
        inner_batch = getattr(self.inner, "read_batch", None)
        latency = 0.0
        transient = False
        for _ in requests:
            fault = self.plan.next_read_fault()
            latency = max(latency, fault.latency)
            transient = transient or fault.transient
        self._charge_latency(latency)
        if transient:
            _count_fault("read_error")
            raise TransientIOError(
                f"injected transient read error in a batch of {len(requests)}"
            )
        if inner_batch is not None:
            return inner_batch(requests)
        return [self.inner.read(offset, size) for offset, size in requests]

    def read_sync(self, offset: int, size: int) -> bytes:
        fault = self.plan.next_read_fault()
        self._charge_latency(fault.latency)
        if fault.transient:
            _count_fault("read_error")
            raise TransientIOError(
                f"injected transient sync-read error at offset {offset}"
            )
        return self.inner.read_sync(offset, size)

    # ----------------------------------------------------------------- writes
    def write(self, offset: int, data: bytes) -> None:
        fault = self.plan.next_write_fault()
        self._charge_latency(fault.latency)
        if fault.transient:
            _count_fault("write_error")
            raise TransientIOError(
                f"injected transient write error at offset {offset} "
                f"(+{len(data)})"
            )
        if fault.torn_keep_fraction is not None:
            kept = int(len(data) * fault.torn_keep_fraction)
            if kept:
                self.inner.write(offset, data[:kept])
            _count_fault("torn_write")
            raise SimulatedCrash(
                f"torn write at offset {offset}: {kept}/{len(data)} bytes persisted"
            )
        self.inner.write(offset, data)
        if fault.bit_flip:
            self._flip_stored_bit(offset, len(data))


class NodeFaultPlan:
    """A node-level fault schedule keyed to *simulated time*.

    Device-level plans (:class:`FaultPlan`) model media faults per I/O
    operation; a :class:`NodeFaultPlan` models whole-node pathologies the
    availability layer must survive — the three shapes that dominate tail
    latency under fan-out:

    * **crash** — from ``crash_at`` on, every operation fails immediately
      with :class:`ReplicaUnavailableError` (fail-fast node death) until
      :meth:`recover` is called;
    * **stuck** — inside ``[stuck_at, stuck_until)`` an operation first
      burns ``stuck_op_seconds`` of the caller's clock (a hung RPC eating
      the deadline budget), *then* fails;
    * **slow-degrade** — inside ``[slow_at, slow_until)`` operations
      succeed but charge ``slow_op_seconds`` of extra latency, ramping
      linearly over ``slow_ramp_seconds`` (brown-out, not black-out).

    Consulted by :class:`~repro.core.replication.ReplicaSet` at the scan /
    apply boundary (not per device I/O), so cache-served scans on a dead
    node still fail — the node is gone, not just its disk.
    """

    def __init__(
        self,
        *,
        crash_at: Optional[float] = None,
        stuck_at: Optional[float] = None,
        stuck_until: float = float("inf"),
        stuck_op_seconds: float = 0.05,
        slow_at: Optional[float] = None,
        slow_until: float = float("inf"),
        slow_op_seconds: float = 0.02,
        slow_ramp_seconds: float = 0.0,
    ) -> None:
        self.crash_at = crash_at
        self.stuck_at = stuck_at
        self.stuck_until = stuck_until
        self.stuck_op_seconds = stuck_op_seconds
        self.slow_at = slow_at
        self.slow_until = slow_until
        self.slow_op_seconds = slow_op_seconds
        self.slow_ramp_seconds = slow_ramp_seconds

    # ---------------------------------------------------------------- queries
    def crashed(self, now: float) -> bool:
        return self.crash_at is not None and now >= self.crash_at

    def stuck(self, now: float) -> bool:
        return self.stuck_at is not None and self.stuck_at <= now < self.stuck_until

    def slow_penalty(self, now: float) -> float:
        if self.slow_at is None or not (self.slow_at <= now < self.slow_until):
            return 0.0
        if self.slow_ramp_seconds > 0.0:
            frac = min(1.0, (now - self.slow_at) / self.slow_ramp_seconds)
            return self.slow_op_seconds * frac
        return self.slow_op_seconds

    # ------------------------------------------------------------ consultation
    def before_op(self, clock) -> None:
        """Consult the plan before a node operation.

        Raises :class:`ReplicaUnavailableError` for crash/stuck (charging
        the stuck penalty first), advances ``clock`` for slow-degrade.
        """
        from repro.errors import ReplicaUnavailableError

        now = clock.now
        if self.crashed(now):
            _count_fault("node_crash")
            raise ReplicaUnavailableError(f"node crashed at t={self.crash_at}")
        if self.stuck(now):
            if self.stuck_op_seconds > 0.0:
                clock.advance(self.stuck_op_seconds)
            _count_fault("node_stuck")
            raise ReplicaUnavailableError(
                f"node stuck (hung {self.stuck_op_seconds}s before failing)"
            )
        penalty = self.slow_penalty(now)
        if penalty > 0.0:
            _count_fault("node_slow")
            get_registry().counter("faults.node_slow_seconds").add(penalty)
            clock.advance(penalty)

    def recover(self) -> None:
        """Clear the crash schedule (the node was repaired and restarted)."""
        self.crash_at = None


# ---------------------------------------------------------------------------
# Crash points.  Library code calls crash_point("site") at moments worth
# crashing at; the call is a no-op unless a plan with a matching crash_at()
# schedule is installed.
_active_plans: list[FaultPlan] = []


def crash_point(site: str) -> None:
    """Give every installed fault plan the chance to crash at ``site``."""
    if not _active_plans:
        return
    for plan in _active_plans:
        plan.check_crash_point(site)


def install_plan(plan: FaultPlan) -> None:
    _active_plans.append(plan)


def uninstall_plan(plan: FaultPlan) -> None:
    if plan in _active_plans:
        _active_plans.remove(plan)


class use_fault_plan:
    """Context manager installing a plan for crash-point checks.

    >>> plan = FaultPlan().crash_at("migration.emit", occurrence=100)
    >>> with use_fault_plan(plan):
    ...     run_workload()   # raises SimulatedCrash at the 100th emit
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __enter__(self) -> FaultPlan:
        install_plan(self.plan)
        return self.plan

    def __exit__(self, exc_type, exc, tb) -> None:
        uninstall_plan(self.plan)
