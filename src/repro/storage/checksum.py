"""Self-verifying page trailers: CRC checksums over stored bytes.

MaSM's durability argument (Section 3.6) assumes the SSD returns the bytes
that were written.  Real devices do not always: bit rot, torn writes and
firmware bugs all produce pages that read back differently than written.
Every run block and redo-log record therefore carries a small checksum so
the read path can *detect* damage instead of silently decoding garbage.

Format: an 8-byte trailer at the end of each fixed-size page::

    | body ... zero padding ... | magic u32 | crc u32 |

The CRC covers everything before the trailer's crc field (body, padding and
the magic), so any flipped bit in the stored page — including in the trailer
itself — fails verification.  The checksum function is hardware CRC32C when
the optional ``crc32c`` module is importable, and zlib's CRC-32 otherwise
(same width, same detection strength for this use; both run at C speed,
which is what keeps verification inside the hot-path regression budget).

Verification can be disabled globally (``set_verification(False)``) so the
fault-overhead benchmark can measure exactly what the checksums cost.
"""

from __future__ import annotations

import struct

from repro.errors import ChecksumError
from repro.obs.registry import get_registry

try:  # pragma: no cover - environment-dependent accelerator
    from crc32c import crc32c as _crc
except ImportError:  # pragma: no cover
    from zlib import crc32 as _crc

#: Trailer layout: magic marker then the CRC of everything before it.
TRAILER = struct.Struct("<II")
TRAILER_SIZE = TRAILER.size

#: Identifies a sealed page ("MSR1": MaSM sealed revision 1).  A page whose
#: trailer lacks the magic was never sealed (or lost its tail to a torn
#: write), which verification reports distinctly from a CRC mismatch.
PAGE_MAGIC = 0x3152534D

_verification_enabled = True


def checksum(data) -> int:
    """Checksum of ``data`` as an unsigned 32-bit integer."""
    return _crc(data) & 0xFFFFFFFF


def verification_enabled() -> bool:
    return _verification_enabled


def set_verification(enabled: bool) -> bool:
    """Globally enable/disable read-side verification; returns the old value.

    Write-side sealing is never disabled — pages on a volume must all carry
    trailers so verification can be re-enabled at any moment.
    """
    global _verification_enabled
    previous = _verification_enabled
    _verification_enabled = bool(enabled)
    return previous


def seal(body: bytes, page_size: int) -> bytes:
    """Pad ``body`` to ``page_size`` and stamp the checksum trailer.

    ``body`` must leave room for the trailer; callers budget their payload
    against ``page_size - TRAILER_SIZE``.
    """
    if len(body) > page_size - TRAILER_SIZE:
        raise ValueError(
            f"body of {len(body)} bytes leaves no room for the {TRAILER_SIZE}-byte "
            f"trailer in a {page_size}-byte page"
        )
    padded = body.ljust(page_size - TRAILER_SIZE, b"\x00")
    head = padded + struct.pack("<I", PAGE_MAGIC)
    return head + struct.pack("<I", checksum(head))


def verify(page: bytes, context: str = "page") -> None:
    """Verify a sealed page, raising :class:`ChecksumError` on damage.

    No-op while verification is disabled.  Failures increment the
    process-wide ``checksum.failures`` counter before raising.
    """
    if not _verification_enabled:
        return
    magic, stored = TRAILER.unpack_from(page, len(page) - TRAILER_SIZE)
    if magic != PAGE_MAGIC:
        get_registry().counter("checksum.failures").add(1)
        raise ChecksumError(
            f"{context}: missing or damaged page trailer "
            f"(magic {magic:#010x}, expected {PAGE_MAGIC:#010x})"
        )
    actual = checksum(page[: len(page) - 4])
    if actual != stored:
        get_registry().counter("checksum.failures").add(1)
        raise ChecksumError(
            f"{context}: checksum mismatch (stored {stored:#010x}, "
            f"computed {actual:#010x})"
        )
