"""Simulated storage substrate: clock, HDD/SSD device models, files, overlap.

See DESIGN.md ("Hardware substitution") for how these models stand in for the
paper's physical testbed while preserving the behaviours the evaluation
measures.
"""

from repro.storage.clock import SimClock
from repro.storage.device import (
    BARRACUDA_HDD,
    X25E_SSD,
    BlockStore,
    Device,
    DeviceProfile,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import (
    FaultPlan,
    FaultyDevice,
    crash_point,
    use_fault_plan,
)
from repro.storage.file import SimFile, StorageVolume
from repro.storage.iosched import (
    MERGE_CPU_PER_UPDATE,
    SCAN_CPU_PER_RECORD,
    CpuMeter,
    OverlapWindow,
    TimeBreakdown,
    combine_serial,
    measure,
)
from repro.storage.ssd import SYNC_READ_OVERHEAD, SimulatedSSD
from repro.storage.stats import IOStats

__all__ = [
    "BARRACUDA_HDD",
    "X25E_SSD",
    "SYNC_READ_OVERHEAD",
    "MERGE_CPU_PER_UPDATE",
    "SCAN_CPU_PER_RECORD",
    "BlockStore",
    "CpuMeter",
    "Device",
    "DeviceProfile",
    "FaultPlan",
    "FaultyDevice",
    "IOStats",
    "OverlapWindow",
    "SimClock",
    "SimFile",
    "SimulatedDisk",
    "SimulatedSSD",
    "StorageVolume",
    "TimeBreakdown",
    "combine_serial",
    "crash_point",
    "measure",
    "use_fault_plan",
]
