"""Simulated flash SSD (modelled on the Intel X25-E of the paper's testbed).

Performance envelope (Section 4.1 / reference [13] of the paper):

* Sequential reads at 250 MB/s and sequential writes at 170 MB/s; every
  command also pays a fixed electronic latency.
* Random reads are fast, and *batched* random reads (asynchronous I/O, as
  MaSM issues through libaio) overlap across the device's internal channels:
  a batch of ``k`` requests costs ``ceil(k / parallelism)`` latencies plus the
  total transfer.  Ten channels at 90 us per command give ~37 000 random 4 KB
  reads/s, matching the paper's ">35,000".
* *Synchronous* (blocking, queue-depth-1) reads additionally pay a host
  round-trip overhead.  This is the path the ideal-case Indexed Updates
  baseline uses — its index walk issues dependent single-page reads — and is
  what produces IU's up-to-3.8x slowdowns in Figure 9.
* Random (non-append) writes incur an erase/wear-levelling penalty
  (Section 1.2's "no random SSD writes" design goal).  MaSM never triggers it.

The device additionally accounts flash wear: total bytes programmed, erase
cycles, and a projected lifetime given the cell endurance — the quantities
behind design goal 3 (low SSD writes per update) and the LSM lifetime
argument of Section 2.3.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.registry import get_registry
from repro.storage.clock import SimClock
from repro.storage.device import Device, DeviceProfile, X25E_SSD
from repro.util.units import US, ceil_div

#: Host round-trip overhead for a blocking (queue-depth-1) read: system call,
#: driver and FTL latency that asynchronous batching hides.
SYNC_READ_OVERHEAD = 200 * US


class SimulatedSSD(Device):
    """A flash SSD with batched-read parallelism and wear accounting."""

    def __init__(
        self,
        profile: DeviceProfile = X25E_SSD,
        clock: Optional[SimClock] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None:
            profile = profile.with_capacity(capacity)
        super().__init__(profile, clock)
        self._append_point = 0  # end of the last write, for append detection
        self.erase_count = 0
        # Batched (libaio-style) reads get their own distributions: the batch
        # width is what the internal-parallelism overlap model keys off.
        registry = get_registry()
        self._obs_batch_width = registry.histogram(
            f"device.{self.profile.name}.read.batch_width"
        )
        self._obs_batch_latency = registry.histogram(
            f"device.{self.profile.name}.read.batch_latency"
        )

    # ------------------------------------------------------------------ time
    def _read_time(self, offset: int, size: int):
        service = self.profile.read_latency + size / self.profile.seq_read_bw
        # SSD reads have no positional cost; classify as sequential for stats
        # purposes only when they continue the previous access.
        return service, 0.0, True

    def _write_time(self, offset: int, size: int):
        p = self.profile
        sequential = offset == self._append_point
        service = p.write_latency + size / p.seq_write_bw
        penalty = 0.0
        if not sequential:
            penalty = p.random_write_penalty
            service += penalty
        self._append_point = offset + size
        self.erase_count += ceil_div(size, p.erase_block)
        return service, penalty, sequential

    # ------------------------------------------------------------- batch API
    def read_batch(self, requests: Sequence[tuple[int, int]]) -> list[bytes]:
        """Service many reads as one asynchronous batch.

        The batch costs ``ceil(k / internal_parallelism)`` command latencies
        plus the aggregate transfer time — the libaio path MaSM uses to
        overlap many small run-index-guided reads (Section 4.1).
        """
        if not requests:
            return []
        p = self.profile
        total = sum(size for _, size in requests)
        service = (
            ceil_div(len(requests), p.internal_parallelism) * p.read_latency
            + total / p.seq_read_bw
        )
        with self._lock:
            self.stats.reads += len(requests)
            self.stats.bytes_read += total
            self.stats.busy_time += service
            self.stats.rand_reads += len(requests)
            self.clock.advance(service)
        self._obs_batch_width.observe(len(requests))
        self._obs_batch_latency.observe(service)
        return [self.store.read(offset, size) for offset, size in requests]

    def read_sync(self, offset: int, size: int) -> bytes:
        """Service one blocking read at queue depth 1.

        Pays :data:`SYNC_READ_OVERHEAD` on top of the device latency; used by
        baselines whose access pattern is dependent (one read must complete
        before the next is known), such as Indexed Updates.
        """
        service = (
            self.profile.read_latency
            + SYNC_READ_OVERHEAD
            + size / self.profile.seq_read_bw
        )
        with self._lock:
            self.stats.reads += 1
            self.stats.bytes_read += size
            self.stats.busy_time += service
            self.stats.rand_reads += 1
            self.clock.advance(service)
        self._obs_read_latency.observe(service)
        return self.store.read(offset, size)

    def trim(self, offset: int, size: int) -> None:
        """Discard a range (deleting a materialized run); free, like TRIM."""
        self.store.discard(offset, size)

    # ------------------------------------------------------------------ wear
    @property
    def wear_cycles(self) -> float:
        """Average program/erase cycles consumed per cell so far."""
        return self.stats.bytes_written / self.profile.capacity

    def lifetime_years(self, sustained_write_rate: float) -> float:
        """Years the device lasts at ``sustained_write_rate`` bytes/second.

        Section 3.7's arithmetic: endurance_cycles * capacity total bytes may
        be programmed (e.g. a 32 GB X25-E endures 3.2 PB).
        """
        if sustained_write_rate <= 0:
            return float("inf")
        total = self.profile.endurance_cycles * self.profile.capacity
        seconds = total / sustained_write_rate
        return seconds / (365.0 * 24 * 3600)
