"""Simulated magnetic disk (HDD).

The service-time model is the classic seek-curve + rotational-latency +
transfer decomposition:

* An access that continues exactly where the head stopped is *sequential*
  and pays only transfer time (``bytes / bandwidth``).
* Any other access pays a seek proportional to
  ``track_to_track + (full_stroke - track_to_track) * sqrt(distance_fraction)``
  plus half a revolution of rotational latency, then transfer time.
* A write that lands on the sectors the head just read (an in-place
  read-modify-write, the paper's conventional update path) must wait a full
  revolution for the sectors to come around again.

With the Barracuda constants these reproduce the paper's measured disk
behaviour: ~14.7 ms per random 4 KB write (68/s in Figure 12) and ~21 ms per
4 KB in-place read-modify-write (48/s).  Most importantly, the persistent
head position makes workload *interference* emerge naturally: random updates
interleaved with a sequential scan force the scan to re-seek, which is the
1.6x extra slowdown of Section 2.2.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.obs.registry import get_registry
from repro.storage.clock import SimClock
from repro.storage.device import BARRACUDA_HDD, Device, DeviceProfile


class SimulatedDisk(Device):
    """An HDD with a persistent head position and a seek-curve cost model."""

    def __init__(
        self,
        profile: DeviceProfile = BARRACUDA_HDD,
        clock: Optional[SimClock] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None:
            profile = profile.with_capacity(capacity)
        super().__init__(profile, clock)
        self._head = 0  # byte address just past the last access
        # Head travel per repositioning, as a fraction of the full stroke:
        # the distribution separates "track-to-track shuffle" interference
        # from "full-stroke ping-pong" interference (Section 2.2).
        self._obs_seek_fraction = get_registry().histogram(
            f"device.{profile.name}.seek.stroke_fraction"
        )

    @property
    def head_position(self) -> int:
        """Byte address immediately after the most recent access."""
        return self._head

    def seek_time(self, distance: int) -> float:
        """Arm repositioning time for a given byte distance (no rotation)."""
        if distance == 0:
            return 0.0
        p = self.profile
        fraction = min(1.0, abs(distance) / p.capacity)
        return p.seek_track_to_track + (
            p.seek_full_stroke - p.seek_track_to_track
        ) * math.sqrt(fraction)

    def _access_time(self, offset: int, size: int, bandwidth: float):
        p = self.profile
        distance = offset - self._head
        sequential = distance == 0
        if sequential:
            reposition = 0.0
        elif 0 < -distance <= size:
            # Rewriting sectors the head just passed (in-place write-back):
            # the platter must complete a full revolution.
            reposition = p.rotation_time
        else:
            reposition = self.seek_time(distance) + p.rotation_time / 2.0
            self._obs_seek_fraction.observe(
                min(1.0, abs(distance) / p.capacity)
            )
        transfer = size / bandwidth
        self._head = offset + size
        return reposition + transfer, reposition, sequential

    def _read_time(self, offset: int, size: int):
        return self._access_time(offset, size, self.profile.seq_read_bw)

    def _write_time(self, offset: int, size: int):
        return self._access_time(offset, size, self.profile.seq_write_bw)
