"""Asynchronous-I/O overlap model and CPU accounting.

The paper's prototype issues disk and SSD I/O through libaio so that SSD
reads of cached updates overlap the disk table scan, and in-memory merge CPU
overlaps both (Sections 3.7, 4.1 and Figure 13).  We reproduce that with
critical-path accounting instead of real threads:

* every device accumulates ``busy_time`` as requests are serviced;
* CPU work is charged to a :class:`CpuMeter`;
* a measured region's *elapsed* time is the **maximum** of the per-device
  busy-time deltas and the CPU delta — resources proceed in parallel, so the
  slowest one is the wall clock.

Interference between workloads sharing one device needs no special handling:
both workloads' service times land on the same device's busy_time, and the
HDD head model charges the extra seeks they cause each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.errors import TransientIOError
from repro.obs.registry import get_registry
from repro.obs.tracing import trace
from repro.storage.clock import SimClock
from repro.storage.device import Device
from repro.storage.stats import IOStats


class CpuMeter:
    """Accumulates simulated CPU seconds spent by query processing.

    Charges may carry a *cost class* (``kind``) — ``"merge"``, ``"decode"``,
    ``"combine"``, ``"scan"``, ... — accumulated per class in
    :attr:`by_class` alongside the undifferentiated :attr:`total`.  The
    figure-13 CPU-cost driver uses the per-class breakdown to attribute
    merge time correctly instead of lumping every cycle under the single
    ``MERGE_CPU_PER_UPDATE`` constant.
    """

    __slots__ = ("total", "by_class")

    def __init__(self) -> None:
        self.total = 0.0
        self.by_class: dict[str, float] = {}

    def charge(self, seconds: float, kind: Optional[str] = None) -> None:
        if seconds < 0:
            raise ValueError(f"cannot charge negative CPU time ({seconds})")
        self.total += seconds
        if kind is not None:
            self.by_class[kind] = self.by_class.get(kind, 0.0) + seconds

    def charge_batch(
        self, count: int, per_unit: float, kind: Optional[str] = None
    ) -> None:
        """Charge ``count`` units of work at ``per_unit`` seconds each.

        The batch-oriented operators account CPU once per batch of records
        (decoded block, merge chunk) instead of once per record; the total
        charged is identical, only the charging granularity changes.
        """
        if count < 0 or per_unit < 0:
            raise ValueError(
                f"cannot charge negative CPU work ({count} x {per_unit})"
            )
        if count:
            seconds = count * per_unit
            self.total += seconds
            if kind is not None:
                self.by_class[kind] = self.by_class.get(kind, 0.0) + seconds

    def class_total(self, kind: str) -> float:
        """Seconds charged under one cost class (0.0 if never charged)."""
        return self.by_class.get(kind, 0.0)

    def snapshot(self) -> float:
        return self.total


class RetryPolicy:
    """Bounded retry with exponential backoff for transient I/O failures.

    Real I/O schedulers reissue commands that fail transiently (bus resets,
    timeouts) before surfacing an error; the simulated stack does the same so
    a :class:`~repro.errors.TransientIOError` injected by a fault plan is
    invisible to correctness — only to latency.  Backoff is charged to the
    :class:`SimClock`, so retries show up in measured elapsed times.

    Only ``TransientIOError`` is retried.  Persistent damage — above all
    :class:`~repro.errors.ChecksumError` — is **never** retried: the stored
    bytes will not improve on a second read, and re-reading corrupt media
    would only delay quarantine and fallback.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_backoff: float = 0.5e-3,
        backoff_multiplier: float = 2.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_backoff < 0:
            raise ValueError(f"base_backoff must be >= 0, got {base_backoff}")
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.backoff_multiplier = backoff_multiplier

    def call(self, operation, clock: Optional[SimClock] = None):
        """Run ``operation`` with retries; returns its result.

        Re-raises the last :class:`TransientIOError` once ``max_attempts``
        are exhausted.  Every other exception propagates immediately.
        """
        backoff = self.base_backoff
        for attempt in range(self.max_attempts):
            try:
                return operation()
            except TransientIOError:
                registry = get_registry()
                if attempt + 1 >= self.max_attempts:
                    registry.counter("iosched.retries_exhausted").add(1)
                    raise
                registry.counter("iosched.retries").add(1)
                if clock is not None and backoff > 0:
                    registry.counter("iosched.backoff_seconds").add(backoff)
                    clock.advance(backoff)
                backoff *= self.backoff_multiplier
        raise AssertionError("unreachable")  # pragma: no cover


#: Policy used by every :class:`~repro.storage.file.StorageVolume` unless a
#: caller provides its own.  Four attempts outlast any fault plan honouring
#: the default ``max_consecutive_errors=2`` cap.
DEFAULT_RETRY_POLICY = RetryPolicy()


#: Default CPU cost to merge one cached update into the scan output stream.
#: The paper reports the merge CPU overhead is "insignificant" relative to
#: I/O (Figure 13); this keeps it non-zero so the model stays honest.
MERGE_CPU_PER_UPDATE = 0.2e-6

#: Default CPU cost to deliver one record from a scan (tuple handling).
SCAN_CPU_PER_RECORD = 0.05e-6

#: Merged records are charged to the CPU meter in batches of this many —
#: per-batch accounting keeps the meter honest even when a consumer stops
#: early, without a meter call per record on the hot path.
MERGE_CPU_BATCH = 4096

#: Per-class split of the merge cost for the columnar kernel path.  The
#: kernel charges each consumed update once per class — decode (column/
#: record materialization), merge (sort + gather) — plus a combine charge
#: per record absorbed into a same-key chain.  Decode + merge equals
#: ``MERGE_CPU_PER_UPDATE`` so the kernel and record-at-a-time paths stay
#: directly comparable in figure 13; only the attribution gains resolution.
KERNEL_DECODE_CPU_PER_UPDATE = 0.05e-6
KERNEL_MERGE_CPU_PER_UPDATE = 0.15e-6
KERNEL_COMBINE_CPU_PER_UPDATE = 0.02e-6


@dataclass
class TimeBreakdown:
    """Result of a measured region: per-resource busy time and the elapsed
    critical path under the asynchronous-overlap model."""

    device_busy: dict[str, float] = field(default_factory=dict)
    device_stats: dict[str, IOStats] = field(default_factory=dict)
    cpu: float = 0.0
    # Serial composition of phases (combine_serial) raises this floor: the
    # region cannot finish faster than the sum of its serial phases.
    serial_floor: float = 0.0

    @property
    def elapsed(self) -> float:
        """Wall-clock under full async overlap: the slowest resource."""
        busiest = max(self.device_busy.values(), default=0.0)
        return max(busiest, self.cpu, self.serial_floor)

    @property
    def serial_elapsed(self) -> float:
        """Wall-clock if nothing overlapped (sum of all resources)."""
        return sum(self.device_busy.values()) + self.cpu

    def busy(self, label: str) -> float:
        """Busy seconds of one labelled device (0.0 if it never worked)."""
        return self.device_busy.get(label, 0.0)

    def stats(self, label: str) -> IOStats:
        return self.device_stats.get(label, IOStats())


class OverlapWindow:
    """Context manager measuring a region across devices and CPU.

    >>> window = OverlapWindow({"disk": disk, "ssd": ssd}, cpu)
    >>> with window:
    ...     run_query()
    >>> window.result.elapsed   # max(disk busy, ssd busy, cpu)
    """

    def __init__(
        self,
        devices: Mapping[str, Device],
        cpu: Optional[CpuMeter] = None,
        label: str = "region",
    ) -> None:
        self._devices = dict(devices)
        self._cpu = cpu
        self._label = label
        self._before: dict[str, IOStats] = {}
        self._cpu_before = 0.0
        self._span = None
        self.result: Optional[TimeBreakdown] = None

    def __enter__(self) -> "OverlapWindow":
        self._before = {name: dev.snapshot() for name, dev in self._devices.items()}
        self._cpu_before = self._cpu.snapshot() if self._cpu else 0.0
        self.result = None
        self._span = trace(f"measure.{self._label}")
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        breakdown = TimeBreakdown()
        for name, dev in self._devices.items():
            delta = dev.stats.delta(self._before[name])
            breakdown.device_stats[name] = delta
            breakdown.device_busy[name] = delta.busy_time
        if self._cpu:
            breakdown.cpu = self._cpu.total - self._cpu_before
        self.result = breakdown
        # The span brackets the simulated region; the registry keeps the
        # overlap outcome: critical-path elapsed vs the no-overlap sum, per
        # measured phase and per device.
        if self._span is not None:
            self._span.annotate(
                elapsed=breakdown.elapsed, serial=breakdown.serial_elapsed
            )
            self._span.__exit__(exc_type, exc, tb)
            self._span = None
        registry = get_registry()
        registry.histogram(f"measure.{self._label}.elapsed").observe(
            breakdown.elapsed
        )
        registry.counter(f"measure.{self._label}.cpu_seconds").add(breakdown.cpu)
        for name, busy in breakdown.device_busy.items():
            registry.counter(f"measure.{self._label}.busy.{name}").add(busy)

    @property
    def elapsed(self) -> float:
        if self.result is None:
            raise RuntimeError("OverlapWindow has not exited yet")
        return self.result.elapsed


def measure(devices: Mapping[str, Device], cpu: Optional[CpuMeter], fn, *args, **kwargs):
    """Run ``fn`` inside an :class:`OverlapWindow`; return (result, breakdown).

    ``label`` (keyword-only) names the region's span and registry series.
    """
    window = OverlapWindow(devices, cpu, label=kwargs.pop("label", "region"))
    with window:
        value = fn(*args, **kwargs)
    return value, window.result


def combine_serial(parts: Sequence[TimeBreakdown]) -> TimeBreakdown:
    """Combine breakdowns of phases that run one after another.

    Each phase overlaps internally, but phases are serial, so elapsed times
    add while per-device totals also add (useful for multi-scan queries).
    """
    combined = TimeBreakdown()
    elapsed = 0.0
    for part in parts:
        elapsed += part.elapsed
        combined.cpu += part.cpu
        for name, busy in part.device_busy.items():
            combined.device_busy[name] = combined.device_busy.get(name, 0.0) + busy
        for name, stats in part.device_stats.items():
            if name in combined.device_stats:
                combined.device_stats[name] = combined.device_stats[name] + stats
            else:
                combined.device_stats[name] = stats
    combined.serial_floor = elapsed
    return combined
