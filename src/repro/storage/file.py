"""Named files over a simulated device, with extent allocation.

A :class:`StorageVolume` owns a device's address space and hands out
contiguous extents as :class:`SimFile` objects.  Contiguity matters: on the
HDD it is what lets a table scan run at sequential bandwidth, and on the SSD
it keeps materialized-run writes append-only.  The allocator is a first-fit
free list with coalescing — simple, deterministic, and sufficient for the
file populations this library creates (tables, sorted runs, logs).
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from repro.errors import DuplicateFileError, OutOfSpaceError, StorageError
from repro.storage.device import Device
from repro.storage.iosched import DEFAULT_RETRY_POLICY, RetryPolicy


class SimFile:
    """A contiguous extent of a device, addressed from zero.

    Reads and writes are bounds-checked against the file size and charged to
    the underlying device's simulated clock and statistics.
    """

    def __init__(self, volume: "StorageVolume", name: str, offset: int, size: int):
        self._volume = volume
        self.name = name
        self.offset = offset
        self.size = size
        self._append_pos = 0
        self._closed = False

    @property
    def volume(self) -> "StorageVolume":
        return self._volume

    @property
    def device(self) -> Device:
        return self._volume.device

    @property
    def append_pos(self) -> int:
        """Current append cursor (bytes written via :meth:`append`)."""
        return self._append_pos

    def _check(self, offset: int, size: int) -> None:
        if self._closed:
            raise StorageError(f"file {self.name!r} is deleted")
        if offset < 0 or size < 0 or offset + size > self.size:
            raise StorageError(
                f"file {self.name!r}: access [{offset}, {offset + size}) "
                f"outside size {self.size}"
            )

    def _retry(self, operation):
        policy = self._volume.retry_policy
        if policy is None:
            return operation()
        return policy.call(operation, clock=self.device.clock)

    def read(self, offset: int, size: int) -> bytes:
        self._check(offset, size)
        return self._retry(lambda: self.device.read(self.offset + offset, size))

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self._retry(lambda: self.device.write(self.offset + offset, data))
        self._append_pos = max(self._append_pos, offset + len(data))

    def append(self, data: bytes) -> int:
        """Write at the append cursor; returns the file offset written at."""
        at = self._append_pos
        self._check(at, len(data))
        self._retry(lambda: self.device.write(self.offset + at, data))
        self._append_pos = at + len(data)
        return at

    def seek_append(self, pos: int) -> None:
        """Reposition the append cursor.

        Used after crash recovery: the cursor is volatile, so a reopened
        log scans its contents and then seeks past the surviving records —
        otherwise fresh appends would overwrite them.
        """
        if pos < 0 or pos > self.size:
            raise StorageError(
                f"file {self.name!r}: append cursor {pos} outside size {self.size}"
            )
        self._append_pos = pos

    def zero_range(self, offset: int, size: int, chunk: int = 256 * 1024) -> int:
        """Overwrite ``[offset, offset + size)`` with zeroes; returns ``size``.

        The reclaim primitive behind WAL prefix truncation: a log that
        compacted its live tail to the front of the file zeroes the stale
        remainder so a post-crash scan (which reads until the first invalid
        frame) cannot resurrect pre-truncation records.  Writes are chunked
        so callers can account (and pace) the reclaim like any other I/O.

        Does **not** move the append cursor: the caller decides where the
        live content now ends (:meth:`seek_append`), and zeroing stale space
        beyond it must not push the cursor back out.
        """
        self._check(offset, size)
        saved = self._append_pos
        written = 0
        while written < size:
            step = min(chunk, size - written)
            self._retry(
                lambda o=offset + written, n=step: self.device.write(
                    self.offset + o, bytes(n)
                )
            )
            written += step
        self._append_pos = saved
        return size

    def read_batch(self, requests: list[tuple[int, int]]) -> list[bytes]:
        """Batched (asynchronously overlapped) reads, where supported."""
        for offset, size in requests:
            self._check(offset, size)
        absolute = [(self.offset + offset, size) for offset, size in requests]
        batch = getattr(self.device, "read_batch", None)
        if batch is not None:
            return self._retry(lambda: batch(absolute))
        return [
            self._retry(lambda o=offset, s=size: self.device.read(o, s))
            for offset, size in absolute
        ]

    def peek(self, offset: int, size: int) -> bytes:
        """Read without charging simulated time (recovery inspection)."""
        self._check(offset, size)
        return self.device.peek(self.offset + offset, size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimFile({self.name!r}, offset={self.offset}, size={self.size})"


class StorageVolume:
    """Allocates named contiguous files on one simulated device.

    Every file I/O runs under the volume's ``retry_policy`` (the shared
    :data:`~repro.storage.iosched.DEFAULT_RETRY_POLICY` unless overridden),
    so transient device faults are absorbed with bounded, clock-charged
    retries at one central choke point instead of per caller.  Pass
    ``retry_policy=None`` to let transient errors surface immediately.
    """

    def __init__(
        self,
        device: Device,
        retry_policy: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
    ) -> None:
        self.device = device
        self.retry_policy = retry_policy
        self._files: dict[str, SimFile] = {}
        # Free extents as sorted (offset, size) pairs covering unused space.
        self._free: list[tuple[int, int]] = [(0, device.capacity)]
        self._lock = threading.Lock()

    # ------------------------------------------------------------ allocation
    def create(self, name: str, size: int) -> SimFile:
        """Allocate a new file of exactly ``size`` bytes (first-fit)."""
        if size <= 0:
            raise StorageError(f"file size must be positive, got {size}")
        with self._lock:
            if name in self._files:
                raise DuplicateFileError(
                    f"file {name!r} already exists on {self.device.name}"
                )
            for i, (offset, extent) in enumerate(self._free):
                if extent >= size:
                    remainder = extent - size
                    if remainder:
                        self._free[i] = (offset + size, remainder)
                    else:
                        del self._free[i]
                    handle = SimFile(self, name, offset, size)
                    self._files[name] = handle
                    return handle
            free = sum(extent for _, extent in self._free)
            raise OutOfSpaceError(
                f"no contiguous extent of {size} bytes on {self.device.name} "
                f"(free: {free} in {len(self._free)} extents)"
            )

    def delete(self, name: str) -> None:
        """Delete a file, returning (and TRIMming) its extent."""
        with self._lock:
            handle = self._files.pop(name, None)
            if handle is None:
                raise StorageError(f"file {name!r} does not exist")
            handle._closed = True
            trim = getattr(self.device, "trim", None)
            if trim is not None:
                trim(handle.offset, handle.size)
            self._release(handle.offset, handle.size)

    def _release(self, offset: int, size: int) -> None:
        self._free.append((offset, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((off, sz))
        self._free = merged

    def shrink(self, name: str, new_size: int) -> None:
        """Release the tail of a file's extent (e.g. after a streamed write
        used less than its pre-allocated size)."""
        with self._lock:
            handle = self._files.get(name)
            if handle is None:
                raise StorageError(f"file {name!r} does not exist")
            if new_size <= 0 or new_size > handle.size:
                raise StorageError(
                    f"cannot shrink {name!r} from {handle.size} to {new_size}"
                )
            freed = handle.size - new_size
            if freed == 0:
                return
            handle.size = new_size
            handle._append_pos = min(handle._append_pos, new_size)
            trim = getattr(self.device, "trim", None)
            if trim is not None:
                trim(handle.offset + new_size, freed)
            self._release(handle.offset + new_size, freed)

    # --------------------------------------------------------------- queries
    def open(self, name: str) -> SimFile:
        with self._lock:
            handle = self._files.get(name)
        if handle is None:
            raise StorageError(f"file {name!r} does not exist")
        return handle

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._files

    def __contains__(self, name: str) -> bool:
        return self.exists(name)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._files))

    @property
    def free_bytes(self) -> int:
        with self._lock:
            return sum(size for _, size in self._free)

    @property
    def used_bytes(self) -> int:
        return self.device.capacity - self.free_bytes
