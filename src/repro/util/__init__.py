"""Small shared helpers (byte/time units, numeric utilities)."""

from repro.util.units import GB, KB, MB, MS, TB, US, ceil_div, fmt_bytes, fmt_time, parse_bytes

__all__ = [
    "GB",
    "KB",
    "MB",
    "MS",
    "TB",
    "US",
    "ceil_div",
    "fmt_bytes",
    "fmt_time",
    "parse_bytes",
]
