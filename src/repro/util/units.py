"""Byte-size and time-unit helpers.

All sizes in this codebase are plain integers counted in bytes, and all
simulated times are floats counted in seconds.  These constants and helpers
keep call sites readable (``4 * MB`` rather than ``4194304``).
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

US = 1e-6
MS = 1e-3

_SUFFIXES = [("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)]


def fmt_bytes(n: int) -> str:
    """Render a byte count with the largest suffix that keeps it readable.

    >>> fmt_bytes(4 * 1024 * 1024)
    '4MB'
    >>> fmt_bytes(1536)
    '1.5KB'
    """
    for suffix, unit in _SUFFIXES:
        if abs(n) >= unit:
            value = n / unit
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.3g}{suffix}"
    return "0B"


def parse_bytes(text: str) -> int:
    """Parse a human-readable size such as ``'64KB'`` or ``'4 GB'`` to bytes.

    Raises ``ValueError`` for malformed input.
    """
    cleaned = text.strip().upper().replace(" ", "")
    for suffix, unit in _SUFFIXES:
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)]
            return int(float(number) * unit)
    # A bare number means bytes.
    return int(float(cleaned))


def fmt_time(seconds: float) -> str:
    """Render a duration in the most natural unit.

    >>> fmt_time(0.0025)
    '2.50ms'
    """
    if seconds >= 1.0:
        return f"{seconds:.3g}s"
    if seconds >= MS:
        return f"{seconds / MS:.3g}ms"
    return f"{seconds / US:.3g}us"


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division: the number of size-``b`` chunks covering ``a``."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)
