"""The redo log (Section 3.6, "Crash Recovery").

MaSM only needs to recover the *in-memory* update buffer after a crash:
materialized runs live on the (non-volatile) SSD, and migrations are
idempotent thanks to page timestamps, so data-page changes are never logged.
The log therefore carries these record kinds:

* ``UPDATE``          — one well-formed update (timestamp, table, payload);
* ``RUN_FLUSH``       — the buffer up to a timestamp became run ``name``;
* ``MIGRATION_START`` / ``MIGRATION_END`` — bracketing records that let
  recovery redo an interrupted migration;
* ``RUN_MERGE``       — runs ``run_names`` are being merged into run
  ``run_name``; written *before* the product run is materialized, so the
  product file's intact existence is the merge's commit point and recovery
  can discard superseded victim files a crash left behind.
* ``MERGE_SLICE``     — one key-range slice of an *incremental* merge: keys
  in ``key_range`` of the victim runs ``run_names`` move into slice product
  ``run_name``.  Same commit-point discipline as ``RUN_MERGE`` (record
  first, product file's intact existence commits the slice); the victims
  stay live with the slice's key range masked until committed slices cover
  the whole key domain, at which point recovery retires them.
* ``CHECKPOINT``      — a durability fence (:class:`Checkpoint`): every
  update with ``ts <= checkpoint_ts`` is durable in the manifest's runs or
  migrated in place, so the log prefix holding those records is dead weight
  and :meth:`RedoLog.truncate_through` may reclaim it.  Recovery seeds its
  flushed/migrated watermarks and the manifest runs' covered-ts spans from
  the newest CHECKPOINT instead of from the (now absent) prefix records.

Records are length-prefixed, CRC-protected and appended sequentially; the
log is itself a file on a simulated device, so logging I/O is accounted like
everything else.  The per-record CRC (covering the type byte and payload)
lets recovery distinguish a torn tail — the last record lost to a crash
mid-append, which is expected and safely skipped — from corruption earlier
in the log, which is not.

Truncation is compaction: the surviving suffix (records newer than the
fence) is rewritten to the front of the file behind a fresh CHECKPOINT
record, the append cursor drops back, and the stale remainder is zeroed
*lazily* in paced slices (:meth:`RedoLog.scrub_dirty`) so reclaiming a
large prefix never stalls a foreground update.  Until a stale byte is
zeroed it can only hold pre-fence frames, which post-truncation recovery
filters by timestamp anyway — laziness trades no correctness.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, Optional

from repro.core.update import UpdateCodec, UpdateRecord
from repro.errors import RecoveryError
from repro.obs import get_registry
from repro.storage.checksum import checksum
from repro.storage.faults import crash_point
from repro.storage.file import SimFile

_FRAME = struct.Struct("<IBI")  # payload length, record type, crc


class LogRecordType(IntEnum):
    UPDATE = 1
    RUN_FLUSH = 2
    MIGRATION_START = 3
    MIGRATION_END = 4
    RUN_MERGE = 5
    CHECKPOINT = 6
    MERGE_SLICE = 7


@dataclass(frozen=True)
class RunManifestEntry:
    """One run's durability metadata inside a :class:`Checkpoint`.

    The covered timestamp span is the *raw* span the run is the durable
    home of (content-derived spans may be narrower after duplicate
    combining); the migrated ranges are the key spans already applied in
    place, which are volatile and must survive truncation of the
    MIGRATION records that created them.
    """

    name: str
    covered_min_ts: int
    covered_max_ts: int
    migrated_ranges: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class Checkpoint:
    """An engine-state fence: proof that a WAL prefix is reclaimable.

    Every update of ``table`` with ``ts <= checkpoint_ts`` is durable in
    one of the manifest's runs or was migrated in place (``ts <=
    migrated_ts``).  Log records at or below the fence therefore carry no
    information recovery still needs — *provided* this record survives to
    seed the watermarks those records used to establish.
    """

    table: str
    checkpoint_ts: int
    migrated_ts: int
    runs: tuple[RunManifestEntry, ...] = ()


@dataclass(frozen=True)
class TruncationReport:
    """What one :meth:`RedoLog.truncate_through` call did."""

    reclaimed_bytes: int
    records_dropped: int
    records_kept: int
    live_bytes: int
    dirty_bytes: int


@dataclass(frozen=True)
class LogRecord:
    """One decoded log record; unused fields are None."""

    type: LogRecordType
    timestamp: int
    table: Optional[str] = None
    update: Optional[UpdateRecord] = None
    run_name: Optional[str] = None
    run_names: Optional[tuple[str, ...]] = None
    key_range: Optional[tuple[int, int]] = None
    #: RUN_MERGE only: the product's covered timestamp span (union of the
    #: victims' spans).  Restored on recovery because the reloaded span is
    #: derived from content, which combine may have narrowed.
    covered_ts: Optional[tuple[int, int]] = None
    #: CHECKPOINT only: the full decoded fence + run manifest.
    checkpoint: Optional[Checkpoint] = None


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<H", data, offset)
    start = offset + 2
    return data[start : start + length].decode("utf-8"), start + length


class RedoLog:
    """Append-only redo log over a simulated file."""

    def __init__(self, file: SimFile, codecs: Optional[dict[str, UpdateCodec]] = None):
        self.file = file
        #: table name -> codec, needed to decode UPDATE payloads on replay.
        self.codecs = dict(codecs or {})
        self.records_written = 0
        #: Newest checkpoint fence this log was truncated through: records
        #: with ``ts <= truncated_through`` are gone, so any path that
        #: replays a timestamp range from this log (log-fallback scans,
        #: catch-up) must first check its range starts *above* this.
        self.truncated_through = 0
        #: Stale byte span left behind by truncation, zeroed lazily in
        #: paced slices; ``[start, end)`` in file offsets, None when clean.
        self._dirty_start = 0
        self._dirty_end = 0
        registry = get_registry()
        self._obs_records = registry.counter("txn.log.records_written")
        self._obs_bytes = registry.counter("txn.log.bytes_written")

    @property
    def live_bytes(self) -> int:
        """Bytes of live (non-reclaimed) log content."""
        return self.file.append_pos

    @property
    def dirty_bytes(self) -> int:
        """Stale post-truncation bytes not yet zeroed by :meth:`scrub_dirty`."""
        start = max(self._dirty_start, self.file.append_pos)
        return max(0, self._dirty_end - start)

    def register_table(self, name: str, codec: UpdateCodec) -> None:
        self.codecs[name] = codec

    # ---------------------------------------------------------------- writes
    def _append(self, rtype: LogRecordType, payload: bytes) -> None:
        crc = checksum(bytes([int(rtype)]) + payload)
        frame = _FRAME.pack(len(payload), int(rtype), crc) + payload
        crash_point("wal.append")
        self.file.append(frame)
        self._zero_guard()
        self.records_written += 1
        self._obs_records.add(1)
        self._obs_bytes.add(len(frame))

    def _zero_guard(self) -> None:
        """Zero one frame header's worth of stale bytes after the log end.

        While a lazily-zeroed dirty region trails the live content, the
        bytes right after the append cursor are remnants of pre-truncation
        frames.  A post-crash scan stops at the first invalid frame — but a
        stale frame that happens to start exactly at the cursor would parse
        as valid and resurrect a dropped (or worse, duplicate a surviving)
        record.  Keeping the next header zeroed makes the scan's stopping
        point deterministic.
        """
        pos = self.file.append_pos
        if self._dirty_end > pos:
            self.file.zero_range(pos, min(_FRAME.size, self._dirty_end - pos))

    def log_update(self, table: str, update: UpdateRecord) -> None:
        codec = self.codecs.get(table)
        if codec is None:
            raise RecoveryError(f"no codec registered for table {table!r}")
        self._append(
            LogRecordType.UPDATE, _pack_str(table) + codec.encode(update)
        )

    def log_run_flush(self, table: str, run_name: str, max_ts: int) -> None:
        payload = struct.pack("<Q", max_ts) + _pack_str(table) + _pack_str(run_name)
        self._append(LogRecordType.RUN_FLUSH, payload)

    def log_migration_start(
        self,
        timestamp: int,
        run_names: list[str],
        key_range: Optional[tuple[int, int]] = None,
    ) -> None:
        lo, hi = key_range if key_range is not None else (0, 2**63 - 1)
        payload = struct.pack("<QqqH", timestamp, lo, hi, len(run_names))
        for name in run_names:
            payload += _pack_str(name)
        self._append(LogRecordType.MIGRATION_START, payload)

    def log_migration_end(self, timestamp: int) -> None:
        self._append(LogRecordType.MIGRATION_END, struct.pack("<Q", timestamp))

    def log_run_merge(
        self,
        timestamp: int,
        product: str,
        victims: list[str],
        covered_ts: tuple[int, int],
    ) -> None:
        payload = struct.pack(
            "<QQQH", timestamp, covered_ts[0], covered_ts[1], len(victims)
        ) + _pack_str(product)
        for name in victims:
            payload += _pack_str(name)
        self._append(LogRecordType.RUN_MERGE, payload)

    def log_merge_slice(
        self,
        timestamp: int,
        product: str,
        victims: list[str],
        key_range: tuple[int, int],
        covered_ts: tuple[int, int],
    ) -> None:
        payload = struct.pack(
            "<QQQqqH",
            timestamp,
            covered_ts[0],
            covered_ts[1],
            key_range[0],
            key_range[1],
            len(victims),
        ) + _pack_str(product)
        for name in victims:
            payload += _pack_str(name)
        self._append(LogRecordType.MERGE_SLICE, payload)

    def log_checkpoint(self, checkpoint: Checkpoint) -> None:
        self._append(
            LogRecordType.CHECKPOINT, self._encode_checkpoint(checkpoint)
        )
        get_registry().counter("txn.log.checkpoints_written").add(1)

    @staticmethod
    def _encode_checkpoint(checkpoint: Checkpoint) -> bytes:
        payload = struct.pack(
            "<QQ", checkpoint.checkpoint_ts, checkpoint.migrated_ts
        ) + _pack_str(checkpoint.table)
        payload += struct.pack("<H", len(checkpoint.runs))
        for entry in checkpoint.runs:
            payload += _pack_str(entry.name)
            payload += struct.pack(
                "<QQH",
                entry.covered_min_ts,
                entry.covered_max_ts,
                len(entry.migrated_ranges),
            )
            for lo, hi in entry.migrated_ranges:
                payload += struct.pack("<qq", lo, hi)
        return payload

    # ----------------------------------------------------------- truncation
    def truncate_through(self, checkpoint: Checkpoint) -> TruncationReport:
        """Reclaim the log prefix the checkpoint fence makes dead weight.

        Compacts in place: records newer than ``checkpoint.checkpoint_ts``
        (plus records of other tables) are rewritten to the front of the
        file behind a fresh CHECKPOINT record, and the append cursor drops
        back to the end of the compacted content.  The stale remainder is
        *not* zeroed here — it becomes the dirty region that
        :meth:`scrub_dirty` reclaims in paced slices — so the synchronous
        cost of truncation is proportional to the small live suffix, not
        to the (potentially huge) reclaimed prefix.

        Correctness of the lazy zeroing: a crash before the dirty region
        is clean can only resurrect whole pre-fence frames, and recovery
        reads the CHECKPOINT first, so every such record is filtered by
        its timestamp exactly as if it had survived legitimately.
        """
        end = self.file.append_pos
        survivors: list[bytes] = []
        dropped = 0
        offset = 0
        while offset < end:
            header = self.file.read(offset, _FRAME.size)
            length, rtype_raw, stored_crc = _FRAME.unpack(header)
            payload = self.file.read(offset + _FRAME.size, length)
            if checksum(bytes([rtype_raw & 0xFF]) + payload) != stored_crc:
                raise RecoveryError(
                    f"live log record at offset {offset} failed checksum; "
                    "refusing to truncate"
                )
            offset += _FRAME.size + length
            record = self._decode(LogRecordType(rtype_raw), payload)
            if self._survives(record, checkpoint):
                survivors.append(header + payload)
            else:
                dropped += 1
        cp_payload = self._encode_checkpoint(checkpoint)
        cp_crc = checksum(bytes([int(LogRecordType.CHECKPOINT)]) + cp_payload)
        frames = [
            _FRAME.pack(len(cp_payload), int(LogRecordType.CHECKPOINT), cp_crc)
            + cp_payload
        ] + survivors
        content = b"".join(frames)
        if len(content) > self.file.size:
            raise RecoveryError(
                f"compacted log ({len(content)} bytes) exceeds the log file "
                f"({self.file.size} bytes)"
            )
        crash_point("wal.truncate")
        self.file.write(0, content)
        new_end = len(content)
        self._dirty_start = new_end
        self._dirty_end = max(self._dirty_end, end)
        self.file.seek_append(new_end)
        self._zero_guard()
        self.truncated_through = max(
            self.truncated_through, checkpoint.checkpoint_ts
        )
        reclaimed = max(0, end - new_end)
        registry = get_registry()
        registry.counter("txn.log.truncations").add(1)
        registry.counter("txn.log.bytes_reclaimed").add(reclaimed)
        registry.counter("txn.log.checkpoints_written").add(1)
        return TruncationReport(
            reclaimed_bytes=reclaimed,
            records_dropped=dropped,
            records_kept=len(survivors),
            live_bytes=new_end,
            dirty_bytes=self.dirty_bytes,
        )

    @staticmethod
    def _survives(record: LogRecord, checkpoint: Checkpoint) -> bool:
        """Does ``record`` still carry information past the fence?"""
        if record.type is LogRecordType.CHECKPOINT:
            # Superseded by the fresh checkpoint (same table only).
            return record.table != checkpoint.table
        if record.type in (LogRecordType.UPDATE, LogRecordType.RUN_FLUSH):
            if record.table != checkpoint.table:
                return True
        return record.timestamp > checkpoint.checkpoint_ts

    def scrub_dirty(self, max_bytes: Optional[int] = None) -> int:
        """Zero up to ``max_bytes`` of the stale post-truncation region.

        Returns the bytes zeroed (0 = clean).  Called in paced slices by
        background maintenance; appends that advanced over stale bytes
        shrink the region for free (a fresh frame is as good as zeroes).
        """
        start = max(self._dirty_start, self.file.append_pos)
        pending = self._dirty_end - start
        if pending <= 0:
            self._dirty_start = self._dirty_end = 0
            return 0
        step = pending if max_bytes is None else max(1, min(max_bytes, pending))
        self.file.zero_range(start, step)
        self._dirty_start = start + step
        if self._dirty_start >= self._dirty_end:
            self._dirty_start = self._dirty_end = 0
        return step

    # ----------------------------------------------------------------- reads
    def records(self) -> Iterator[LogRecord]:
        """Replay the log from the beginning (recovery path).

        When the in-memory append cursor was lost with the crash, the log is
        scanned until the first invalid frame (unwritten space reads as
        zeroes, which no valid frame starts with).  In that scan mode, a
        *torn tail* — the final record partially persisted because the crash
        interrupted the append — fails its CRC and is skipped with the
        ``txn.log.torn_tail_skipped`` counter: the update it carried was
        never acknowledged, so dropping it is correct.  A CRC mismatch
        *before* a known end of log is real corruption and raises.
        """
        end = self.file.append_pos or self.file.size
        scanning = self.file.append_pos == 0
        offset = 0
        while offset < end:
            if offset + _FRAME.size > end:
                if scanning:
                    self._torn_tail(offset, "truncated frame header")
                    break
                raise RecoveryError("truncated log frame header")
            header = self.file.read(offset, _FRAME.size)
            length, rtype_raw, stored_crc = _FRAME.unpack(header)
            if scanning and (rtype_raw == 0 or length == 0):
                break  # end of written log
            if offset + _FRAME.size + length > end:
                if scanning:
                    self._torn_tail(offset, "truncated payload")
                    break
                raise RecoveryError("truncated log record payload")
            payload = self.file.read(offset + _FRAME.size, length)
            if checksum(bytes([rtype_raw & 0xFF]) + payload) != stored_crc:
                if scanning:
                    self._torn_tail(offset, "checksum mismatch")
                    break
                raise RecoveryError(
                    f"log record at offset {offset} failed checksum"
                )
            offset += _FRAME.size + length
            try:
                rtype = LogRecordType(rtype_raw)
            except ValueError as exc:
                raise RecoveryError(f"corrupt log record type {rtype_raw}") from exc
            record = self._decode(rtype, payload)
            if record.type is LogRecordType.CHECKPOINT:
                # A persisted checkpoint means the prefix below its fence
                # was (or may legitimately have been) reclaimed.
                self.truncated_through = max(
                    self.truncated_through, record.timestamp
                )
            yield record
        if scanning:
            # The append cursor was lost with the crash; park it after the
            # surviving records so fresh appends do not overwrite them.
            self.file.seek_append(offset)
            if self.truncated_through > 0 and offset < self.file.size:
                # The dirty-region extent was volatile too.  A checkpoint in
                # the log means a lazily-zeroed stale region may trail the
                # live content; treat everything after it as dirty so the
                # append-time guard and background scrubbing stay armed.
                self._dirty_start = offset
                self._dirty_end = self.file.size
                self._zero_guard()

    def _torn_tail(self, offset: int, reason: str) -> None:
        """Count a torn tail record found while scanning after a crash.

        Replay stops here: a record torn mid-append was never acknowledged
        to any client, so skipping it loses nothing that was promised.
        """
        get_registry().counter("txn.log.torn_tail_skipped").add(1)

    def _decode(self, rtype: LogRecordType, payload: bytes) -> LogRecord:
        if rtype == LogRecordType.UPDATE:
            table, pos = _unpack_str(payload, 0)
            codec = self.codecs.get(table)
            if codec is None:
                raise RecoveryError(f"no codec registered for table {table!r}")
            update, _ = codec.decode(payload, pos)
            return LogRecord(rtype, update.timestamp, table=table, update=update)
        if rtype == LogRecordType.RUN_FLUSH:
            (max_ts,) = struct.unpack_from("<Q", payload, 0)
            table, pos = _unpack_str(payload, 8)
            run_name, _ = _unpack_str(payload, pos)
            return LogRecord(rtype, max_ts, table=table, run_name=run_name)
        if rtype == LogRecordType.MIGRATION_START:
            timestamp, lo, hi, count = struct.unpack_from("<QqqH", payload, 0)
            pos = struct.calcsize("<QqqH")
            names = []
            for _ in range(count):
                name, pos = _unpack_str(payload, pos)
                names.append(name)
            return LogRecord(
                rtype, timestamp, run_names=tuple(names), key_range=(lo, hi)
            )
        if rtype == LogRecordType.RUN_MERGE:
            timestamp, lo, hi, count = struct.unpack_from("<QQQH", payload, 0)
            product, pos = _unpack_str(payload, struct.calcsize("<QQQH"))
            victims = []
            for _ in range(count):
                name, pos = _unpack_str(payload, pos)
                victims.append(name)
            return LogRecord(
                rtype,
                timestamp,
                run_name=product,
                run_names=tuple(victims),
                covered_ts=(lo, hi),
            )
        if rtype == LogRecordType.MERGE_SLICE:
            timestamp, cov_lo, cov_hi, key_lo, key_hi, count = struct.unpack_from(
                "<QQQqqH", payload, 0
            )
            product, pos = _unpack_str(payload, struct.calcsize("<QQQqqH"))
            victims = []
            for _ in range(count):
                name, pos = _unpack_str(payload, pos)
                victims.append(name)
            return LogRecord(
                rtype,
                timestamp,
                run_name=product,
                run_names=tuple(victims),
                key_range=(key_lo, key_hi),
                covered_ts=(cov_lo, cov_hi),
            )
        if rtype == LogRecordType.CHECKPOINT:
            checkpoint_ts, migrated_ts = struct.unpack_from("<QQ", payload, 0)
            table, pos = _unpack_str(payload, 16)
            (count,) = struct.unpack_from("<H", payload, pos)
            pos += 2
            entries = []
            for _ in range(count):
                name, pos = _unpack_str(payload, pos)
                cov_min, cov_max, ranges = struct.unpack_from("<QQH", payload, pos)
                pos += struct.calcsize("<QQH")
                spans = []
                for _ in range(ranges):
                    lo, hi = struct.unpack_from("<qq", payload, pos)
                    pos += struct.calcsize("<qq")
                    spans.append((lo, hi))
                entries.append(
                    RunManifestEntry(
                        name=name,
                        covered_min_ts=cov_min,
                        covered_max_ts=cov_max,
                        migrated_ranges=tuple(spans),
                    )
                )
            cp = Checkpoint(
                table=table,
                checkpoint_ts=checkpoint_ts,
                migrated_ts=migrated_ts,
                runs=tuple(entries),
            )
            return LogRecord(rtype, checkpoint_ts, table=table, checkpoint=cp)
        (timestamp,) = struct.unpack_from("<Q", payload, 0)
        return LogRecord(rtype, timestamp)
