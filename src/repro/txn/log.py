"""The redo log (Section 3.6, "Crash Recovery").

MaSM only needs to recover the *in-memory* update buffer after a crash:
materialized runs live on the (non-volatile) SSD, and migrations are
idempotent thanks to page timestamps, so data-page changes are never logged.
The log therefore carries these record kinds:

* ``UPDATE``          — one well-formed update (timestamp, table, payload);
* ``RUN_FLUSH``       — the buffer up to a timestamp became run ``name``;
* ``MIGRATION_START`` / ``MIGRATION_END`` — bracketing records that let
  recovery redo an interrupted migration;
* ``RUN_MERGE``       — runs ``run_names`` are being merged into run
  ``run_name``; written *before* the product run is materialized, so the
  product file's intact existence is the merge's commit point and recovery
  can discard superseded victim files a crash left behind.

Records are length-prefixed, CRC-protected and appended sequentially; the
log is itself a file on a simulated device, so logging I/O is accounted like
everything else.  The per-record CRC (covering the type byte and payload)
lets recovery distinguish a torn tail — the last record lost to a crash
mid-append, which is expected and safely skipped — from corruption earlier
in the log, which is not.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, Optional

from repro.core.update import UpdateCodec, UpdateRecord
from repro.errors import RecoveryError
from repro.obs import get_registry
from repro.storage.checksum import checksum
from repro.storage.faults import crash_point
from repro.storage.file import SimFile

_FRAME = struct.Struct("<IBI")  # payload length, record type, crc


class LogRecordType(IntEnum):
    UPDATE = 1
    RUN_FLUSH = 2
    MIGRATION_START = 3
    MIGRATION_END = 4
    RUN_MERGE = 5


@dataclass(frozen=True)
class LogRecord:
    """One decoded log record; unused fields are None."""

    type: LogRecordType
    timestamp: int
    table: Optional[str] = None
    update: Optional[UpdateRecord] = None
    run_name: Optional[str] = None
    run_names: Optional[tuple[str, ...]] = None
    key_range: Optional[tuple[int, int]] = None
    #: RUN_MERGE only: the product's covered timestamp span (union of the
    #: victims' spans).  Restored on recovery because the reloaded span is
    #: derived from content, which combine may have narrowed.
    covered_ts: Optional[tuple[int, int]] = None


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<H", data, offset)
    start = offset + 2
    return data[start : start + length].decode("utf-8"), start + length


class RedoLog:
    """Append-only redo log over a simulated file."""

    def __init__(self, file: SimFile, codecs: Optional[dict[str, UpdateCodec]] = None):
        self.file = file
        #: table name -> codec, needed to decode UPDATE payloads on replay.
        self.codecs = dict(codecs or {})
        self.records_written = 0
        registry = get_registry()
        self._obs_records = registry.counter("txn.log.records_written")
        self._obs_bytes = registry.counter("txn.log.bytes_written")

    def register_table(self, name: str, codec: UpdateCodec) -> None:
        self.codecs[name] = codec

    # ---------------------------------------------------------------- writes
    def _append(self, rtype: LogRecordType, payload: bytes) -> None:
        crc = checksum(bytes([int(rtype)]) + payload)
        frame = _FRAME.pack(len(payload), int(rtype), crc) + payload
        crash_point("wal.append")
        self.file.append(frame)
        self.records_written += 1
        self._obs_records.add(1)
        self._obs_bytes.add(len(frame))

    def log_update(self, table: str, update: UpdateRecord) -> None:
        codec = self.codecs.get(table)
        if codec is None:
            raise RecoveryError(f"no codec registered for table {table!r}")
        self._append(
            LogRecordType.UPDATE, _pack_str(table) + codec.encode(update)
        )

    def log_run_flush(self, table: str, run_name: str, max_ts: int) -> None:
        payload = struct.pack("<Q", max_ts) + _pack_str(table) + _pack_str(run_name)
        self._append(LogRecordType.RUN_FLUSH, payload)

    def log_migration_start(
        self,
        timestamp: int,
        run_names: list[str],
        key_range: Optional[tuple[int, int]] = None,
    ) -> None:
        lo, hi = key_range if key_range is not None else (0, 2**63 - 1)
        payload = struct.pack("<QqqH", timestamp, lo, hi, len(run_names))
        for name in run_names:
            payload += _pack_str(name)
        self._append(LogRecordType.MIGRATION_START, payload)

    def log_migration_end(self, timestamp: int) -> None:
        self._append(LogRecordType.MIGRATION_END, struct.pack("<Q", timestamp))

    def log_run_merge(
        self,
        timestamp: int,
        product: str,
        victims: list[str],
        covered_ts: tuple[int, int],
    ) -> None:
        payload = struct.pack(
            "<QQQH", timestamp, covered_ts[0], covered_ts[1], len(victims)
        ) + _pack_str(product)
        for name in victims:
            payload += _pack_str(name)
        self._append(LogRecordType.RUN_MERGE, payload)

    # ----------------------------------------------------------------- reads
    def records(self) -> Iterator[LogRecord]:
        """Replay the log from the beginning (recovery path).

        When the in-memory append cursor was lost with the crash, the log is
        scanned until the first invalid frame (unwritten space reads as
        zeroes, which no valid frame starts with).  In that scan mode, a
        *torn tail* — the final record partially persisted because the crash
        interrupted the append — fails its CRC and is skipped with the
        ``txn.log.torn_tail_skipped`` counter: the update it carried was
        never acknowledged, so dropping it is correct.  A CRC mismatch
        *before* a known end of log is real corruption and raises.
        """
        end = self.file.append_pos or self.file.size
        scanning = self.file.append_pos == 0
        offset = 0
        while offset < end:
            if offset + _FRAME.size > end:
                if scanning:
                    self._torn_tail(offset, "truncated frame header")
                    break
                raise RecoveryError("truncated log frame header")
            header = self.file.read(offset, _FRAME.size)
            length, rtype_raw, stored_crc = _FRAME.unpack(header)
            if scanning and (rtype_raw == 0 or length == 0):
                break  # end of written log
            if offset + _FRAME.size + length > end:
                if scanning:
                    self._torn_tail(offset, "truncated payload")
                    break
                raise RecoveryError("truncated log record payload")
            payload = self.file.read(offset + _FRAME.size, length)
            if checksum(bytes([rtype_raw & 0xFF]) + payload) != stored_crc:
                if scanning:
                    self._torn_tail(offset, "checksum mismatch")
                    break
                raise RecoveryError(
                    f"log record at offset {offset} failed checksum"
                )
            offset += _FRAME.size + length
            try:
                rtype = LogRecordType(rtype_raw)
            except ValueError as exc:
                raise RecoveryError(f"corrupt log record type {rtype_raw}") from exc
            yield self._decode(rtype, payload)
        if scanning:
            # The append cursor was lost with the crash; park it after the
            # surviving records so fresh appends do not overwrite them.
            self.file.seek_append(offset)

    def _torn_tail(self, offset: int, reason: str) -> None:
        """Count a torn tail record found while scanning after a crash.

        Replay stops here: a record torn mid-append was never acknowledged
        to any client, so skipping it loses nothing that was promised.
        """
        get_registry().counter("txn.log.torn_tail_skipped").add(1)

    def _decode(self, rtype: LogRecordType, payload: bytes) -> LogRecord:
        if rtype == LogRecordType.UPDATE:
            table, pos = _unpack_str(payload, 0)
            codec = self.codecs.get(table)
            if codec is None:
                raise RecoveryError(f"no codec registered for table {table!r}")
            update, _ = codec.decode(payload, pos)
            return LogRecord(rtype, update.timestamp, table=table, update=update)
        if rtype == LogRecordType.RUN_FLUSH:
            (max_ts,) = struct.unpack_from("<Q", payload, 0)
            table, pos = _unpack_str(payload, 8)
            run_name, _ = _unpack_str(payload, pos)
            return LogRecord(rtype, max_ts, table=table, run_name=run_name)
        if rtype == LogRecordType.MIGRATION_START:
            timestamp, lo, hi, count = struct.unpack_from("<QqqH", payload, 0)
            pos = struct.calcsize("<QqqH")
            names = []
            for _ in range(count):
                name, pos = _unpack_str(payload, pos)
                names.append(name)
            return LogRecord(
                rtype, timestamp, run_names=tuple(names), key_range=(lo, hi)
            )
        if rtype == LogRecordType.RUN_MERGE:
            timestamp, lo, hi, count = struct.unpack_from("<QQQH", payload, 0)
            product, pos = _unpack_str(payload, struct.calcsize("<QQQH"))
            victims = []
            for _ in range(count):
                name, pos = _unpack_str(payload, pos)
                victims.append(name)
            return LogRecord(
                rtype,
                timestamp,
                run_name=product,
                run_names=tuple(victims),
                covered_ts=(lo, hi),
            )
        (timestamp,) = struct.unpack_from("<Q", payload, 0)
        return LogRecord(rtype, timestamp)
