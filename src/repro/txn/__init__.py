"""Transaction support: timestamps, logging, recovery, isolation (Section 3.6).

Submodule attributes are resolved lazily (PEP 562) because recovery and the
transaction managers import :mod:`repro.core`, which itself needs
:mod:`repro.txn.timestamps` — eager re-exports would create an import cycle.
"""

from repro.txn.timestamps import TimestampOracle

_LAZY = {
    "LockManager": "repro.txn.locks",
    "LockMode": "repro.txn.locks",
    "LockingTransaction": "repro.txn.transactions",
    "LogRecord": "repro.txn.log",
    "LogRecordType": "repro.txn.log",
    "RecoveryReport": "repro.txn.recovery",
    "RedoLog": "repro.txn.log",
    "SnapshotManager": "repro.txn.snapshot",
    "SnapshotTransaction": "repro.txn.snapshot",
    "TransactionManager": "repro.txn.transactions",
    "rebuild_table_index": "repro.txn.recovery",
    "recover_masm": "repro.txn.recovery",
}

__all__ = ["TimestampOracle", *sorted(_LAZY)]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.txn' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
