"""Crash recovery (Section 3.6).

What survives a crash: the main data on disk, the materialized sorted runs
on the (non-volatile) SSD, and the redo log.  What is lost: the in-memory
update buffer, the in-memory run metadata (run indexes), and the table's
sparse index.

Recovery therefore

1. reloads run metadata by scanning the run files on the SSD;
2. replays the redo log, re-inserting into the in-memory buffer exactly the
   updates newer than the last flushed timestamp ("use update timestamps to
   distinguish updates in memory and updates on SSDs");
3. redoes any migration whose START record has no matching END — safe
   because migration is idempotent under the page-timestamp rule — and
   deletes leftover run files of migrations that did complete;
4. rebuilds the table's sparse index with one sequential scan;
5. advances the timestamp oracle past everything it saw.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.masm import MaSM, MaSMConfig
from repro.core.sortedrun import load_run
from repro.core.update import UpdateRecord
from repro.engine.table import Table
from repro.errors import RecoveryError
from repro.obs import get_registry, trace
from repro.storage.file import StorageVolume
from repro.txn.log import LogRecordType, RedoLog
from repro.txn.timestamps import TimestampOracle


@dataclass
class RecoveryReport:
    """What recovery did, for assertions and operator visibility."""

    runs_reloaded: int = 0
    buffer_updates_replayed: int = 0
    migrations_redone: int = 0
    leftover_runs_deleted: int = 0
    max_timestamp_seen: int = 0


def rebuild_table_index(table: Table) -> None:
    """Reconstruct the sparse primary index and row count by scanning.

    When the surviving heap's logical length is unknown (``num_pages`` was
    volatile), scanning stops at the first unparseable page: heap pages are
    allocated contiguously from zero, so unformatted space marks the end.
    """
    from repro.errors import PageError

    entries: list[tuple[int, int]] = []
    rows = 0
    pages = table.heap.scan_pages()
    last_good = -1
    while True:
        try:
            page_no, page = next(pages)
        except StopIteration:
            break
        except PageError:
            break  # unformatted space: end of the heap's data
        first_key: Optional[int] = None
        for _, data in page.records():
            key = table.schema.key(table.schema.unpack(data))
            first_key = key if first_key is None else min(first_key, key)
            rows += 1
        entries.append((first_key if first_key is not None else 0, page_no))
        last_good = page_no
    table.heap.num_pages = last_good + 1
    # Empty trailing pages inherit the previous first key to stay ordered.
    fixed: list[tuple[int, int]] = []
    last_key = 0
    for key, page_no in entries:
        if not fixed:
            last_key = key
        elif key < last_key:
            key = last_key
        fixed.append((key, page_no))
        last_key = key
    table.replace_contents(fixed, rows)


def recover_masm(
    table: Table,
    ssd_volume: StorageVolume,
    redo_log: RedoLog,
    config: Optional[MaSMConfig] = None,
    oracle: Optional[TimestampOracle] = None,
    name: Optional[str] = None,
    rebuild_index: bool = True,
) -> tuple[MaSM, RecoveryReport]:
    """Reconstruct a MaSM instance after a crash.

    ``table`` wraps the surviving heap file; ``ssd_volume`` still holds the
    run files; ``redo_log`` is the surviving log.  Returns the recovered
    engine and a :class:`RecoveryReport`.
    """
    report = RecoveryReport()
    masm = MaSM(table, ssd_volume, config=config, oracle=oracle, name=name)
    redo_log.register_table(table.name, masm.codec)
    masm.redo_log = redo_log

    if rebuild_index:
        rebuild_table_index(table)

    # ---- 1. reload run metadata from the SSD ------------------------------
    pattern = re.compile(re.escape(masm.name) + r"-run-(\d+)$")
    found: list[tuple[int, str]] = []
    for file_name in ssd_volume:
        match = pattern.match(file_name)
        if match:
            found.append((int(match.group(1)), file_name))
    found.sort()
    runs_by_name = {}
    for seq, file_name in found:
        run = load_run(
            ssd_volume, file_name, masm.codec, block_size=masm.config.block_size
        )
        runs_by_name[file_name] = run
        masm._run_seq = max(masm._run_seq, seq + 1)

    # ---- 2/3. scan the log -------------------------------------------------
    flushed_through = 0  # max update ts known to be in a run
    pending: list[UpdateRecord] = []
    open_migrations: dict[int, tuple[str, ...]] = {}
    completed_migrations: list[tuple[str, ...]] = []
    with trace("txn.recover.replay"):
        for record in redo_log.records():
            report.max_timestamp_seen = max(
                report.max_timestamp_seen, record.timestamp
            )
            if record.type == LogRecordType.UPDATE:
                if record.table == table.name:
                    pending.append(record.update)
            elif record.type == LogRecordType.RUN_FLUSH:
                if record.table == table.name:
                    flushed_through = max(flushed_through, record.timestamp)
            elif record.type == LogRecordType.MIGRATION_START:
                open_migrations[record.timestamp] = record.run_names or ()
            elif record.type == LogRecordType.MIGRATION_END:
                names = open_migrations.pop(record.timestamp, None)
                if names is None:
                    raise RecoveryError(
                        f"migration end {record.timestamp} without a start record"
                    )
                completed_migrations.append(names)

    # Runs of completed migrations should be gone; delete leftovers (the
    # crash may have hit between the END record and the deletion).
    for names in completed_migrations:
        for run_name in names:
            run = runs_by_name.pop(run_name, None)
            if run is not None:
                ssd_volume.delete(run_name)
                report.leftover_runs_deleted += 1

    masm.runs.extend(run for _name, run in sorted(runs_by_name.items()))
    report.runs_reloaded = len(masm.runs)

    # ---- 2. rebuild the in-memory buffer ----------------------------------
    for update in pending:
        if update.timestamp > flushed_through:
            if masm.buffer.would_overflow(update):
                masm._handle_full_buffer()
            masm.buffer.append(update)
            masm.stats.updates_ingested += 1
            report.buffer_updates_replayed += 1

    # ---- 5. the oracle must move past everything seen ----------------------
    masm.oracle.advance_past(report.max_timestamp_seen)

    # ---- 3. redo interrupted migrations ------------------------------------
    # Idempotent: pages already rewritten carry timestamps >= the updates.
    for start_ts in sorted(open_migrations):
        if masm.runs:
            masm.migrate()
            report.migrations_redone += 1

    registry = get_registry()
    registry.counter("txn.recovery.count").add(1)
    for field_name in (
        "runs_reloaded",
        "buffer_updates_replayed",
        "migrations_redone",
        "leftover_runs_deleted",
    ):
        registry.counter(f"txn.recovery.{field_name}").add(
            getattr(report, field_name)
        )

    return masm, report
