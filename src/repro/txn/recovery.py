"""Crash recovery (Section 3.6).

What survives a crash: the main data on disk, the materialized sorted runs
on the (non-volatile) SSD, and the redo log.  What is lost: the in-memory
update buffer, the in-memory run metadata (run indexes), and the table's
sparse index.

Recovery therefore

1. reloads run metadata by scanning the run files on the SSD;
2. replays the redo log, re-inserting into the in-memory buffer exactly the
   updates newer than the last flushed timestamp ("use update timestamps to
   distinguish updates in memory and updates on SSDs");
3. redoes any migration whose START record has no matching END — safe
   because migration is idempotent under the page-timestamp rule — and
   deletes leftover run files of migrations that did complete;
4. rebuilds the table's sparse index with one sequential scan;
5. advances the timestamp oracle past everything it saw.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.masm import MaSM, MaSMConfig
from repro.core.sortedrun import load_run
from repro.core.update import UpdateRecord
from repro.engine.table import Table
from repro.errors import RecoveryError, StorageError
from repro.obs import get_registry, trace
from repro.storage.file import StorageVolume
from repro.txn.log import LogRecordType, RedoLog
from repro.txn.timestamps import TimestampOracle


@dataclass
class RecoveryReport:
    """What recovery did, for assertions and operator visibility."""

    runs_reloaded: int = 0
    buffer_updates_replayed: int = 0
    migrations_redone: int = 0
    leftover_runs_deleted: int = 0
    max_timestamp_seen: int = 0
    #: Run files that failed checksum verification and were discarded.
    corrupt_runs_discarded: int = 0
    #: Intact run files with no covering RUN_FLUSH record (the crash hit
    #: between the SSD write and the log append); their updates were
    #: replayed into the buffer instead, so keeping the file would apply
    #: them twice.
    orphan_runs_discarded: int = 0
    #: Fresh runs rebuilt from the redo log to replace discarded ones.
    runs_rebuilt: int = 0
    #: Victim files of committed merges (RUN_MERGE record + intact product)
    #: still on the SSD at the crash — e.g. parked in the graveyard for an
    #: active scan; serving them alongside the product would apply every
    #: merged update twice.
    merge_victims_discarded: int = 0
    #: Damaged-run timestamp gaps the (truncated) log can no longer rebuild:
    #: the lost records predate the checkpoint fence.  The replica's local
    #: state is incomplete — only a snapshot bootstrap from a peer heals it.
    unrecoverable_gaps: int = 0
    #: Fence of the newest CHECKPOINT record seen (0 = log never truncated).
    checkpoint_ts: int = 0


def rebuild_table_index(table: Table) -> None:
    """Reconstruct the sparse primary index and row count by scanning.

    When the surviving heap's logical length is unknown (``num_pages`` was
    volatile), scanning stops at the first unparseable page: heap pages are
    allocated contiguously from zero, so unformatted space marks the end.
    """
    from repro.errors import PageError

    entries: list[tuple[int, int]] = []
    rows = 0
    pages = table.heap.scan_pages()
    last_good = -1
    while True:
        try:
            page_no, page = next(pages)
        except StopIteration:
            break
        except PageError:
            break  # unformatted space: end of the heap's data
        first_key: Optional[int] = None
        for _, data in page.records():
            key = table.schema.key(table.schema.unpack(data))
            first_key = key if first_key is None else min(first_key, key)
            rows += 1
        entries.append((first_key if first_key is not None else 0, page_no))
        last_good = page_no
    table.heap.num_pages = last_good + 1
    # Empty trailing pages inherit the previous first key to stay ordered.
    fixed: list[tuple[int, int]] = []
    last_key = 0
    for key, page_no in entries:
        if not fixed:
            last_key = key
        elif key < last_key:
            key = last_key
        fixed.append((key, page_no))
        last_key = key
    table.replace_contents(fixed, rows)


def recover_masm(
    table: Table,
    ssd_volume: StorageVolume,
    redo_log: RedoLog,
    config: Optional[MaSMConfig] = None,
    oracle: Optional[TimestampOracle] = None,
    name: Optional[str] = None,
    rebuild_index: bool = True,
) -> tuple[MaSM, RecoveryReport]:
    """Reconstruct a MaSM instance after a crash.

    ``table`` wraps the surviving heap file; ``ssd_volume`` still holds the
    run files; ``redo_log`` is the surviving log.  Returns the recovered
    engine and a :class:`RecoveryReport`.
    """
    report = RecoveryReport()
    masm = MaSM(table, ssd_volume, config=config, oracle=oracle, name=name)
    redo_log.register_table(table.name, masm.codec)
    masm.redo_log = redo_log

    if rebuild_index:
        rebuild_table_index(table)

    # ---- 2/3. scan the log first -------------------------------------------
    # The log is the source of truth about which run files *should* exist:
    # it must be read before trusting any SSD state, so that orphan runs
    # (written but never logged) and damaged runs can be told apart.
    flushed_through = 0  # max update ts known to be in a logged run
    migrated_ts = 0  # max ts applied in place by a completed full migration
    pending: list[UpdateRecord] = []
    open_migrations: dict[int, tuple[str, ...]] = {}
    completed_full: list[tuple[str, ...]] = []
    completed_partial: list[tuple[tuple[str, ...], tuple[int, int]]] = []
    # (kind, product, victims, covered-ts span, key range) in WAL order —
    # ordering matters: a structural merge may consume a partially sliced
    # victim, so its victims' slice masks must be applied before the merge
    # event discards them.
    merge_events: list[
        tuple[
            str,
            str,
            tuple[str, ...],
            tuple[int, int],
            Optional[tuple[int, int]],
        ]
    ] = []
    # run name -> RunManifestEntry from the newest CHECKPOINT record.
    manifest: dict = {}
    full_range = (0, 2**63 - 1)
    with trace("txn.recover.replay"):
        for record in redo_log.records():
            report.max_timestamp_seen = max(
                report.max_timestamp_seen, record.timestamp
            )
            if record.type == LogRecordType.UPDATE:
                if record.table == table.name:
                    pending.append(record.update)
            elif record.type == LogRecordType.RUN_FLUSH:
                if record.table == table.name:
                    flushed_through = max(flushed_through, record.timestamp)
            elif record.type == LogRecordType.MIGRATION_START:
                open_migrations[record.timestamp] = (
                    record.run_names or (),
                    record.key_range,
                )
            elif record.type == LogRecordType.MIGRATION_END:
                entry = open_migrations.pop(record.timestamp, None)
                if entry is None:
                    raise RecoveryError(
                        f"migration end {record.timestamp} without a start record"
                    )
                names, key_range = entry
                if key_range is None or tuple(key_range) == full_range:
                    completed_full.append(names)
                    # A completed full migration applied every cached update
                    # with ts <= its timestamp in place.
                    migrated_ts = max(migrated_ts, record.timestamp)
                else:
                    completed_partial.append((names, tuple(key_range)))
            elif record.type == LogRecordType.RUN_MERGE:
                merge_events.append(
                    (
                        "merge",
                        record.run_name,
                        record.run_names or (),
                        record.covered_ts,
                        None,
                    )
                )
            elif record.type == LogRecordType.MERGE_SLICE:
                merge_events.append(
                    (
                        "slice",
                        record.run_name,
                        record.run_names or (),
                        record.covered_ts,
                        record.key_range,
                    )
                )
            elif record.type == LogRecordType.CHECKPOINT:
                cp = record.checkpoint
                if cp is not None and cp.table == table.name:
                    # The checkpoint stands in for the truncated prefix: it
                    # seeds the watermarks and the run manifest the dropped
                    # RUN_FLUSH / MIGRATION / RUN_MERGE records established.
                    flushed_through = max(flushed_through, cp.checkpoint_ts)
                    migrated_ts = max(migrated_ts, cp.migrated_ts)
                    manifest = {entry.name: entry for entry in cp.runs}
                    report.checkpoint_ts = max(
                        report.checkpoint_ts, cp.checkpoint_ts
                    )

    # ---- 1. reload run metadata from the SSD, tolerating damage ------------
    pattern = re.compile(re.escape(masm.name) + r"-run-(\d+)$")
    found: list[tuple[int, str]] = []
    for file_name in ssd_volume:
        match = pattern.match(file_name)
        if match:
            found.append((int(match.group(1)), file_name))
    found.sort()
    runs_by_name = {}
    damaged_names: list[str] = []
    for seq, file_name in found:
        masm._run_seq = max(masm._run_seq, seq + 1)
        try:
            run = load_run(
                ssd_volume, file_name, masm.codec, block_size=masm.config.block_size
            )
        except (RecoveryError, StorageError):
            # ChecksumError (bit rot, torn run write) or undecodable
            # content: the file cannot be trusted; rebuild from the log.
            damaged_names.append(file_name)
            continue
        runs_by_name[file_name] = run

    # Restore checkpoint-manifest metadata: the covered-ts spans and the
    # migrated ranges these runs carried when the fence was cut — the log
    # records that established them may have been truncated away.
    for file_name, run in runs_by_name.items():
        entry = manifest.get(file_name)
        if entry is None:
            continue
        run.covered_min_ts = min(run.covered_min_ts, entry.covered_min_ts)
        run.covered_max_ts = max(run.covered_max_ts, entry.covered_max_ts)
        for lo, hi in entry.migrated_ranges:
            run.mark_migrated(lo, hi)

    # Merges log their RUN_MERGE record *before* materializing the product
    # run, so the product file's intact existence is the commit point.
    # Product intact: the victims are superseded copies of its content —
    # any still on the SSD (the crash hit before retirement, or a scan kept
    # them parked in the graveyard) must go, since serving them alongside
    # the product would apply every merged update twice (and re-raise
    # duplicate-INSERT conflicts in the combine chain).  Product missing or
    # damaged: the merge never committed; the victims stay authoritative
    # and the damaged-product file is discarded by the damage path below
    # (its content needs no rebuild — the victims still cover it).
    # Manifest runs retired by a *surviving* log record (a committed merge,
    # a completed migration) are legitimately absent from the SSD; anything
    # else listed at the fence but missing from the volume was lost and
    # must go through the same gap rebuild as a damaged file.
    retired_names: set = set()
    for kind, product, victim_names, covered_ts, key_range in merge_events:
        match = pattern.match(product)
        if match:
            # Never reuse a logged product name, even if the crash hit
            # before its file was written: a later run under the same name
            # would make this record look committed on the *next* recovery.
            masm._run_seq = max(masm._run_seq, int(match.group(1)) + 1)
        if product not in runs_by_name:
            continue
        product_run = runs_by_name[product]
        # The reloaded span is derived from content, which combine may have
        # narrowed (a chain collapses to its latest timestamp); restore the
        # logged union of the victims' spans so the log-fallback and
        # gap-rebuild paths see what this run is the durable home of.
        product_run.covered_min_ts = min(product_run.covered_min_ts, covered_ts[0])
        product_run.covered_max_ts = max(product_run.covered_max_ts, covered_ts[1])
        if kind == "slice":
            # A committed compaction slice supersedes only its key range:
            # re-mask it on every surviving victim (the masks were
            # volatile).  Victims retire below only once their masks cover
            # the whole key space — until then they stay authoritative for
            # the unsliced remainder.
            assert key_range is not None
            for run_name in victim_names:
                victim = runs_by_name.get(run_name)
                if victim is not None:
                    victim.mark_merged(key_range[0], key_range[1])
            continue
        retired_names.update(victim_names)
        for run_name in victim_names:
            if runs_by_name.pop(run_name, None) is not None:
                ssd_volume.delete(run_name)
                report.merge_victims_discarded += 1
            elif run_name in damaged_names:
                damaged_names.remove(run_name)
                ssd_volume.delete(run_name)
                report.merge_victims_discarded += 1

    # Victims whose slice masks now cover the whole key space were fully
    # consumed by an incremental compaction that crashed before retiring
    # them; every record they hold lives in the slice products, so serving
    # them again would double-apply.
    full_key_hi = 2**63 - 1
    for run_name in list(runs_by_name):
        run = runs_by_name[run_name]
        if run.merged_ranges and run.fully_merged(0, full_key_hi):
            del runs_by_name[run_name]
            ssd_volume.delete(run_name)
            retired_names.add(run_name)
            report.merge_victims_discarded += 1

    # Runs of completed *full* migrations should be gone; delete leftovers
    # (the crash may have hit between the END record and the deletion).
    for names in completed_full:
        retired_names.update(names)
        for run_name in names:
            if runs_by_name.pop(run_name, None) is not None:
                ssd_volume.delete(run_name)
                report.leftover_runs_deleted += 1
            elif run_name in damaged_names:
                damaged_names.remove(run_name)
                ssd_volume.delete(run_name)
                report.leftover_runs_deleted += 1

    # Completed *partial* migrations (governor-paced slices) applied only a
    # key range in place; the named runs still hold unmigrated keys and must
    # survive.  Re-mark the migrated ranges (they were volatile) and delete
    # a run only when its slices cumulatively cover its whole key span —
    # the same rule the engine uses to retire runs after a slice.  Damaged
    # runs are left to the rebuild path: its log replay re-materializes all
    # their updates, and re-serving already-migrated ones is harmless under
    # the page-timestamp rule.
    for names, (range_lo, range_hi) in completed_partial:
        retired_names.update(names)
        for run_name in names:
            run = runs_by_name.get(run_name)
            if run is None:
                continue
            run.mark_migrated(range_lo, range_hi)
    for run_name, run in list(runs_by_name.items()):
        if run.migrated_ranges and run.fully_migrated(run.min_key, run.max_key):
            del runs_by_name[run_name]
            ssd_volume.delete(run_name)
            report.leftover_runs_deleted += 1

    # Orphan runs: written to the SSD but the crash hit before their
    # RUN_FLUSH record was logged.  Their updates are replayed into the
    # buffer below (every one has ts > flushed_through), so the file must
    # go — keeping it would apply those updates twice.
    for file_name, run in list(runs_by_name.items()):
        if run.min_ts > flushed_through:
            del runs_by_name[file_name]
            ssd_volume.delete(file_name)
            report.orphan_runs_discarded += 1

    # Damaged files: drop them; their logged content is rebuilt below.
    for file_name in damaged_names:
        ssd_volume.delete(file_name)
        report.corrupt_runs_discarded += 1

    masm.runs.extend(run for _name, run in sorted(runs_by_name.items()))
    masm.runs_version += 1
    report.runs_reloaded = len(masm.runs)

    # ---- 1b. rebuild discarded logged content from the redo log ------------
    # Every logged update with migrated_ts < ts <= flushed_through belongs
    # in some run.  The intervals not covered by the intact runs are exactly
    # what the damaged runs held; re-materialize each gap as a fresh run.
    # (A damaged *orphan* needs no rebuild: its ts range is past
    # flushed_through and replays into the buffer like any unflushed update.)
    lost_manifest_names = [
        name
        for name in manifest
        if name not in runs_by_name and name not in retired_names
    ]
    if damaged_names or lost_manifest_names:
        covered = sorted(
            (run.covered_min_ts, run.covered_max_ts) for run in masm.runs
        )
        gaps = _uncovered_intervals(migrated_ts + 1, flushed_through, covered)
        log_floor = redo_log.truncated_through
        for gap_lo, gap_hi in gaps:
            if gap_lo <= log_floor:
                # The lost records predate the checkpoint fence: the log
                # prefix that held them was reclaimed.  Local recovery
                # cannot rebuild this — flag it so the replication layer
                # falls back to a snapshot bootstrap from a healthy peer.
                report.unrecoverable_gaps += 1
                gap_lo = log_floor + 1
                if gap_lo > gap_hi:
                    continue
            lost = [u for u in pending if gap_lo <= u.timestamp <= gap_hi]
            if not lost:
                continue
            lost.sort(key=UpdateRecord.sort_key)
            with trace("txn.recover.rebuild_run", updates=len(lost)):
                rebuilt = masm._write_run(lost, passes=1)
            rebuilt.covered_min_ts = gap_lo
            rebuilt.covered_max_ts = gap_hi
            report.runs_rebuilt += 1

    # ---- 2. rebuild the in-memory buffer ----------------------------------
    for update in pending:
        if update.timestamp > flushed_through:
            if masm.buffer.would_overflow(update):
                masm._handle_full_buffer()
            masm.buffer.append(update)
            masm.stats.updates_ingested += 1
            report.buffer_updates_replayed += 1

    # ---- 5. the oracle must move past everything seen ----------------------
    masm.oracle.advance_past(report.max_timestamp_seen)
    masm.flushed_through = flushed_through
    masm.migrated_through = migrated_ts
    masm.last_checkpoint_ts = redo_log.truncated_through

    # ---- 3. redo interrupted migrations ------------------------------------
    # Idempotent: pages already rewritten carry timestamps >= the updates.
    for start_ts in sorted(open_migrations):
        if masm.runs:
            masm.migrate()
            report.migrations_redone += 1

    registry = get_registry()
    registry.counter("txn.recovery.count").add(1)
    for field_name in (
        "runs_reloaded",
        "buffer_updates_replayed",
        "migrations_redone",
        "leftover_runs_deleted",
        "corrupt_runs_discarded",
        "orphan_runs_discarded",
        "runs_rebuilt",
        "unrecoverable_gaps",
    ):
        registry.counter(f"txn.recovery.{field_name}").add(
            getattr(report, field_name)
        )

    return masm, report


def _uncovered_intervals(
    lo: int, hi: int, covered: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """The sub-intervals of [lo, hi] not covered by ``covered`` (sorted)."""
    gaps: list[tuple[int, int]] = []
    cursor = lo
    for c_lo, c_hi in covered:
        if c_lo > cursor:
            gaps.append((cursor, min(c_lo - 1, hi)))
        cursor = max(cursor, c_hi + 1)
        if cursor > hi:
            break
    if cursor <= hi:
        gaps.append((cursor, hi))
    return [g for g in gaps if g[0] <= g[1]]
