"""Two-phase-locking transactions over MaSM (Section 3.6).

The paper's locking recipe: cache a transaction's updates in a private
buffer, and only when the protecting exclusive lock is released (at commit)
assign the current timestamp and append to MaSM's global in-memory buffer.
Reads take shared locks and see all earlier updates (normal start timestamp).

Key-granularity locks keep the demo simple; any hashable resource id works
with the underlying :class:`repro.txn.locks.LockManager`.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.core.masm import MaSM
from repro.core.operators import MergeDataUpdates, MergeUpdates
from repro.core.update import UpdateRecord, UpdateType, combine
from repro.errors import TransactionError
from repro.txn.locks import LockManager, LockMode

_txn_ids = itertools.count(1)


class TransactionManager:
    """Hands out 2PL transactions over one MaSM engine."""

    def __init__(self, masm: MaSM, lock_timeout: float = 5.0) -> None:
        self.masm = masm
        self.locks = LockManager(timeout=lock_timeout)

    def begin(self) -> "LockingTransaction":
        return LockingTransaction(self, next(_txn_ids))


class LockingTransaction:
    """A strict-2PL transaction with a private update buffer."""

    def __init__(self, manager: TransactionManager, txn_id: int) -> None:
        self.manager = manager
        self.txn_id = txn_id
        self.schema = manager.masm.table.schema
        self._writes: dict[int, UpdateRecord] = {}
        self._done = False

    # ----------------------------------------------------------------- locks
    def _lock(self, key: int, mode: LockMode) -> None:
        if self._done:
            raise TransactionError("transaction already finished")
        self.manager.locks.acquire(self.txn_id, key, mode)

    # ---------------------------------------------------------------- writes
    def _stage(self, update: UpdateRecord) -> None:
        self._lock(update.key, LockMode.EXCLUSIVE)
        prior = self._writes.get(update.key)
        if prior is None:
            self._writes[update.key] = update
        else:
            self._writes[update.key] = combine(prior, update, self.schema)

    def insert(self, record: tuple) -> None:
        key = self.schema.key(record)
        self._stage(UpdateRecord(0, key, UpdateType.INSERT, tuple(record)))

    def delete(self, key: int) -> None:
        self._stage(UpdateRecord(0, key, UpdateType.DELETE, None))

    def modify(self, key: int, changes: dict) -> None:
        self._stage(UpdateRecord(0, key, UpdateType.MODIFY, dict(changes)))

    # ----------------------------------------------------------------- reads
    def get(self, key: int) -> Optional[tuple]:
        """Point read under a shared lock, seeing own writes first."""
        self._lock(key, LockMode.SHARED)
        own = self._writes.get(key)
        base = None
        for record in self.manager.masm.range_scan(key, key):
            base = record
            break
        if own is None:
            return base
        from repro.core.update import apply_update

        stamped = UpdateRecord(2**62, key, own.type, own.content)
        return apply_update(base, stamped, self.schema)

    def range_scan(self, begin_key: int, end_key: int) -> Iterator[tuple]:
        """Range read under shared locks (range lock = one resource here)."""
        self._lock(("range", begin_key, end_key), LockMode.SHARED)
        base = self.manager.masm.range_scan(begin_key, end_key)
        own = sorted(
            (
                UpdateRecord(2**62, k, u.type, u.content)
                for k, u in self._writes.items()
                if begin_key <= k <= end_key
            ),
            key=UpdateRecord.sort_key,
        )
        if not own:
            return base
        pairs = ((record, 0) for record in base)
        updates = MergeUpdates([own], self.schema)
        return iter(MergeDataUpdates(pairs, updates, self.schema))

    # ---------------------------------------------------------------- finish
    def commit(self) -> Optional[int]:
        """Publish private updates with a commit timestamp, release locks.

        Returns the commit timestamp (None for read-only transactions).
        Serializability: conflicting transactions were serialized by their
        locks; MaSM's timestamp order then matches the lock order because
        timestamps are assigned while the exclusive locks are still held.
        """
        if self._done:
            raise TransactionError("transaction already finished")
        self._done = True
        commit_ts: Optional[int] = None
        try:
            if self._writes:
                commit_ts = self.manager.masm.oracle.next()
                for key in sorted(self._writes):
                    update = self._writes[key]
                    self.manager.masm.apply(
                        UpdateRecord(commit_ts, key, update.type, update.content)
                    )
        finally:
            self.manager.locks.release_all(self.txn_id)
        return commit_ts

    def abort(self) -> None:
        """Drop private updates and release locks; nothing was published."""
        self._done = True
        self._writes.clear()
        self.manager.locks.release_all(self.txn_id)
