"""Logical timestamps ordering updates, queries, and migrations.

Section 3.2: every update carries its commit timestamp, every query carries
a start timestamp and sees exactly the updates with smaller timestamps, and
every data page stores the timestamp of the last update applied to it.  The
oracle below hands out the monotonically increasing values that make that
total order.
"""

from __future__ import annotations

import threading


class TimestampOracle:
    """Thread-safe monotonically increasing timestamp source."""

    def __init__(self, start: int = 1) -> None:
        self._next = start
        self._lock = threading.Lock()

    def next(self) -> int:
        """Allocate and return the next timestamp."""
        with self._lock:
            value = self._next
            self._next += 1
            return value

    @property
    def current(self) -> int:
        """The most recently allocated timestamp (0 if none yet)."""
        with self._lock:
            return self._next - 1

    def advance_past(self, timestamp: int) -> None:
        """Ensure future timestamps exceed ``timestamp`` (crash recovery)."""
        with self._lock:
            if timestamp >= self._next:
                self._next = timestamp + 1
