"""Snapshot isolation over MaSM (Section 3.6).

A transaction works on the snapshot of data as of its start timestamp; its
own updates live in a small private buffer merged into its reads.  On
commit, first-committer-wins: if another transaction committed a write to an
overlapping key after this transaction started, it aborts.  On success the
private updates get the commit timestamp and move to MaSM's global buffer —
exactly the scheme the paper sketches.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from repro.core.masm import MaSM
from repro.core.operators import MergeDataUpdates, MergeUpdates
from repro.core.update import UpdateRecord, UpdateType, combine
from repro.errors import TransactionAborted, TransactionError
from repro.sim.hooks import interleave as sim_interleave


class SnapshotManager:
    """Coordinates snapshot-isolated transactions over one MaSM engine."""

    def __init__(self, masm: MaSM, committed_history: int = 10_000) -> None:
        self.masm = masm
        self.oracle = masm.oracle
        # (commit_ts, frozenset(keys)) of recent committers, for conflicts.
        self._committed: list[tuple[int, frozenset]] = []
        self._history = committed_history
        self._lock = threading.Lock()

    def begin(self) -> "SnapshotTransaction":
        sim_interleave("txn.begin")
        return SnapshotTransaction(self, self.oracle.next())

    # ------------------------------------------------------------- internals
    def _conflicts(self, start_ts: int, keys: frozenset) -> bool:
        with self._lock:
            for commit_ts, committed_keys in reversed(self._committed):
                if commit_ts <= start_ts:
                    break
                if keys & committed_keys:
                    return True
        return False

    def _record_commit(self, commit_ts: int, keys: frozenset) -> None:
        with self._lock:
            self._committed.append((commit_ts, keys))
            if len(self._committed) > self._history:
                del self._committed[: self._history // 2]


class SnapshotTransaction:
    """One snapshot-isolated transaction with a private update buffer."""

    def __init__(self, manager: SnapshotManager, start_ts: int) -> None:
        self.manager = manager
        self.start_ts = start_ts
        self.schema = manager.masm.table.schema
        self._writes: dict[int, UpdateRecord] = {}  # key -> combined update
        self._done = False

    # ---------------------------------------------------------------- writes
    def _stage(self, update: UpdateRecord) -> None:
        if self._done:
            raise TransactionError("transaction already finished")
        prior = self._writes.get(update.key)
        if prior is None:
            self._writes[update.key] = update
        else:
            self._writes[update.key] = combine(prior, update, self.schema)

    def insert(self, record: tuple) -> None:
        key = self.schema.key(record)
        self._stage(UpdateRecord(self.start_ts, key, UpdateType.INSERT, record))

    def delete(self, key: int) -> None:
        self._stage(UpdateRecord(self.start_ts, key, UpdateType.DELETE, None))

    def modify(self, key: int, changes: dict) -> None:
        self._stage(
            UpdateRecord(self.start_ts, key, UpdateType.MODIFY, dict(changes))
        )

    # ----------------------------------------------------------------- reads
    def range_scan(self, begin_key: int, end_key: int) -> Iterator[tuple]:
        """Records as of the snapshot, plus this transaction's own writes.

        Implemented per the paper: a Mem_scan over the private buffer is
        added to the query's operator tree.
        """
        if self._done:
            raise TransactionError("transaction already finished")
        sim_interleave("txn.scan")
        base = self.manager.masm.range_scan(
            begin_key, end_key, query_ts=self.start_ts
        )
        own = sorted(
            (u for k, u in self._writes.items() if begin_key <= k <= end_key),
            key=UpdateRecord.sort_key,
        )
        if not own:
            return base

        def pairs() -> Iterator[tuple[tuple, int]]:
            # The snapshot records act as the "data"; page timestamps are
            # irrelevant here because private writes are never migrated.
            for record in base:
                yield record, 0
        updates = MergeUpdates([own], self.schema)
        return iter(MergeDataUpdates(pairs(), updates, self.schema))

    def get(self, key: int) -> Optional[tuple]:
        for record in self.range_scan(key, key):
            return record
        return None

    # ---------------------------------------------------------------- finish
    def commit(self) -> int:
        """First-committer-wins validation, then publish to MaSM."""
        if self._done:
            raise TransactionError("transaction already finished")
        sim_interleave("txn.commit")
        self._done = True
        if not self._writes:
            return self.start_ts
        keys = frozenset(self._writes)
        if self.manager._conflicts(self.start_ts, keys):
            raise TransactionAborted(
                f"snapshot conflict on keys {sorted(keys)[:5]}..."
            )
        commit_ts = self.manager.oracle.next()
        for key in sorted(self._writes):
            update = self._writes[key]
            self.manager.masm.apply(
                UpdateRecord(commit_ts, key, update.type, update.content)
            )
        self.manager._record_commit(commit_ts, keys)
        return commit_ts

    def abort(self) -> None:
        self._done = True
        self._writes.clear()

    @property
    def is_finished(self) -> bool:
        return self._done
