"""A shared/exclusive lock manager with deadlock detection (Section 3.6).

Used by the two-phase-locking transaction mode: shared locks protect reads,
exclusive locks protect writes, and an update becomes globally visible only
when its exclusive lock is released.  Deadlocks are detected on a wait-for
graph; the requester that would close a cycle is aborted (raising
:class:`DeadlockError`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Hashable, Optional

from repro.errors import DeadlockError, TransactionError


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _LockState:
    mode: Optional[LockMode] = None
    holders: set = field(default_factory=set)
    waiters: list = field(default_factory=list)  # (owner, mode)


class LockManager:
    """Blocking S/X locks keyed by any hashable resource id."""

    def __init__(self, timeout: float = 5.0) -> None:
        self._locks: dict[Hashable, _LockState] = {}
        self._held: dict[Hashable, set[Hashable]] = {}  # owner -> resources
        self._waits_for: dict[Hashable, set[Hashable]] = {}  # owner -> owners
        self._cond = threading.Condition()
        self.timeout = timeout

    # ------------------------------------------------------------ acquiring
    def _compatible(self, state: _LockState, owner: Hashable, mode: LockMode) -> bool:
        if not state.holders or state.holders == {owner}:
            return True
        if mode == LockMode.SHARED and state.mode == LockMode.SHARED:
            return True
        return False

    def acquire(self, owner: Hashable, resource: Hashable, mode: LockMode) -> None:
        """Acquire (or upgrade) a lock, blocking until granted.

        Raises :class:`DeadlockError` if waiting would create a cycle, or
        :class:`TransactionError` on timeout.
        """
        with self._cond:
            state = self._locks.setdefault(resource, _LockState())
            if owner in state.holders and (
                state.mode == mode or mode == LockMode.SHARED
            ):
                return  # already held strongly enough
            deadline = None
            while not self._compatible(state, owner, mode):
                blockers = state.holders - {owner}
                self._waits_for[owner] = blockers
                if self._would_deadlock(owner):
                    self._waits_for.pop(owner, None)
                    raise DeadlockError(
                        f"{owner!r} waiting on {resource!r} closes a cycle"
                    )
                if deadline is None:
                    deadline = time.monotonic() + self.timeout
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    self._waits_for.pop(owner, None)
                    raise TransactionError(
                        f"{owner!r} timed out waiting for {resource!r}"
                    )
            self._waits_for.pop(owner, None)
            state.holders.add(owner)
            if mode == LockMode.EXCLUSIVE:
                state.mode = LockMode.EXCLUSIVE
            elif state.mode is None:
                state.mode = LockMode.SHARED
            self._held.setdefault(owner, set()).add(resource)

    def _would_deadlock(self, start: Hashable) -> bool:
        """True if ``start`` transitively waits on itself via lock holders."""
        seen = set()
        frontier = set(self._waits_for.get(start, ()))
        while frontier:
            owner = frontier.pop()
            if owner == start:
                return True
            if owner in seen:
                continue
            seen.add(owner)
            # What is this owner waiting for?
            frontier |= set(self._waits_for.get(owner, ()))
        return False

    # ------------------------------------------------------------- releasing
    def release(self, owner: Hashable, resource: Hashable) -> None:
        with self._cond:
            state = self._locks.get(resource)
            if state is None or owner not in state.holders:
                raise TransactionError(f"{owner!r} does not hold {resource!r}")
            state.holders.discard(owner)
            if not state.holders:
                state.mode = None
            held = self._held.get(owner)
            if held:
                held.discard(resource)
            self._cond.notify_all()

    def release_all(self, owner: Hashable) -> None:
        """Release every lock an owner holds (transaction end)."""
        with self._cond:
            for resource in list(self._held.get(owner, ())):
                state = self._locks.get(resource)
                if state is not None:
                    state.holders.discard(owner)
                    if not state.holders:
                        state.mode = None
            self._held.pop(owner, None)
            self._waits_for.pop(owner, None)
            self._cond.notify_all()

    # --------------------------------------------------------------- queries
    def holders(self, resource: Hashable) -> set:
        with self._cond:
            state = self._locks.get(resource)
            return set(state.holders) if state else set()

    def mode(self, resource: Hashable) -> Optional[LockMode]:
        with self._cond:
            state = self._locks.get(resource)
            return state.mode if state and state.holders else None

    def held_by(self, owner: Hashable) -> set:
        with self._cond:
            return set(self._held.get(owner, ()))
