"""repro — a from-scratch reproduction of *MaSM: Efficient Online Updates in
Data Warehouses* (Athanassoulis, Chen, Ailamaki, Gibbons, Stoica; SIGMOD 2011).

Quickstart::

    from repro import (
        MaSM, MaSMConfig, SimulatedDisk, SimulatedSSD, StorageVolume,
        build_synthetic_table,
    )

    disk = StorageVolume(SimulatedDisk(capacity=256 * MB))
    ssd = StorageVolume(SimulatedSSD(capacity=16 * MB))
    table = build_synthetic_table(disk, num_records=100_000)
    masm = MaSM.masm_m(table, ssd)

    masm.modify(40, {"payload": "fresh"})          # cached on the SSD
    rows = list(masm.range_scan(0, 100))           # sees the update
    masm.migrate()                                 # in-place migration

Layers:

* :mod:`repro.storage`   — simulated HDD/SSD devices, files, async overlap;
* :mod:`repro.engine`    — row-store substrate (pages, heap files, tables,
  Volcano operators) and a column-store variant;
* :mod:`repro.core`      — the paper's contribution: MaSM-2M/M/αM;
* :mod:`repro.baselines` — in-place, Indexed Updates, LSM, in-memory diff;
* :mod:`repro.txn`       — timestamps, WAL + recovery, snapshot isolation,
  two-phase locking;
* :mod:`repro.workloads` — synthetic and TPC-H-style generators;
* :mod:`repro.bench`     — drivers reproducing every figure/table.
"""

from repro.baselines import (
    IndexedUpdates,
    InMemoryDifferential,
    InPlaceUpdater,
    LSMUpdateCache,
)
from repro.core import (
    GovernorConfig,
    LoadGovernor,
    MaSM,
    MaSMConfig,
    MaSMStats,
    MaterializedSortedRun,
    MigrationStats,
    OverloadPolicy,
    ReplicaSet,
    ReplicaState,
    ReplicatedWarehouse,
    ShardedWarehouse,
    UpdateRecord,
    UpdateType,
    migrate_all,
    migrate_range,
)
from repro.engine import Schema, SlottedPage, synthetic_schema
from repro.engine.columnstore import ColumnTable
from repro.engine.table import Table
from repro.errors import (
    BackpressureError,
    BootstrapRequiredError,
    ChecksumError,
    DeadlineExceededError,
    NoHealthyReplicaError,
    QuotaExceededError,
    ReplicaUnavailableError,
    ReplicationError,
    ReproError,
    SimulatedCrash,
    StorageError,
    TransactionAborted,
    TransientIOError,
    UpdateCacheFullError,
)
from repro.storage import (
    CpuMeter,
    FaultPlan,
    FaultyDevice,
    OverlapWindow,
    SimulatedDisk,
    SimulatedSSD,
    StorageVolume,
)
from repro.txn import RedoLog, TimestampOracle, recover_masm
from repro.util.units import GB, KB, MB
from repro.workloads import (
    SyntheticUpdateGenerator,
    build_synthetic_table,
    generate_tpch,
)

__version__ = "1.0.0"

__all__ = [
    "GB",
    "KB",
    "MB",
    "BackpressureError",
    "ColumnTable",
    "BootstrapRequiredError",
    "ChecksumError",
    "CpuMeter",
    "DeadlineExceededError",
    "FaultPlan",
    "FaultyDevice",
    "GovernorConfig",
    "LoadGovernor",
    "OverloadPolicy",
    "IndexedUpdates",
    "InMemoryDifferential",
    "InPlaceUpdater",
    "LSMUpdateCache",
    "MaSM",
    "MaSMConfig",
    "MaSMStats",
    "MaterializedSortedRun",
    "MigrationStats",
    "NoHealthyReplicaError",
    "QuotaExceededError",
    "RedoLog",
    "OverlapWindow",
    "ReplicaSet",
    "ReplicaState",
    "ReplicaUnavailableError",
    "ReplicatedWarehouse",
    "ReplicationError",
    "ReproError",
    "ShardedWarehouse",
    "SimulatedCrash",
    "Schema",
    "SimulatedDisk",
    "SimulatedSSD",
    "SlottedPage",
    "StorageError",
    "StorageVolume",
    "SyntheticUpdateGenerator",
    "Table",
    "TimestampOracle",
    "TransactionAborted",
    "TransientIOError",
    "UpdateCacheFullError",
    "UpdateRecord",
    "UpdateType",
    "__version__",
    "build_synthetic_table",
    "generate_tpch",
    "migrate_all",
    "migrate_range",
    "recover_masm",
    "synthetic_schema",
]
