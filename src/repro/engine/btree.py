"""An in-memory B+-tree multimap.

Used for the in-memory indexes the paper's comparisons rely on: the
Indexed-Updates baseline keeps its update index in memory (Section 2.3), the
secondary-update index of Section 5 needs ordered range scans, and the LSM
baseline's C0 component is an ordered in-memory tree.

Keys are any totally ordered values (ints in practice); each key maps to a
list of values in insertion order.  Leaves are linked for range scans.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list = []
        self.children: list[_Node] = []  # internal nodes only
        self.values: list[list] = []  # leaves only, parallel to keys
        self.next_leaf: Optional[_Node] = None


class BPlusTree:
    """B+-tree with duplicate-key support and linked leaves."""

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 4:
            raise ValueError(f"order must be >= 4, got {order}")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._len = 0  # number of (key, value) pairs

    def __len__(self) -> int:
        return self._len

    @property
    def key_count(self) -> int:
        """Number of distinct keys."""
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ find
    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            pos = bisect.bisect_right(node.keys, key)
            node = node.children[pos]
        return node

    def search(self, key) -> list:
        """All values stored under ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        pos = bisect.bisect_left(leaf.keys, key)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            return list(leaf.values[pos])
        return []

    def __contains__(self, key) -> bool:
        leaf = self._find_leaf(key)
        pos = bisect.bisect_left(leaf.keys, key)
        return pos < len(leaf.keys) and leaf.keys[pos] == key

    # ---------------------------------------------------------------- insert
    def insert(self, key, value) -> None:
        """Add ``value`` under ``key`` (duplicates append in order)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            root = _Node(is_leaf=False)
            root.keys = [sep]
            root.children = [self._root, right]
            self._root = root
        self._len += 1

    def _insert(self, node: _Node, key, value):
        if node.is_leaf:
            pos = bisect.bisect_left(node.keys, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                node.values[pos].append(value)
                return None
            node.keys.insert(pos, key)
            node.values.insert(pos, [value])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        pos = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[pos], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(pos, sep)
        node.children.insert(pos + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ---------------------------------------------------------------- delete
    def delete(self, key, value: Any = ...) -> bool:
        """Remove one value (or all values when ``value`` is omitted).

        Returns True if something was removed.  Underflowed leaves are left
        lazily; this multimap favours simplicity over strict occupancy, which
        is fine for its in-memory index roles.
        """
        leaf = self._find_leaf(key)
        pos = bisect.bisect_left(leaf.keys, key)
        if pos >= len(leaf.keys) or leaf.keys[pos] != key:
            return False
        if value is ...:
            removed = len(leaf.values[pos])
            del leaf.keys[pos]
            del leaf.values[pos]
            self._len -= removed
            return True
        try:
            leaf.values[pos].remove(value)
        except ValueError:
            return False
        self._len -= 1
        if not leaf.values[pos]:
            del leaf.keys[pos]
            del leaf.values[pos]
        return True

    # ----------------------------------------------------------------- scans
    def _first_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def items(self) -> Iterator[tuple]:
        """All (key, value) pairs in key order (values in insertion order)."""
        leaf: Optional[_Node] = self._first_leaf()
        while leaf is not None:
            for key, values in zip(leaf.keys, leaf.values):
                for value in values:
                    yield key, value
            leaf = leaf.next_leaf

    def keys(self) -> Iterator:
        leaf: Optional[_Node] = self._first_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next_leaf

    def range(self, begin, end) -> Iterator[tuple]:
        """(key, value) pairs with begin <= key <= end, in key order."""
        if end < begin:
            return
        leaf: Optional[_Node] = self._find_leaf(begin)
        pos = bisect.bisect_left(leaf.keys, begin)
        while leaf is not None:
            while pos < len(leaf.keys):
                key = leaf.keys[pos]
                if key > end:
                    return
                for value in leaf.values[pos]:
                    yield key, value
                pos += 1
            leaf = leaf.next_leaf
            pos = 0

    def min_key(self):
        leaf = self._first_leaf()
        if not leaf.keys:
            return None
        return leaf.keys[0]

    def max_key(self):
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        if not node.keys:
            return None
        return node.keys[-1]

    # ------------------------------------------------------------ invariants
    def check_invariants(self) -> None:
        """Verify structural invariants (used by property tests)."""
        self._check_node(self._root, None, None, self._depth())
        keys = list(self.keys())
        assert keys == sorted(keys), "leaf keys out of order"

    def _depth(self) -> int:
        depth = 0
        node = self._root
        while not node.is_leaf:
            depth += 1
            node = node.children[0]
        return depth

    def _check_node(self, node: _Node, lo, hi, depth: int) -> None:
        assert node.keys == sorted(node.keys)
        for key in node.keys:
            assert lo is None or key >= lo, "key below subtree bound"
            assert hi is None or key <= hi, "key above subtree bound"
        if node.is_leaf:
            assert depth == 0, "leaves at different depths"
            assert len(node.values) == len(node.keys)
            assert all(v for v in node.values), "empty value list retained"
            return
        assert len(node.children) == len(node.keys) + 1
        bounds = [lo] + list(node.keys) + [hi]
        for i, child in enumerate(node.children):
            self._check_node(child, bounds[i], bounds[i + 1], depth - 1)
