"""Key-clustered row-store tables with range scans and in-place updates.

A :class:`Table` binds a schema, a heap file, and a sparse primary index.
Range scans stream records in key order using large sequential I/Os — the
access pattern the whole paper optimizes for.  In-place point updates use
4 KB read-modify-write I/Os, the conventional approach whose interference
Section 2.2 measures.
"""

from __future__ import annotations

import bisect
import heapq
from operator import itemgetter
from typing import Iterable, Iterator, Optional, Sequence

from repro.engine.btree import BPlusTree
from repro.engine.heapfile import DEFAULT_IO_CHUNK, HeapFile
from repro.engine.index import SparsePrimaryIndex
from repro.engine.page import DEFAULT_PAGE_SIZE, SlottedPage
from repro.engine.record import Schema
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.storage.file import StorageVolume
from repro.storage.iosched import SCAN_CPU_PER_RECORD, CpuMeter


class Table:
    """One clustered table stored in a heap file on a simulated disk."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        heap: HeapFile,
        cpu: Optional[CpuMeter] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.heap = heap
        self.index = SparsePrimaryIndex()
        self.cpu = cpu
        self.row_count = 0
        # Records that overflowed their target page live here until the next
        # migration/reorganization rewrites the file.  Scans merge them in so
        # correctness never depends on page slack.
        self._overflow = BPlusTree()

    # ----------------------------------------------------------- construction
    @classmethod
    def create(
        cls,
        volume: StorageVolume,
        name: str,
        schema: Schema,
        expected_records: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        io_chunk: int = DEFAULT_IO_CHUNK,
        cpu: Optional[CpuMeter] = None,
        slack: float = 0.25,
    ) -> "Table":
        """Allocate the file extent and return an empty table."""
        size = HeapFile.required_size(
            expected_records, schema, page_size=page_size, slack=slack
        )
        file = volume.create(name, size)
        heap = HeapFile(file, schema, page_size=page_size, io_chunk=io_chunk)
        return cls(name, schema, heap, cpu=cpu)

    def bulk_load(
        self,
        records: Iterable[Sequence],
        timestamp: int = 0,
        fill_factor: Optional[float] = None,
    ) -> None:
        """Load key-ordered records and build the sparse index.

        ``fill_factor`` caps how full each page is packed (heap default when
        None); loading below 1.0 leaves slack so later in-place migration can
        absorb inserts without a heap rewrite.
        """
        count = 0

        def counting() -> Iterator[Sequence]:
            nonlocal count
            for record in records:
                count += 1
                yield record

        kwargs = {} if fill_factor is None else {"fill_factor": fill_factor}
        entries = self.heap.bulk_load(counting(), timestamp=timestamp, **kwargs)
        self.index.rebuild(entries)
        self.row_count = count

    # ----------------------------------------------------------------- sizing
    @property
    def data_bytes(self) -> int:
        return self.heap.data_bytes

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    def full_key_range(self) -> tuple[int, int]:
        """A (begin, end) range covering every possible key."""
        return 0, 2**63 - 1

    # ------------------------------------------------------------------ scans
    def _page_records(self, page: SlottedPage) -> list[tuple]:
        records = [self.schema.unpack(data) for _, data in page.records()]
        records.sort(key=self.schema.key)
        return records

    def range_scan(self, begin_key: int, end_key: int) -> Iterator[tuple]:
        """Stream records with begin_key <= key <= end_key, in key order."""
        if self.heap.num_pages == 0 or self.index.is_empty:
            yield from self._overflow_range(begin_key, end_key)
            return
        first, last = self.index.page_span(begin_key, end_key)

        def from_pages() -> Iterator[tuple]:
            for _, page in self.heap.scan_pages(first, last):
                for record in self._page_records(page):
                    key = self.schema.key(record)
                    if key < begin_key:
                        continue
                    if key > end_key:
                        return
                    yield record

        merged = heapq.merge(
            from_pages(),
            self._overflow_range(begin_key, end_key),
            key=self.schema.key,
        )
        count = 0
        for record in merged:
            count += 1
            yield record
        if self.cpu is not None and count:
            self.cpu.charge(count * SCAN_CPU_PER_RECORD, kind="scan")

    def _overflow_range(self, begin_key: int, end_key: int) -> Iterator[tuple]:
        for _, record in self._overflow.range(begin_key, end_key):
            yield record

    def range_scan_pairs(
        self, begin_key: int, end_key: int
    ) -> Iterator[tuple[tuple, int]]:
        """Like :meth:`range_scan` but yields (record, page_timestamp) pairs.

        The page timestamp is the commit time of the last update applied to
        the record's page — what MergeDataUpdates compares against cached
        update timestamps to support queries during in-place migration.
        """
        if self.heap.num_pages == 0 or self.index.is_empty:
            for record in self._overflow_range(begin_key, end_key):
                yield record, 0
            return
        first, last = self.index.page_span(begin_key, end_key)

        def from_pages() -> Iterator[tuple[tuple, int]]:
            for _, page in self.heap.scan_pages(first, last):
                for record in self._page_records(page):
                    key = self.schema.key(record)
                    if key < begin_key:
                        continue
                    if key > end_key:
                        return
                    yield record, page.timestamp

        overflow = ((r, 0) for r in self._overflow_range(begin_key, end_key))
        merged = heapq.merge(
            from_pages(), overflow, key=lambda pair: self.schema.key(pair[0])
        )
        count = 0
        for pair in merged:
            count += 1
            yield pair
        if self.cpu is not None and count:
            self.cpu.charge(count * SCAN_CPU_PER_RECORD, kind="scan")

    def range_scan_pair_chunks(
        self, begin_key: int, end_key: int
    ) -> Iterator[tuple[list, int]]:
        """Page-at-a-time form of :meth:`range_scan_pairs`.

        Yields ``(records, page_timestamp)`` chunks — one per data page,
        records key-sorted within the chunk and chunks in key order — for
        the batch outer join (:class:`~repro.core.operators.MergeDataUpdates`
        with ``data_chunks``).  Pages still in their bulk-loaded contiguous
        layout are decoded with one ``Schema.unpack_many`` call instead of a
        record-at-a-time loop.  When overflow records exist the page/overflow
        interleave falls back to chunking :meth:`range_scan_pairs` (whose
        per-record timestamps then ride in a list).
        """
        if self.overflow_count or self.heap.num_pages == 0 or self.index.is_empty:
            pairs = self.range_scan_pairs(begin_key, end_key)
            while True:
                records: list = []
                ts: list[int] = []
                for record, page_ts in pairs:
                    records.append(record)
                    ts.append(page_ts)
                    if len(records) >= 1024:
                        break
                if not records:
                    return
                yield records, ts
            return
        first, last = self.index.page_span(begin_key, end_key)
        kp = self.schema.key_pos
        count = 0
        done = False
        for _, page in self.heap.scan_pages(first, last):
            records = self._page_records_batch(page)
            if not records:
                continue
            if records[0][kp] < begin_key:
                keys = [r[kp] for r in records]
                records = records[bisect.bisect_left(keys, begin_key) :]
                if not records:
                    continue
            if records[-1][kp] > end_key:
                keys = [r[kp] for r in records]
                records = records[: bisect.bisect_right(keys, end_key)]
                done = True
            if records:
                count += len(records)
                yield records, page.timestamp
            if done:
                break
        if self.cpu is not None and count:
            self.cpu.charge_batch(count, SCAN_CPU_PER_RECORD, kind="scan")

    def _page_records_batch(self, page: SlottedPage) -> list[tuple]:
        """A page's records, key-sorted, batch-decoded when contiguous."""
        data = page.contiguous_record_bytes(self.schema.record_size)
        if data is None:
            records = [self.schema.unpack(d) for _, d in page.records()]
        else:
            records = self.schema.unpack_many(data)
        records.sort(key=itemgetter(self.schema.key_pos))
        return records

    def scan_page_range(
        self, begin_key: Optional[int] = None, end_key: Optional[int] = None
    ) -> Iterator[tuple[int, SlottedPage]]:
        """Yield (page_no, page) pairs for migration-style page processing."""
        if self.heap.num_pages == 0:
            return iter(())
        if begin_key is None or end_key is None:
            return self.heap.scan_pages()
        first, last = self.index.page_span(begin_key, end_key)
        return self.heap.scan_pages(first, last)

    # ----------------------------------------------------------- point access
    def get(self, key: int) -> tuple:
        """Point lookup by primary key (one 4 KB random read)."""
        hit = self._overflow.search(key)
        if hit:
            return hit[0]
        if self.index.is_empty:
            raise KeyNotFoundError(f"{self.name}: key {key} (empty table)")
        page = self.heap.read_page(self.index.locate_page(key))
        for _, data in page.records():
            record = self.schema.unpack(data)
            if self.schema.key(record) == key:
                return record
        raise KeyNotFoundError(f"{self.name}: key {key}")

    # ------------------------------------------------------- in-place updates
    def insert_in_place(self, record: Sequence, timestamp: int = 0) -> None:
        """Conventional insert: 4 KB read-modify-write on the target page."""
        key = self.schema.key(record)
        data = self.schema.pack(record)
        page_no = self.index.locate_page(key)
        page = self.heap.read_page(page_no)
        for _, existing in page.records():
            if self.schema.key(self.schema.unpack(existing)) == key:
                raise DuplicateKeyError(f"{self.name}: key {key} exists")
        if self._overflow.search(key):
            raise DuplicateKeyError(f"{self.name}: key {key} exists (overflow)")
        if not page.fits(len(data)):
            page.compact()
        if page.fits(len(data)):
            page.insert(data)
            page.timestamp = max(page.timestamp, timestamp)
            self.heap.write_page(page_no, page)
        else:
            self._overflow.insert(key, tuple(record))
        self.row_count += 1

    def delete_in_place(self, key: int, timestamp: int = 0) -> None:
        """Conventional delete: 4 KB read-modify-write on the target page."""
        if self._overflow.delete(key):
            self.row_count -= 1
            return
        page_no = self.index.locate_page(key)
        page = self.heap.read_page(page_no)
        for slot, data in page.records():
            if self.schema.key(self.schema.unpack(data)) == key:
                page.delete(slot)
                page.timestamp = max(page.timestamp, timestamp)
                self.heap.write_page(page_no, page)
                self.row_count -= 1
                return
        raise KeyNotFoundError(f"{self.name}: key {key}")

    def modify_in_place(self, key: int, changes: dict, timestamp: int = 0) -> None:
        """Conventional modify: 4 KB read-modify-write on the target page."""
        hit = self._overflow.search(key)
        if hit:
            updated = self.schema.apply_modification(hit[0], changes)
            self._overflow.delete(key)
            self._overflow.insert(key, updated)
            return
        page_no = self.index.locate_page(key)
        page = self.heap.read_page(page_no)
        for slot, data in page.records():
            record = self.schema.unpack(data)
            if self.schema.key(record) == key:
                updated = self.schema.apply_modification(record, changes)
                page.replace(slot, self.schema.pack(updated))
                page.timestamp = max(page.timestamp, timestamp)
                self.heap.write_page(page_no, page)
                return
        raise KeyNotFoundError(f"{self.name}: key {key}")

    # -------------------------------------------------------------- migration
    def replace_contents(
        self, entries: list[tuple[int, int]], row_count: int
    ) -> None:
        """Swap in a fresh sparse index after migration rewrote the pages."""
        self.index.rebuild(entries)
        self.row_count = row_count
        self._overflow = BPlusTree()

    @property
    def overflow_count(self) -> int:
        return len(self._overflow)
