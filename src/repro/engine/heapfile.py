"""Heap files: fixed-size slotted pages stored contiguously on a device.

A heap file holds a table's pages clustered in primary-key order (the record
order assumption of Section 2.1).  Scans read large I/O chunks (1 MB by
default, the paper's scan I/O size) and parse the pages they contain;
point operations read and write single pages (4 KB, the paper's in-place
update I/O size).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.engine.page import DEFAULT_PAGE_SIZE, SlottedPage
from repro.engine.record import Schema
from repro.errors import PageError, StorageError
from repro.storage.file import SimFile
from repro.util.units import MB, ceil_div

DEFAULT_IO_CHUNK = 1 * MB
DEFAULT_FILL_FACTOR = 0.9


class HeapFile:
    """Pages of one table inside a contiguous :class:`SimFile` extent."""

    def __init__(
        self,
        file: SimFile,
        schema: Schema,
        page_size: int = DEFAULT_PAGE_SIZE,
        io_chunk: int = DEFAULT_IO_CHUNK,
    ) -> None:
        if io_chunk % page_size != 0:
            raise StorageError(
                f"io_chunk {io_chunk} must be a multiple of page_size {page_size}"
            )
        self.file = file
        self.schema = schema
        self.page_size = page_size
        self.io_chunk = io_chunk
        self.num_pages = 0  # pages currently holding data

    # ------------------------------------------------------------- capacity
    @property
    def capacity_pages(self) -> int:
        return self.file.size // self.page_size

    @property
    def pages_per_chunk(self) -> int:
        return self.io_chunk // self.page_size

    @property
    def data_bytes(self) -> int:
        """Bytes occupied by loaded pages."""
        return self.num_pages * self.page_size

    # ------------------------------------------------------------ bulk load
    def bulk_load(
        self,
        records: Iterable[Sequence],
        fill_factor: float = DEFAULT_FILL_FACTOR,
        timestamp: int = 0,
    ) -> list[tuple[int, int]]:
        """Load records (already sorted by key) into fresh pages.

        Pages are filled to ``fill_factor`` of their usable space so that
        later insertions usually fit without splitting, then written with
        large sequential I/Os.  Returns sparse-index entries
        ``(first_key, page_no)`` for every page written.
        """
        if not 0.0 < fill_factor <= 1.0:
            raise StorageError(f"fill_factor must be in (0, 1], got {fill_factor}")
        index_entries: list[tuple[int, int]] = []
        chunk = bytearray()
        page = SlottedPage(self.page_size, timestamp=timestamp)
        page_no = 0
        budget = int((self.page_size - 24) * fill_factor)
        used = 0
        first_key: Optional[int] = None
        last_key: Optional[int] = None

        def close_page() -> None:
            nonlocal page, page_no, used, first_key
            chunk.extend(page.to_bytes())
            index_entries.append((first_key if first_key is not None else 0, page_no))
            page_no += 1
            if len(chunk) >= self.io_chunk:
                self._flush_chunk(page_no - len(chunk) // self.page_size, chunk)
                chunk.clear()
            page = SlottedPage(self.page_size, timestamp=timestamp)
            used = 0
            first_key = None

        for record in records:
            key = self.schema.key(record)
            if last_key is not None and key < last_key:
                raise StorageError(
                    f"bulk_load requires key order (saw {key} after {last_key})"
                )
            last_key = key
            data = self.schema.pack(record)
            cost = len(data) + 8  # record plus slot entry
            if used + cost > budget or not page.fits(len(data)):
                if used == 0:
                    raise PageError(
                        f"record of {len(data)} bytes exceeds page budget {budget}"
                    )
                close_page()
            page.insert(data)
            used += cost
            if first_key is None:
                first_key = key
        if used > 0 or page_no == 0:
            close_page()
        if chunk:
            self._flush_chunk(page_no - len(chunk) // self.page_size, chunk)
        self.num_pages = page_no
        return index_entries

    def _flush_chunk(self, start_page: int, chunk: bytearray) -> None:
        offset = start_page * self.page_size
        if offset + len(chunk) > self.file.size:
            raise StorageError(
                f"heap file {self.file.name!r} overflow: need "
                f"{offset + len(chunk)} bytes, extent is {self.file.size}"
            )
        self.file.write(offset, bytes(chunk))

    # ------------------------------------------------------------ page I/O
    def read_page(self, page_no: int) -> SlottedPage:
        """Read one page with a single small (random) I/O."""
        self._check_page(page_no)
        data = self.file.read(page_no * self.page_size, self.page_size)
        return SlottedPage.from_bytes(data)

    def write_page(self, page_no: int, page: SlottedPage) -> None:
        """Write one page back in place."""
        self._check_page(page_no, allow_append=True)
        self.file.write(page_no * self.page_size, page.to_bytes())
        if page_no >= self.num_pages:
            self.num_pages = page_no + 1

    def scan_pages(
        self, first_page: int = 0, last_page: Optional[int] = None
    ) -> Iterator[tuple[int, SlottedPage]]:
        """Yield (page_no, page) over a page range using large chunked reads."""
        if last_page is None:
            last_page = self.num_pages - 1
        if self.num_pages == 0 or last_page < first_page:
            return
        self._check_page(first_page)
        last_page = min(last_page, self.num_pages - 1)
        page_no = first_page
        while page_no <= last_page:
            count = min(self.pages_per_chunk, last_page - page_no + 1)
            data = self.file.read(page_no * self.page_size, count * self.page_size)
            for i in range(count):
                raw = data[i * self.page_size : (i + 1) * self.page_size]
                yield page_no + i, SlottedPage.from_bytes(raw)
            page_no += count

    def write_pages_sequential(self, start_page: int, pages: Sequence[SlottedPage]) -> None:
        """Write consecutive pages with one large I/O (migration write-back)."""
        if not pages:
            return
        self._check_page(start_page, allow_append=True)
        data = b"".join(page.to_bytes() for page in pages)
        if (start_page * self.page_size) + len(data) > self.file.size:
            raise StorageError(f"sequential write overflows {self.file.name!r}")
        self.file.write(start_page * self.page_size, data)
        end = start_page + len(pages)
        if end > self.num_pages:
            self.num_pages = end

    def truncate(self, num_pages: int) -> None:
        """Shrink the logical page count (migration produced fewer pages)."""
        if num_pages < 0 or num_pages > self.capacity_pages:
            raise StorageError(f"cannot truncate to {num_pages} pages")
        self.num_pages = num_pages

    def _check_page(self, page_no: int, allow_append: bool = False) -> None:
        limit = self.capacity_pages if allow_append else self.num_pages
        if not 0 <= page_no < max(limit, 1):
            raise StorageError(
                f"page {page_no} out of range ({limit} pages in {self.file.name!r})"
            )

    @staticmethod
    def required_size(
        record_count: int,
        schema: Schema,
        page_size: int = DEFAULT_PAGE_SIZE,
        fill_factor: float = DEFAULT_FILL_FACTOR,
        slack: float = 0.25,
    ) -> int:
        """Extent size to hold ``record_count`` records plus insertion slack."""
        per_record = schema.record_size + 8
        budget = int((page_size - 24) * fill_factor)
        per_page = max(1, budget // per_record)
        pages = ceil_div(record_count, per_page)
        return int(pages * (1.0 + slack) + 2) * page_size
