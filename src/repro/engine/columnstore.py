"""A minimal column store (the DBMS C stand-in for Figure 4).

Attributes of a record live in separate fixed-width column files, aligned by
position (RID), as in the column-store DWs the paper evaluates [11, 22].
Range scans read only the requested columns, with large sequential I/Os per
column file; in-place updates read-modify-write the 4 KB block holding each
touched value — the access pattern whose interference Figure 4 measures.

Deletions use a validity column (one byte per row) so RIDs stay stable.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.engine.record import Schema
from repro.errors import KeyNotFoundError, SchemaError, StorageError
from repro.storage.file import SimFile, StorageVolume
from repro.storage.iosched import SCAN_CPU_PER_RECORD, CpuMeter
from repro.util.units import KB, MB, ceil_div

COLUMN_IO_CHUNK = 1 * MB
UPDATE_IO = 4 * KB  # block size for in-place value updates


class ColumnTable:
    """One table stored column-wise in RID order."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        volume: StorageVolume,
        capacity_rows: int,
        cpu: Optional[CpuMeter] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.volume = volume
        self.capacity_rows = capacity_rows
        self.cpu = cpu
        self.row_count = 0  # includes deleted rows (RID space)
        self.live_count = 0
        self._files: dict[str, SimFile] = {}
        for field in schema.fields:
            size = _aligned(capacity_rows * field.width)
            self._files[field.name] = volume.create(f"{name}.{field.name}", size)
        self._valid = volume.create(f"{name}.__valid", _aligned(capacity_rows))
        # RID lookup: key -> rid, kept in memory (the paper assumes the RID
        # of an update is provided or obtained from an in-memory index).
        self._rid_of: dict[int, int] = {}

    # ------------------------------------------------------------- bulk load
    def bulk_load(self, records) -> None:
        """Load records (key order == RID order) column by column."""
        buffers: dict[str, bytearray] = {f.name: bytearray() for f in self.schema.fields}
        valid = bytearray()
        offsets = {name: 0 for name in buffers}
        valid_offset = 0
        rid = 0
        for record in records:
            if len(record) != len(self.schema.fields):
                raise SchemaError(f"record arity mismatch: {record!r}")
            for field, value in zip(self.schema.fields, record):
                buffers[field.name] += _pack_value(field, value)
            valid.append(1)
            self._rid_of[self.schema.key(record)] = rid
            rid += 1
            if len(valid) >= COLUMN_IO_CHUNK:
                for name, buf in buffers.items():
                    self._files[name].write(offsets[name], bytes(buf))
                    offsets[name] += len(buf)
                    buf.clear()
                self._valid.write(valid_offset, bytes(valid))
                valid_offset += len(valid)
                valid.clear()
        for name, buf in buffers.items():
            if buf:
                self._files[name].write(offsets[name], bytes(buf))
        if valid:
            self._valid.write(valid_offset, bytes(valid))
        self.row_count = rid
        self.live_count = rid

    # ----------------------------------------------------------------- sizes
    @property
    def data_bytes(self) -> int:
        return self.row_count * (self.schema.record_size + 1)

    def rid_for_key(self, key: int) -> int:
        try:
            return self._rid_of[key]
        except KeyError:
            raise KeyNotFoundError(f"{self.name}: key {key}") from None

    # ------------------------------------------------------------------ scan
    def range_scan(
        self,
        begin_rid: int = 0,
        end_rid: Optional[int] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> Iterator[tuple]:
        """Stream tuples of the selected columns for RIDs in [begin, end]."""
        if end_rid is None:
            end_rid = self.row_count - 1
        if self.row_count == 0 or end_rid < begin_rid:
            return
        end_rid = min(end_rid, self.row_count - 1)
        names = list(columns) if columns is not None else self.schema.field_names()
        fields = [self.schema.fields[self.schema.index_of(n)] for n in names]
        rid = begin_rid
        count = 0
        while rid <= end_rid:
            # Read one chunk's worth of rows from each column file.
            rows_in_chunk = min(
                end_rid - rid + 1,
                max(1, COLUMN_IO_CHUNK // max(f.width for f in fields)),
            )
            column_data = [
                self._files[f.name].read(rid * f.width, rows_in_chunk * f.width)
                for f in fields
            ]
            validity = self._valid.read(rid, rows_in_chunk)
            for i in range(rows_in_chunk):
                if not validity[i]:
                    continue
                yield tuple(
                    _unpack_value(f, column_data[c], i * f.width)
                    for c, f in enumerate(fields)
                )
                count += 1
            rid += rows_in_chunk
        if self.cpu is not None and count:
            self.cpu.charge(count * SCAN_CPU_PER_RECORD)

    def get(self, key: int) -> tuple:
        rid = self.rid_for_key(key)
        for record in self.range_scan(rid, rid):
            return record
        raise KeyNotFoundError(f"{self.name}: key {key} is deleted")

    # ------------------------------------------------------ in-place updates
    def _rmw(self, file: SimFile, offset: int, data: bytes) -> None:
        """4KB-aligned read-modify-write of one value (the update I/O)."""
        block = (offset // UPDATE_IO) * UPDATE_IO
        size = min(UPDATE_IO, file.size - block)
        page = bytearray(file.read(block, size))
        page[offset - block : offset - block + len(data)] = data
        file.write(block, bytes(page))

    def modify_in_place(self, key: int, changes: dict) -> None:
        rid = self.rid_for_key(key)
        for name, value in changes.items():
            field = self.schema.fields[self.schema.index_of(name)]
            self._rmw(self._files[name], rid * field.width, _pack_value(field, value))

    def delete_in_place(self, key: int) -> None:
        rid = self._rid_of.pop(key, None)
        if rid is None:
            raise KeyNotFoundError(f"{self.name}: key {key}")
        self._rmw(self._valid, rid, b"\x00")
        self.live_count -= 1

    def insert_in_place(self, record: tuple) -> None:
        """Append a row at the end of every column (RID = row_count)."""
        if self.row_count >= self.capacity_rows:
            raise StorageError(f"{self.name}: column files are full")
        rid = self.row_count
        for field, value in zip(self.schema.fields, record):
            self._rmw(
                self._files[field.name],
                rid * field.width,
                _pack_value(field, value),
            )
        self._rmw(self._valid, rid, b"\x01")
        self._rid_of[self.schema.key(record)] = rid
        self.row_count += 1
        self.live_count += 1


def _aligned(n: int) -> int:
    return max(UPDATE_IO, ceil_div(n, UPDATE_IO) * UPDATE_IO)


def _pack_value(field, value) -> bytes:
    import struct

    if field.is_string:
        raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
        if len(raw) > field.width:
            raise SchemaError(f"value too wide for column {field.name!r}")
        return raw.ljust(field.width, b"\x00")
    return struct.pack("<" + field.struct_code(), value)


def _unpack_value(field, data: bytes, offset: int):
    import struct

    if field.is_string:
        raw = data[offset : offset + field.width]
        return raw.rstrip(b"\x00").decode("utf-8")
    return struct.unpack_from("<" + field.struct_code(), data, offset)[0]
