"""Record schemas and fixed-width binary serialization.

Tables in this reproduction follow the paper's synthetic setup (Section 4.1):
fixed-width records (100 bytes with a 4-byte integer primary key in the range
scan study) clustered on the primary key.  A :class:`Schema` describes the
fields, packs record tuples to bytes, and unpacks them back.

Field type codes:
    ``u32`` / ``u64``  — unsigned integers (4 / 8 bytes)
    ``i64``            — signed integer (8 bytes)
    ``f64``            — IEEE double (8 bytes)
    ``s<N>``           — UTF-8 string padded with NULs to exactly N bytes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SchemaError

_STRUCT_CODES = {"u32": "I", "u64": "Q", "i64": "q", "f64": "d"}


@dataclass(frozen=True)
class Field:
    """One column: a name and a type code (see module docstring)."""

    name: str
    type_code: str

    @property
    def is_string(self) -> bool:
        return self.type_code.startswith("s")

    @property
    def width(self) -> int:
        if self.is_string:
            return int(self.type_code[1:])
        return struct.calcsize("<" + _STRUCT_CODES[self.type_code])

    def struct_code(self) -> str:
        if self.is_string:
            return f"{int(self.type_code[1:])}s"
        return _STRUCT_CODES[self.type_code]


class Schema:
    """An ordered set of fields; the first field is the clustering key
    unless ``key`` names another field.

    Records are plain tuples in field order — cheap, hashable, and easy for
    tests to construct.  The schema provides all interpretation.
    """

    def __init__(self, fields: Sequence[tuple[str, str]], key: str | None = None):
        if not fields:
            raise SchemaError("a schema needs at least one field")
        self.fields = [Field(name, code) for name, code in fields]
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in {names}")
        for f in self.fields:
            if not f.is_string and f.type_code not in _STRUCT_CODES:
                raise SchemaError(f"unknown field type {f.type_code!r}")
        self._index = {f.name: i for i, f in enumerate(self.fields)}
        self.key_field = key if key is not None else self.fields[0].name
        if self.key_field not in self._index:
            raise SchemaError(f"key field {self.key_field!r} not in schema")
        self.key_pos = self._index[self.key_field]
        self._struct = struct.Struct("<" + "".join(f.struct_code() for f in self.fields))
        self.record_size = self._struct.size
        self._string_positions = tuple(
            i for i, f in enumerate(self.fields) if f.is_string
        )

    # ----------------------------------------------------------- field access
    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no field named {name!r}") from None

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def key(self, record: Sequence) -> int:
        """The clustering-key value of a record tuple."""
        return record[self.key_pos]

    # --------------------------------------------------------- (de)serialize
    def pack(self, record: Sequence) -> bytes:
        """Serialize a record tuple to its fixed-width binary form."""
        if len(record) != len(self.fields):
            raise SchemaError(
                f"record has {len(record)} values, schema has {len(self.fields)}"
            )
        prepared = []
        for field, value in zip(self.fields, record):
            if field.is_string:
                raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
                if len(raw) > field.width:
                    raise SchemaError(
                        f"value for {field.name!r} is {len(raw)} bytes, "
                        f"field holds {field.width}"
                    )
                prepared.append(raw)
            else:
                prepared.append(value)
        try:
            return self._struct.pack(*prepared)
        except struct.error as exc:
            raise SchemaError(f"cannot pack record {record!r}: {exc}") from exc

    def unpack(self, data: bytes) -> tuple:
        """Deserialize bytes produced by :meth:`pack` back into a tuple."""
        if len(data) != self.record_size:
            raise SchemaError(
                f"expected {self.record_size} bytes, got {len(data)}"
            )
        values = self._struct.unpack(data)
        out = []
        for field, value in zip(self.fields, values):
            if field.is_string:
                out.append(value.rstrip(b"\x00").decode("utf-8"))
            else:
                out.append(value)
        return tuple(out)

    def pack_many(self, records: Iterable[Sequence]) -> bytes:
        """Serialize records back-to-back (bulk-load fast path)."""
        return b"".join(self.pack(r) for r in records)

    def unpack_many(self, data: bytes) -> list[tuple]:
        """Deserialize back-to-back fixed-width records in one pass.

        The batch counterpart of :meth:`unpack` (``Struct.iter_unpack``
        instead of one ``unpack`` call per record) — what the chunked table
        scan uses to decode a whole page of contiguous records at once.
        """
        if len(data) % self.record_size:
            raise SchemaError(
                f"{len(data)} bytes is not a multiple of the "
                f"{self.record_size}-byte record size"
            )
        it = self._struct.iter_unpack(data)
        spos = self._string_positions
        if not spos:
            return list(it)
        if len(self.fields) == 2 and spos == (1,):
            # The paper's synthetic layout (int key + padded string payload).
            return [(a, b.rstrip(b"\x00").decode("utf-8")) for a, b in it]
        out = []
        for values in it:
            lst = list(values)
            for i in spos:
                lst[i] = lst[i].rstrip(b"\x00").decode("utf-8")
            out.append(tuple(lst))
        return out

    def apply_modification(self, record: tuple, changes: dict) -> tuple:
        """Return a copy of ``record`` with named fields set to new values."""
        values = list(record)
        for name, value in changes.items():
            values[self.index_of(name)] = value
        return tuple(values)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Schema)
            and self.fields == other.fields
            and self.key_field == other.key_field
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spec = ", ".join(f"{f.name}:{f.type_code}" for f in self.fields)
        return f"Schema({spec}; key={self.key_field})"


def synthetic_schema(record_size: int = 100) -> Schema:
    """The synthetic table of Section 4.1: 4-byte key + payload filler.

    ``record_size`` must leave room for the key (default 100 bytes total).
    """
    payload = record_size - 4
    if payload < 1:
        raise SchemaError(f"record_size {record_size} too small for a u32 key")
    return Schema([("key", "u32"), ("payload", f"s{payload}")])
