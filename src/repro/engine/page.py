"""Slotted data pages with a page timestamp in the LSN field.

Layout (little-endian)::

    0            8            12           16          20
    +------------+------------+------------+-----------+----------------
    | timestamp  | slot_count | free_start | free_end  | record heap ...
    +------------+------------+------------+-----------+----------------
                                    ... slot directory grows downward from
                                        the page end: (offset u32, len u32)

The 8-byte *timestamp* reuses what a conventional engine stores as the page
LSN (Section 3.2): it records the commit timestamp of the last update applied
to the page, which is how in-place migration decides whether a cached update
has already been applied.

Deleted slots keep their directory entry with offset ``0xFFFFFFFF`` so slot
numbers (RIDs) remain stable; compaction rewrites the heap but preserves the
directory.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import PageError

HEADER = struct.Struct("<QIII")  # timestamp, slot_count, free_start, free_end
SLOT = struct.Struct("<II")  # record offset, record length
TOMBSTONE = 0xFFFFFFFF

DEFAULT_PAGE_SIZE = 4096


class SlottedPage:
    """A single slotted page manipulated entirely in memory.

    Pages are created empty (:meth:`__init__`) or parsed from bytes
    (:meth:`from_bytes`) and serialized with :meth:`to_bytes`.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, timestamp: int = 0):
        if page_size < HEADER.size + SLOT.size + 1:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        self.timestamp = timestamp
        self._slots: list[tuple[int, int]] = []  # (offset, length)
        self._heap = bytearray()
        self._heap_base = HEADER.size

    # ---------------------------------------------------------------- sizing
    @property
    def slot_count(self) -> int:
        return len(self._slots)

    @property
    def live_count(self) -> int:
        """Slots that are not tombstoned."""
        return sum(1 for offset, _ in self._slots if offset != TOMBSTONE)

    @property
    def free_space(self) -> int:
        """Bytes available for one more record *and* its slot entry."""
        used = HEADER.size + len(self._heap) + SLOT.size * len(self._slots)
        return self.page_size - used

    def fits(self, record_len: int) -> bool:
        return record_len + SLOT.size <= self.free_space

    # ------------------------------------------------------------ record ops
    def insert(self, record: bytes) -> int:
        """Append a record; returns its slot number. Raises if it won't fit."""
        if not self.fits(len(record)):
            raise PageError(
                f"record of {len(record)} bytes does not fit "
                f"(free={self.free_space})"
            )
        offset = self._heap_base + len(self._heap)
        self._heap.extend(record)
        self._slots.append((offset, len(record)))
        return len(self._slots) - 1

    def contiguous_record_bytes(self, record_size: int) -> "bytes | None":
        """The page's records as one contiguous byte run, or None.

        Succeeds only when every slot is live, ``record_size`` long, and laid
        out back-to-back in slot order — true for bulk-loaded pages and
        preserved by same-length in-place replacement.  Lets the chunked
        scan batch-decode the whole page (``Schema.unpack_many``) instead of
        slot-at-a-time.
        """
        expected = self._heap_base
        for offset, length in self._slots:
            if offset != expected or length != record_size:
                return None
            expected += record_size
        return bytes(self._heap[: len(self._slots) * record_size])

    def get(self, slot: int) -> bytes:
        offset, length = self._slot_entry(slot)
        if offset == TOMBSTONE:
            raise PageError(f"slot {slot} is deleted")
        start = offset - self._heap_base
        return bytes(self._heap[start : start + length])

    def is_deleted(self, slot: int) -> bool:
        offset, _ = self._slot_entry(slot)
        return offset == TOMBSTONE

    def delete(self, slot: int) -> None:
        """Tombstone a slot (space is reclaimed by :meth:`compact`)."""
        offset, length = self._slot_entry(slot)
        if offset == TOMBSTONE:
            raise PageError(f"slot {slot} already deleted")
        self._slots[slot] = (TOMBSTONE, length)

    def replace(self, slot: int, record: bytes) -> None:
        """Overwrite a slot's record.

        Same-length replacements are done in place; a different length
        appends to the heap (the old bytes become garbage until compaction).
        """
        offset, length = self._slot_entry(slot)
        if offset == TOMBSTONE:
            raise PageError(f"slot {slot} is deleted")
        if len(record) == length:
            start = offset - self._heap_base
            self._heap[start : start + length] = record
            return
        growth = len(record)
        if growth + 0 > self.free_space:
            raise PageError(
                f"replacement of {growth} bytes does not fit (free={self.free_space})"
            )
        new_offset = self._heap_base + len(self._heap)
        self._heap.extend(record)
        self._slots[slot] = (new_offset, len(record))

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield (slot, record_bytes) for every live slot, in slot order."""
        for slot in range(len(self._slots)):
            offset, length = self._slots[slot]
            if offset == TOMBSTONE:
                continue
            start = offset - self._heap_base
            yield slot, bytes(self._heap[start : start + length])

    def compact(self) -> None:
        """Rewrite the heap dropping dead space; slot numbers are preserved."""
        heap = bytearray()
        slots: list[tuple[int, int]] = []
        for offset, length in self._slots:
            if offset == TOMBSTONE:
                slots.append((TOMBSTONE, length))
                continue
            start = offset - self._heap_base
            new_offset = self._heap_base + len(heap)
            heap.extend(self._heap[start : start + length])
            slots.append((new_offset, length))
        self._heap = heap
        self._slots = slots

    # --------------------------------------------------------- serialization
    def to_bytes(self) -> bytes:
        free_start = self._heap_base + len(self._heap)
        free_end = self.page_size - SLOT.size * len(self._slots)
        if free_end < free_start:
            raise PageError("page overflow during serialization")
        buf = bytearray(self.page_size)
        HEADER.pack_into(buf, 0, self.timestamp, len(self._slots), free_start, free_end)
        buf[self._heap_base : free_start] = self._heap
        pos = self.page_size - SLOT.size
        for offset, length in self._slots:
            SLOT.pack_into(buf, pos, offset, length)
            pos -= SLOT.size
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SlottedPage":
        if len(data) < HEADER.size:
            raise PageError(f"page of {len(data)} bytes is too small to parse")
        timestamp, slot_count, free_start, free_end = HEADER.unpack_from(data, 0)
        page = cls(page_size=len(data), timestamp=timestamp)
        if free_start < HEADER.size or free_start > len(data):
            raise PageError("corrupt page header (free_start)")
        expected_end = len(data) - SLOT.size * slot_count
        if free_end != expected_end or free_end < free_start:
            raise PageError("corrupt page header (free_end)")
        page._heap = bytearray(data[HEADER.size : free_start])
        pos = len(data) - SLOT.size
        for _ in range(slot_count):
            offset, length = SLOT.unpack_from(data, pos)
            if offset != TOMBSTONE and (
                offset < HEADER.size or offset + length > free_start
            ):
                raise PageError("corrupt slot entry")
            page._slots.append((offset, length))
            pos -= SLOT.size
        return page

    # -------------------------------------------------------------- internal
    def _slot_entry(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < len(self._slots):
            raise PageError(f"slot {slot} out of range (count={len(self._slots)})")
        return self._slots[slot]

    def __len__(self) -> int:
        return self.live_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlottedPage(ts={self.timestamp}, slots={self.slot_count}, "
            f"live={self.live_count}, free={self.free_space})"
        )


def empty_page_bytes(page_size: int = DEFAULT_PAGE_SIZE) -> bytes:
    """Serialized form of a fresh page (used to format heap files)."""
    return SlottedPage(page_size).to_bytes()
