"""A small LRU buffer pool over a heap file.

MaSM deliberately requires *no* buffer-manager changes (Section 1.2's final
design point); the pool here is the plain substrate piece a storage manager
provides: pin/unpin, dirty tracking, LRU eviction with write-back.  Migration
uses it to apply updates to data pages "in the database buffer pool"
(Section 3.2) before issuing large sequential writes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.heapfile import HeapFile
from repro.engine.page import SlottedPage
from repro.errors import StorageError


@dataclass
class _Frame:
    page: SlottedPage
    dirty: bool = False
    pins: int = 0


class BufferPool:
    """LRU cache of :class:`SlottedPage` frames for one heap file."""

    def __init__(self, heap: HeapFile, capacity_pages: int = 256) -> None:
        if capacity_pages < 1:
            raise StorageError("buffer pool needs at least one frame")
        self.heap = heap
        self.capacity = capacity_pages
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, page_no: int, pin: bool = False) -> SlottedPage:
        """Fetch a page, reading it on a miss; optionally pin it."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self.hits += 1
            self._frames.move_to_end(page_no)
        else:
            self.misses += 1
            self._evict_if_full()
            frame = _Frame(self.heap.read_page(page_no))
            self._frames[page_no] = frame
        if pin:
            frame.pins += 1
        return frame.page

    def unpin(self, page_no: int) -> None:
        frame = self._frames.get(page_no)
        if frame is None or frame.pins == 0:
            raise StorageError(f"page {page_no} is not pinned")
        frame.pins -= 1

    def mark_dirty(self, page_no: int) -> None:
        frame = self._frames.get(page_no)
        if frame is None:
            raise StorageError(f"page {page_no} is not resident")
        frame.dirty = True

    def put(self, page_no: int, page: SlottedPage, dirty: bool = True) -> None:
        """Install a page produced elsewhere (e.g. migration output)."""
        frame = self._frames.get(page_no)
        if frame is not None:
            if frame.pins:
                raise StorageError(f"page {page_no} is pinned; cannot replace")
            frame.page = page
            frame.dirty = frame.dirty or dirty
            self._frames.move_to_end(page_no)
            return
        self._evict_if_full()
        self._frames[page_no] = _Frame(page, dirty=dirty)

    def flush(self, page_no: int) -> None:
        frame = self._frames.get(page_no)
        if frame is None:
            return
        if frame.dirty:
            self.heap.write_page(page_no, frame.page)
            frame.dirty = False

    def flush_all(self) -> None:
        for page_no in list(self._frames):
            self.flush(page_no)

    def drop_all(self) -> None:
        """Discard every unpinned frame without writing (crash simulation)."""
        for page_no in list(self._frames):
            if self._frames[page_no].pins == 0:
                del self._frames[page_no]

    def _evict_if_full(self) -> None:
        while len(self._frames) >= self.capacity:
            victim_no = None
            for page_no, frame in self._frames.items():  # LRU order
                if frame.pins == 0:
                    victim_no = page_no
                    break
            if victim_no is None:
                raise StorageError("all buffer pool frames are pinned")
            frame = self._frames.pop(victim_no)
            if frame.dirty:
                self.heap.write_page(victim_no, frame.page)
            self.evictions += 1

    @property
    def resident(self) -> int:
        return len(self._frames)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
