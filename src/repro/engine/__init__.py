"""Row-store engine substrate: records, pages, heap files, tables, scans."""

from repro.engine.record import Field, Schema, synthetic_schema
from repro.engine.page import DEFAULT_PAGE_SIZE, SlottedPage, empty_page_bytes

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "Field",
    "Schema",
    "SlottedPage",
    "empty_page_bytes",
    "synthetic_schema",
]
