"""Sparse primary-key index over a heap file.

One ``(first_key, page_no)`` entry per page, kept sorted; the usual companion
of key-clustered storage.  This is the structure the paper assumes exists for
locating records by primary key (and the one migration refreshes as it
rewrites pages, Section 3.2).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional

from repro.errors import KeyNotFoundError


class SparsePrimaryIndex:
    """Maps a key to the page that could contain it.

    Entries must describe consecutive pages of a key-clustered file: page
    ``i``'s ``first_key`` is <= every key stored on page ``i``.
    """

    def __init__(self, entries: Optional[Iterable[tuple[int, int]]] = None):
        self._keys: list[int] = []
        self._pages: list[int] = []
        if entries:
            self.rebuild(entries)

    def rebuild(self, entries: Iterable[tuple[int, int]]) -> None:
        """Replace the whole index (bulk load or post-migration refresh)."""
        pairs = sorted(entries, key=lambda e: e[1])  # page order
        keys = [k for k, _ in pairs]
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("sparse index entries must be key-ordered by page")
        self._keys = keys
        self._pages = [p for _, p in pairs]

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def is_empty(self) -> bool:
        return not self._keys

    def locate_page(self, key: int) -> int:
        """Page number whose key range covers ``key``.

        Raises :class:`KeyNotFoundError` on an empty index; a key smaller
        than the first page's first key maps to the first page (it simply
        won't be found there).
        """
        if not self._keys:
            raise KeyNotFoundError("index is empty")
        pos = bisect.bisect_right(self._keys, key) - 1
        if pos < 0:
            pos = 0
        return self._pages[pos]

    def page_span(self, begin_key: int, end_key: int) -> tuple[int, int]:
        """Inclusive (first_page, last_page) covering keys in [begin, end]."""
        if end_key < begin_key:
            raise ValueError(f"empty key range [{begin_key}, {end_key}]")
        if not self._keys:
            raise KeyNotFoundError("index is empty")
        first = self.locate_page(begin_key)
        last = self.locate_page(end_key)
        return first, last

    def first_key_of(self, page_no: int) -> int:
        pos = self._pages.index(page_no)
        return self._keys[pos]

    def entries(self) -> list[tuple[int, int]]:
        return list(zip(self._keys, self._pages))
