"""Volcano-style query operators (Graefe [9] in the paper).

MaSM hides behind the ``Table_range_scan`` interface: the storage manager
swaps the plain scan for a merge tree without the query processor noticing
(Section 3.2).  The small operator algebra here is what examples and the
TPC-H replay build their plans from.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.engine.record import Schema
from repro.engine.table import Table


class Operator:
    """Base iterator-model operator: open / next / close.

    Operators are also Python iterables; iterating opens them on first use
    and closes them when exhausted.
    """

    def open(self) -> None:
        """Prepare the operator (default: nothing)."""

    def next(self) -> Optional[tuple]:
        """Return the next record, or None when exhausted."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (default: nothing)."""

    def __iter__(self) -> Iterator[tuple]:
        self.open()
        try:
            while True:
                record = self.next()
                if record is None:
                    return
                yield record
        finally:
            self.close()


class TableRangeScan(Operator):
    """The plain range scan MaSM replaces: records in key order from disk."""

    def __init__(self, table: Table, begin_key: int, end_key: int) -> None:
        self.table = table
        self.begin_key = begin_key
        self.end_key = end_key
        self._source: Optional[Iterator[tuple]] = None

    def open(self) -> None:
        self._source = self.table.range_scan(self.begin_key, self.end_key)

    def next(self) -> Optional[tuple]:
        if self._source is None:
            self.open()
        assert self._source is not None
        return next(self._source, None)

    def close(self) -> None:
        self._source = None


class IterSource(Operator):
    """Adapts any record iterable into an operator (tests, private buffers)."""

    def __init__(self, records: Iterable[tuple]) -> None:
        self._records = records
        self._source: Optional[Iterator[tuple]] = None

    def open(self) -> None:
        self._source = iter(self._records)

    def next(self) -> Optional[tuple]:
        if self._source is None:
            self.open()
        assert self._source is not None
        return next(self._source, None)


class Filter(Operator):
    """Keeps records satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Callable[[tuple], bool]):
        self.child = child
        self.predicate = predicate

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[tuple]:
        while True:
            record = self.child.next()
            if record is None:
                return None
            if self.predicate(record):
                return record

    def close(self) -> None:
        self.child.close()


class Project(Operator):
    """Narrows records to the named fields of a schema."""

    def __init__(self, child: Operator, schema: Schema, fields: Sequence[str]):
        self.child = child
        self._positions = [schema.index_of(name) for name in fields]

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[tuple]:
        record = self.child.next()
        if record is None:
            return None
        return tuple(record[i] for i in self._positions)

    def close(self) -> None:
        self.child.close()


class Limit(Operator):
    """Stops after ``n`` records."""

    def __init__(self, child: Operator, n: int) -> None:
        self.child = child
        self.n = n
        self._seen = 0

    def open(self) -> None:
        self._seen = 0
        self.child.open()

    def next(self) -> Optional[tuple]:
        if self._seen >= self.n:
            return None
        record = self.child.next()
        if record is not None:
            self._seen += 1
        return record

    def close(self) -> None:
        self.child.close()


class Aggregate(Operator):
    """Full-input aggregate producing a single tuple of reducer outputs.

    Each reducer is ``(initial, step)`` where ``step(acc, record) -> acc``.
    """

    def __init__(self, child: Operator, reducers: Sequence[tuple]) -> None:
        self.child = child
        self.reducers = list(reducers)
        self._done = False

    def open(self) -> None:
        self._done = False
        self.child.open()

    def next(self) -> Optional[tuple]:
        if self._done:
            return None
        accs = [initial for initial, _ in self.reducers]
        while True:
            record = self.child.next()
            if record is None:
                break
            for i, (_, step) in enumerate(self.reducers):
                accs[i] = step(accs[i], record)
        self._done = True
        return tuple(accs)

    def close(self) -> None:
        self.child.close()


def count_reducer() -> tuple:
    """Reducer counting records, for :class:`Aggregate`."""
    return 0, lambda acc, _record: acc + 1


def sum_reducer(position: int) -> tuple:
    """Reducer summing a field by tuple position, for :class:`Aggregate`."""
    return 0, lambda acc, record: acc + record[position]
