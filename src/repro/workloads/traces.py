"""I/O trace recording and replay (the blktrace methodology of Section 2.2).

The paper records the I/O of offline updates on a column store and replays
it concurrently with queries, converting writes to reads "so that we can
replay the disk head movements without corrupting the database".  The tools
here do the same against simulated devices: :class:`TraceRecorder` hooks a
device and captures every operation; :func:`replay_trace` re-issues the
operations (optionally writes-as-reads) on any device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.storage.device import Device


@dataclass(frozen=True)
class TraceEvent:
    """One recorded I/O: byte offset, size, and direction."""

    offset: int
    size: int
    is_write: bool


class TraceRecorder:
    """Captures a device's reads/writes while attached.

    Use as a context manager::

        with TraceRecorder(disk) as trace:
            run_updates()
        replay_trace(trace.events, other_disk)
    """

    def __init__(self, device: Device) -> None:
        self.device = device
        self.events: list[TraceEvent] = []
        self._original_read = None
        self._original_write = None

    def __enter__(self) -> "TraceRecorder":
        self._original_read = self.device.read
        self._original_write = self.device.write

        def recording_read(offset: int, size: int) -> bytes:
            self.events.append(TraceEvent(offset, size, is_write=False))
            return self._original_read(offset, size)

        def recording_write(offset: int, data: bytes) -> None:
            self.events.append(TraceEvent(offset, len(data), is_write=True))
            self._original_write(offset, data)

        self.device.read = recording_read  # type: ignore[method-assign]
        self.device.write = recording_write  # type: ignore[method-assign]
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.device.read = self._original_read  # type: ignore[method-assign]
        self.device.write = self._original_write  # type: ignore[method-assign]

    @property
    def bytes_traced(self) -> int:
        return sum(e.size for e in self.events)


def replay_trace(
    events: Iterable[TraceEvent],
    device: Device,
    writes_as_reads: bool = True,
    limit: Optional[int] = None,
) -> int:
    """Re-issue traced operations on ``device``; returns operations replayed.

    With ``writes_as_reads`` (the paper's method) every write becomes a read
    of the same location: identical head movement, no data corruption.
    """
    replayed = 0
    for event in events:
        if limit is not None and replayed >= limit:
            break
        size = min(event.size, device.capacity - event.offset)
        if size <= 0:
            continue
        if event.is_write and not writes_as_reads:
            device.write(event.offset, b"\x00" * size)
        else:
            device.read(event.offset, size)
        replayed += 1
    return replayed


def interleave_traces(
    primary: Iterable[TraceEvent],
    background: Iterable[TraceEvent],
    ratio: float,
) -> Iterable[TraceEvent]:
    """Mix a background trace into a primary one at ``ratio`` events per
    primary event (how the paper emulates online updates during queries)."""
    background_iter = iter(background)
    exhausted = False
    credit = 0.0
    for event in primary:
        yield event
        credit += ratio
        while credit >= 1.0 and not exhausted:
            extra = next(background_iter, None)
            if extra is None:
                exhausted = True  # background ended; primary continues alone
                break
            yield extra
            credit -= 1.0
