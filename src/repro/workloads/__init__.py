"""Workload generators: the synthetic table of Section 4.2, the TPC-H-style
replay of Section 4.3, and blktrace-style trace record/replay."""

from repro.workloads.synthetic import (
    ArrivalPhase,
    FloodSchedule,
    SyntheticUpdateGenerator,
    UpdateMix,
    ZipfSampler,
    build_synthetic_table,
    flood_stream,
    range_for_bytes,
)
from repro.workloads.tpch import (
    QUERY_IDS,
    QUERY_SCANS,
    SCHEMAS,
    TPCHInstance,
    generate_tpch,
    replay_query,
    tpch_update_stream,
)
from repro.workloads.traces import TraceEvent, TraceRecorder, interleave_traces, replay_trace

__all__ = [
    "QUERY_IDS",
    "QUERY_SCANS",
    "SCHEMAS",
    "ArrivalPhase",
    "FloodSchedule",
    "SyntheticUpdateGenerator",
    "TPCHInstance",
    "TraceEvent",
    "TraceRecorder",
    "UpdateMix",
    "ZipfSampler",
    "build_synthetic_table",
    "flood_stream",
    "generate_tpch",
    "interleave_traces",
    "range_for_bytes",
    "replay_query",
    "replay_trace",
    "tpch_update_stream",
]
