"""The synthetic workload of Section 4.1/4.2.

A table of fixed-width records with even-numbered primary keys, "so that
odd-numbered keys can be used to generate insertions"; updates are drawn
randomly (uniform by default, optionally zipfian for the skew experiments)
across the whole table with the type (insert/delete/modify) chosen randomly.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.update import UpdateRecord, UpdateType
from repro.engine.record import Schema, synthetic_schema
from repro.engine.table import Table
from repro.storage.file import StorageVolume
from repro.storage.iosched import CpuMeter
from repro.txn.timestamps import TimestampOracle


def build_synthetic_table(
    volume: StorageVolume,
    num_records: int,
    record_size: int = 100,
    name: str = "synthetic",
    cpu: Optional[CpuMeter] = None,
    slack: float = 0.25,
) -> Table:
    """The 100-byte-record table, populated with even keys 0, 2, 4, ..."""
    schema = synthetic_schema(record_size)
    table = Table.create(volume, name, schema, num_records, cpu=cpu, slack=slack)
    table.bulk_load((i * 2, f"rec-{i}") for i in range(num_records))
    return table


class ZipfSampler:
    """Ranked zipfian sampling over [0, n): P(rank i) ∝ 1 / (i+1)^s."""

    def __init__(self, n: int, s: float = 1.2, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("need at least one rank")
        self._rng = random.Random(seed)
        weights = [1.0 / (i + 1) ** s for i in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        self._cdf = cumulative
        # Fixed shuffle so hot ranks are spread across the key space rather
        # than clustered at its start.
        self._permutation = list(range(n))
        self._rng.shuffle(self._permutation)

    def sample(self) -> int:
        u = self._rng.random()
        return self._permutation[bisect_right(self._cdf, u)]


@dataclass
class UpdateMix:
    """Relative weights of update types in the generated stream."""

    insert: float = 1.0
    delete: float = 1.0
    modify: float = 1.0


class SyntheticUpdateGenerator:
    """Streams well-formed updates against a synthetic table.

    Tracks which keys are live so the stream never produces an ill-formed
    update (duplicate insert, delete of a missing key).  Distribution is
    ``"uniform"`` or ``"zipf"`` over key *positions* (Section 3.5's skew
    discussion).
    """

    def __init__(
        self,
        num_records: int,
        schema: Optional[Schema] = None,
        seed: int = 0,
        distribution: str = "uniform",
        zipf_s: float = 1.2,
        mix: Optional[UpdateMix] = None,
        oracle: Optional[TimestampOracle] = None,
    ) -> None:
        self.schema = schema or synthetic_schema()
        self.rng = random.Random(seed)
        self.oracle = oracle
        self.mix = mix or UpdateMix()
        self.num_records = num_records
        # Positions 0..2*num_records map to keys; even live, odd free.
        self._live = [i * 2 for i in range(num_records)]
        self._live_set = set(self._live)
        self._free_odd = num_records  # counter for fresh odd keys
        if distribution == "uniform":
            self._sampler = None
        elif distribution == "zipf":
            self._sampler = ZipfSampler(2 * num_records, s=zipf_s, seed=seed)
        else:
            raise ValueError(f"unknown distribution {distribution!r}")
        total = self.mix.insert + self.mix.delete + self.mix.modify
        self._p_insert = self.mix.insert / total
        self._p_delete = self.mix.delete / total
        self._counter = 0

    # ---------------------------------------------------------------- drawing
    def _draw_position(self) -> int:
        if self._sampler is None:
            return self.rng.randrange(2 * self.num_records)
        return self._sampler.sample()

    def _timestamp(self) -> int:
        if self.oracle is not None:
            return self.oracle.next()
        self._counter += 1
        return self._counter

    def _payload(self) -> str:
        return f"upd-{self.rng.randrange(10**9)}"

    def next_update(self) -> UpdateRecord:
        """One well-formed update with a fresh timestamp."""
        ts = self._timestamp()
        roll = self.rng.random()
        if roll < self._p_insert or not self._live:
            key = self._fresh_key()
            self._live_set.add(key)
            self._live.append(key)
            return UpdateRecord(ts, key, UpdateType.INSERT, (key, self._payload()))
        position = self._draw_position()
        key = self._key_near(position)
        if roll < self._p_insert + self._p_delete:
            self._live_set.discard(key)
            # Lazy removal from the list: swap-delete on lookup.
            return UpdateRecord(ts, key, UpdateType.DELETE, None)
        return UpdateRecord(ts, key, UpdateType.MODIFY, {"payload": self._payload()})

    def _fresh_key(self) -> int:
        key = self._free_odd * 2 + 1
        self._free_odd += 1
        return key

    def _key_near(self, position: int) -> int:
        """A live key chosen by the (possibly skewed) position draw."""
        if not self._live:
            raise RuntimeError("no live keys to update")
        index = position % len(self._live)
        key = self._live[index]
        while key not in self._live_set:
            # Compact lazily deleted entries.
            self._live[index] = self._live[-1]
            self._live.pop()
            if not self._live:
                raise RuntimeError("no live keys to update")
            index = position % len(self._live)
            key = self._live[index]
        return key

    def stream(self, count: Optional[int] = None) -> Iterator[UpdateRecord]:
        """An (optionally bounded) stream of updates."""
        produced = 0
        while count is None or produced < count:
            yield self.next_update()
            produced += 1


@dataclass
class ArrivalPhase:
    """One constant-rate stretch of an arrival schedule."""

    #: Updates per simulated second (must be > 0).
    rate: float
    #: Updates arriving during this phase.
    count: int

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"phase rate must be > 0, got {self.rate}")
        if self.count < 0:
            raise ValueError(f"phase count must be >= 0, got {self.count}")

    @property
    def duration(self) -> float:
        return self.count / self.rate


class FloodSchedule:
    """A piecewise-constant arrival schedule for overload experiments.

    The governor experiments (Section 7.3 / Figure 12 flavour) need traffic
    whose *arrival rate* is controlled relative to the engine's sustainable
    migration rate — a steady trickle, a short burst at 10x, a sustained
    2x flood.  A schedule is a list of :class:`ArrivalPhase`; iterate
    :meth:`arrival_times` for the absolute simulated arrival instant of
    every update.
    """

    def __init__(self, phases: Sequence[ArrivalPhase]) -> None:
        if not phases:
            raise ValueError("schedule needs at least one phase")
        self.phases = list(phases)

    @classmethod
    def steady(cls, rate: float, count: int) -> "FloodSchedule":
        """A single constant-rate phase."""
        return cls([ArrivalPhase(rate, count)])

    @classmethod
    def burst(
        cls,
        base_rate: float,
        burst_rate: float,
        base_count: int,
        burst_count: int,
        cycles: int = 1,
    ) -> "FloodSchedule":
        """Alternating base-load and burst phases, ``cycles`` times over."""
        phases: list[ArrivalPhase] = []
        for _ in range(max(1, cycles)):
            phases.append(ArrivalPhase(base_rate, base_count))
            phases.append(ArrivalPhase(burst_rate, burst_count))
        return cls(phases)

    @property
    def total_updates(self) -> int:
        return sum(phase.count for phase in self.phases)

    @property
    def duration(self) -> float:
        return sum(phase.duration for phase in self.phases)

    def arrival_times(self, start: float = 0.0) -> Iterator[float]:
        """Absolute arrival instants, phase by phase."""
        t = start
        for phase in self.phases:
            gap = 1.0 / phase.rate
            for _ in range(phase.count):
                t += gap
                yield t


class PoissonProcess:
    """Open-loop Poisson arrivals: exponential inter-arrival gaps at ``rate``.

    The serving layer's open-loop sessions draw arrival instants from one of
    these — arrivals keep coming whether or not earlier requests finished,
    which is what makes overload visible as queueing delay (a closed-loop
    client would politely slow down and hide it).  Deterministic: the gap
    stream is a pure function of ``(rate, seed)``, seeded the same
    hash-independent way as the simulator's actors.
    """

    def __init__(self, rate: float, seed: int = 0, phase: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be > 0, got {rate}")
        self.rate = rate
        self.phase = phase
        self._rng = random.Random(f"poisson:{seed}")

    def arrival_times(self, start: float = 0.0) -> Iterator[float]:
        """Unbounded absolute arrival instants from ``start + phase``."""
        t = start + self.phase
        while True:
            t += self._rng.expovariate(self.rate)
            yield t


class BurstyProcess:
    """Open-loop on/off arrivals: Poisson bursts separated by silent gaps.

    Each burst draws ``burst_len`` arrivals at ``burst_rate``; between
    bursts the source goes quiet for an exponential gap with mean
    ``idle_seconds``.  The time-averaged rate is below ``burst_rate``, but
    every burst momentarily hammers the front door — the arrival pattern
    tenant quotas exist to contain.
    """

    def __init__(
        self,
        burst_rate: float,
        burst_len: int,
        idle_seconds: float,
        seed: int = 0,
        phase: float = 0.0,
    ) -> None:
        if burst_rate <= 0:
            raise ValueError(f"burst rate must be > 0, got {burst_rate}")
        if burst_len < 1:
            raise ValueError(f"burst length must be >= 1, got {burst_len}")
        if idle_seconds < 0:
            raise ValueError(f"idle gap must be >= 0, got {idle_seconds}")
        self.burst_rate = burst_rate
        self.burst_len = burst_len
        self.idle_seconds = idle_seconds
        self.phase = phase
        self._rng = random.Random(f"bursty:{seed}")

    def arrival_times(self, start: float = 0.0) -> Iterator[float]:
        """Unbounded absolute arrival instants from ``start + phase``."""
        t = start + self.phase
        while True:
            for _ in range(self.burst_len):
                t += self._rng.expovariate(self.burst_rate)
                yield t
            if self.idle_seconds:
                t += self._rng.expovariate(1.0 / self.idle_seconds)


def flood_stream(
    generator: SyntheticUpdateGenerator,
    schedule: FloodSchedule,
    start: float = 0.0,
) -> Iterator[tuple[float, UpdateRecord]]:
    """Pair a well-formed update stream with scheduled arrival times.

    Yields ``(arrival_time, update)``; the driver advances the shared
    SimClock to each arrival time before calling ``masm.apply`` so that
    admission control and backpressure read realistic inter-arrival gaps.
    """
    for arrival in schedule.arrival_times(start):
        yield arrival, generator.next_update()


def range_for_bytes(table: Table, size_bytes: int, rng: random.Random) -> tuple[int, int]:
    """A random key range whose records cover about ``size_bytes``.

    Used by the Figure 9/10 sweeps ("varying the range size from 100GB to
    4KB"), scaled to whatever the table actually holds.
    """
    records = max(1, size_bytes // table.schema.record_size)
    max_key = 2 * table.row_count
    span = min(records * 2, max_key)  # keys step by 2
    begin = rng.randrange(0, max(1, max_key - span))
    return begin, begin + span - 1
