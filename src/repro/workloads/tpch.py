"""A scaled TPC-H-style schema, data generator, and query replay catalog.

The paper replays `blktrace` I/O traces of 20 TPC-H queries (SF=30) against
its prototype: every trace amounts to a sequence of table range scans.  We
generate the equivalent directly — scaled tables with TPC-H's relative
cardinalities and a per-query catalog of which tables each query scans (and
what fraction) derived from the TPC-H query definitions.  Replaying a query
issues those scans through whatever engine is under test.

Update semantics follow Section 4.3: random updates across ``orders`` and
``lineitem`` (over 80% of the data), keeping an order and its lineitems
inserted or deleted together.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.core.update import UpdateRecord, UpdateType
from repro.engine.record import Schema
from repro.engine.table import Table
from repro.storage.file import StorageVolume
from repro.storage.iosched import CpuMeter
from repro.txn.timestamps import TimestampOracle

#: Rows per unit scale factor (TPC-H cardinalities, scaled down ~1000x so a
#: "SF 30" replay is tractable in pure Python — ratios preserved).
ROWS_PER_SF = {
    "lineitem": 6000,
    "orders": 1500,
    "partsupp": 800,
    "part": 200,
    "customer": 150,
    "supplier": 10,
    "nation": 25,  # fixed size in TPC-H
    "region": 5,  # fixed size in TPC-H
}

LINEITEMS_PER_ORDER = 4  # average per TPC-H

SCHEMAS: dict[str, Schema] = {
    "region": Schema([("r_regionkey", "u32"), ("r_name", "s12")]),
    "nation": Schema(
        [("n_nationkey", "u32"), ("n_regionkey", "u32"), ("n_name", "s12")]
    ),
    "supplier": Schema(
        [
            ("s_suppkey", "u32"),
            ("s_nationkey", "u32"),
            ("s_acctbal", "f64"),
            ("s_name", "s18"),
        ]
    ),
    "customer": Schema(
        [
            ("c_custkey", "u32"),
            ("c_nationkey", "u32"),
            ("c_acctbal", "f64"),
            ("c_mktsegment", "s10"),
        ]
    ),
    "part": Schema(
        [
            ("p_partkey", "u32"),
            ("p_size", "u32"),
            ("p_retailprice", "f64"),
            ("p_brand", "s10"),
            ("p_type", "s25"),
        ]
    ),
    "partsupp": Schema(
        [
            ("ps_key", "u64"),  # partkey * 16 + supplier slot
            ("ps_availqty", "u32"),
            ("ps_supplycost", "f64"),
        ]
    ),
    "orders": Schema(
        [
            ("o_orderkey", "u64"),
            ("o_custkey", "u32"),
            ("o_orderdate", "u32"),
            ("o_totalprice", "f64"),
            ("o_orderpriority", "s15"),
        ]
    ),
    "lineitem": Schema(
        [
            ("l_key", "u64"),  # orderkey * 8 + linenumber
            ("l_partkey", "u32"),
            ("l_suppkey", "u32"),
            ("l_quantity", "u32"),
            ("l_extendedprice", "f64"),
            ("l_discount", "f64"),
            ("l_shipdate", "u32"),
            ("l_comment", "s27"),
        ]
    ),
}

#: Which tables each TPC-H query scans, as (table, fraction-of-table)
#: pairs — derived from the query definitions (queries 17 and 20 excluded,
#: as in the paper's trace collection).  Fractions approximate how much of
#: each table the plan touches; full scans dominate, matching the paper's
#: observation that "all the 20 TPC-H queries perform table range scans".
QUERY_SCANS: dict[int, list[tuple[str, float]]] = {
    1: [("lineitem", 1.0)],
    2: [("part", 1.0), ("partsupp", 1.0), ("supplier", 1.0), ("nation", 1.0), ("region", 1.0)],
    3: [("customer", 1.0), ("orders", 1.0), ("lineitem", 1.0)],
    4: [("orders", 1.0), ("lineitem", 0.4)],
    5: [("customer", 1.0), ("orders", 1.0), ("lineitem", 1.0), ("supplier", 1.0), ("nation", 1.0), ("region", 1.0)],
    6: [("lineitem", 1.0)],
    7: [("supplier", 1.0), ("lineitem", 1.0), ("orders", 1.0), ("customer", 1.0), ("nation", 1.0)],
    8: [("part", 1.0), ("lineitem", 1.0), ("orders", 1.0), ("customer", 1.0), ("supplier", 1.0), ("nation", 1.0), ("region", 1.0)],
    9: [("part", 1.0), ("lineitem", 1.0), ("partsupp", 1.0), ("orders", 1.0), ("supplier", 1.0), ("nation", 1.0)],
    10: [("customer", 1.0), ("orders", 1.0), ("lineitem", 0.35), ("nation", 1.0)],
    11: [("partsupp", 1.0), ("supplier", 1.0), ("nation", 1.0)],
    12: [("orders", 1.0), ("lineitem", 1.0)],
    13: [("customer", 1.0), ("orders", 1.0)],
    14: [("lineitem", 0.15), ("part", 1.0)],
    15: [("lineitem", 0.3), ("supplier", 1.0)],
    16: [("partsupp", 1.0), ("part", 1.0), ("supplier", 1.0)],
    18: [("customer", 1.0), ("orders", 1.0), ("lineitem", 1.0)],
    19: [("lineitem", 1.0), ("part", 1.0)],
    21: [("supplier", 1.0), ("lineitem", 1.0), ("orders", 1.0), ("nation", 1.0)],
    22: [("customer", 1.0), ("orders", 1.0)],
}

QUERY_IDS = sorted(QUERY_SCANS)


@dataclass
class TPCHInstance:
    """The generated warehouse: tables plus bookkeeping for updates."""

    scale: float
    tables: dict[str, Table]
    next_orderkey: int
    live_orders: list[int]
    rng: random.Random
    oracle: TimestampOracle = field(default_factory=TimestampOracle)

    def table(self, name: str) -> Table:
        return self.tables[name]

    @property
    def total_bytes(self) -> int:
        return sum(t.data_bytes for t in self.tables.values())


def _order_row(orderkey: int, rng: random.Random, customers: int) -> tuple:
    return (
        orderkey,
        rng.randrange(max(1, customers)),
        rng.randrange(2200),  # day number
        round(rng.uniform(1000, 400000), 2),
        rng.choice(["1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW", "5-NOT SPEC"]),
    )


def _lineitem_row(
    orderkey: int, line: int, rng: random.Random, parts: int, suppliers: int
) -> tuple:
    return (
        orderkey * 8 + line,
        rng.randrange(max(1, parts)),
        rng.randrange(max(1, suppliers)),
        rng.randrange(1, 51),
        round(rng.uniform(900, 105000), 2),
        round(rng.uniform(0.0, 0.1), 2),
        rng.randrange(2600),
        f"li-{orderkey}-{line}",
    )


def generate_tpch(
    volume: StorageVolume,
    scale: float = 1.0,
    seed: int = 0,
    cpu: Optional[CpuMeter] = None,
    slack: float = 0.3,
) -> TPCHInstance:
    """Generate all eight tables at ``scale`` (1.0 ≈ a 1000x-shrunk SF 1)."""
    rng = random.Random(seed)
    counts = {
        name: max(2, int(rows * scale)) if name not in ("nation", "region")
        else rows
        for name, rows in ROWS_PER_SF.items()
    }
    counts["lineitem"] = counts["orders"] * LINEITEMS_PER_ORDER
    tables: dict[str, Table] = {}

    def create(name: str, rows: int) -> Table:
        return Table.create(
            volume, name, SCHEMAS[name], rows, cpu=cpu, slack=slack
        )

    tables["region"] = create("region", counts["region"])
    tables["region"].bulk_load(
        (i, f"REGION-{i}") for i in range(counts["region"])
    )
    tables["nation"] = create("nation", counts["nation"])
    tables["nation"].bulk_load(
        (i, i % counts["region"], f"NATION-{i}") for i in range(counts["nation"])
    )
    tables["supplier"] = create("supplier", counts["supplier"])
    tables["supplier"].bulk_load(
        (i, i % counts["nation"], round(rng.uniform(-999, 9999), 2), f"Supplier-{i}")
        for i in range(counts["supplier"])
    )
    tables["customer"] = create("customer", counts["customer"])
    tables["customer"].bulk_load(
        (
            i,
            i % counts["nation"],
            round(rng.uniform(-999, 9999), 2),
            rng.choice(["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]),
        )
        for i in range(counts["customer"])
    )
    tables["part"] = create("part", counts["part"])
    tables["part"].bulk_load(
        (
            i,
            rng.randrange(1, 51),
            round(rng.uniform(900, 2000), 2),
            f"Brand#{i % 5}{i % 5}",
            "ECONOMY ANODIZED STEEL",
        )
        for i in range(counts["part"])
    )
    tables["partsupp"] = create("partsupp", counts["partsupp"])
    tables["partsupp"].bulk_load(
        (
            (i // 4) * 16 + (i % 4),
            rng.randrange(1, 10000),
            round(rng.uniform(1, 1000), 2),
        )
        for i in range(counts["partsupp"])
    )
    # Orders use even orderkeys so odd keys are free for insertions, like
    # the synthetic workload.
    tables["orders"] = create("orders", counts["orders"])
    tables["orders"].bulk_load(
        _order_row(i * 2, rng, counts["customer"]) for i in range(counts["orders"])
    )
    tables["lineitem"] = create("lineitem", counts["lineitem"])
    tables["lineitem"].bulk_load(
        _lineitem_row(
            (i // LINEITEMS_PER_ORDER) * 2,
            i % LINEITEMS_PER_ORDER,
            rng,
            counts["part"],
            counts["supplier"],
        )
        for i in range(counts["lineitem"])
    )
    return TPCHInstance(
        scale=scale,
        tables=tables,
        next_orderkey=counts["orders"] * 2 + 1,
        live_orders=[i * 2 for i in range(counts["orders"])],
        rng=rng,
    )


# ---------------------------------------------------------------------------
# Updates (Section 4.3): random across orders + lineitem, grouped per order.
# ---------------------------------------------------------------------------
def tpch_update_stream(
    instance: TPCHInstance, seed: int = 0
) -> Iterator[tuple[str, UpdateRecord]]:
    """Yields (table_name, update) pairs.

    Inserting or deleting an order emits its lineitem updates alongside it
    ("an orders record and its associated lineitem records are inserted or
    deleted together"); modifications patch a value field of either table.
    """
    rng = random.Random(seed)
    counts = {
        "customer": instance.tables["customer"].row_count,
        "part": instance.tables["part"].row_count,
        "supplier": instance.tables["supplier"].row_count,
    }
    live = instance.live_orders
    live_set = set(live)

    def ts() -> int:
        return instance.oracle.next()

    while True:
        roll = rng.random()
        if roll < 0.25 or not live:
            orderkey = instance.next_orderkey
            instance.next_orderkey += 2
            live.append(orderkey)
            live_set.add(orderkey)
            row = _order_row(orderkey, rng, counts["customer"])
            yield "orders", UpdateRecord(ts(), orderkey, UpdateType.INSERT, row)
            for line in range(LINEITEMS_PER_ORDER):
                li = _lineitem_row(
                    orderkey, line, rng, counts["part"], counts["supplier"]
                )
                yield "lineitem", UpdateRecord(ts(), li[0], UpdateType.INSERT, li)
        elif roll < 0.5:
            index = rng.randrange(len(live))
            orderkey = live[index]
            live[index] = live[-1]
            live.pop()
            live_set.discard(orderkey)
            yield "orders", UpdateRecord(ts(), orderkey, UpdateType.DELETE, None)
            for line in range(LINEITEMS_PER_ORDER):
                yield "lineitem", UpdateRecord(
                    ts(), orderkey * 8 + line, UpdateType.DELETE, None
                )
        elif roll < 0.75:
            orderkey = live[rng.randrange(len(live))]
            yield "orders", UpdateRecord(
                ts(),
                orderkey,
                UpdateType.MODIFY,
                {"o_totalprice": round(rng.uniform(1000, 400000), 2)},
            )
        else:
            orderkey = live[rng.randrange(len(live))]
            line = rng.randrange(LINEITEMS_PER_ORDER)
            yield "lineitem", UpdateRecord(
                ts(),
                orderkey * 8 + line,
                UpdateType.MODIFY,
                {"l_quantity": rng.randrange(1, 51)},
            )


# ---------------------------------------------------------------------------
# Query replay
# ---------------------------------------------------------------------------
def replay_query(
    instance: TPCHInstance,
    query_id: int,
    scan_fn: Optional[Callable[[str, int, int], Iterator[tuple]]] = None,
) -> int:
    """Run one query's table scans; returns the number of records scanned.

    ``scan_fn(table_name, begin_key, end_key)`` lets callers route scans
    through MaSM or another engine; the default scans the raw tables.
    """
    if query_id not in QUERY_SCANS:
        raise KeyError(f"query {query_id} is not in the replay catalog")
    total = 0
    for table_name, fraction in QUERY_SCANS[query_id]:
        table = instance.tables[table_name]
        begin, end = table.full_key_range()
        if fraction < 1.0 and not table.index.is_empty:
            entries = table.index.entries()
            cut = max(1, int(len(entries) * fraction))
            if cut < len(entries):
                end = entries[cut][0] - 1
        if scan_fn is not None:
            for _ in scan_fn(table_name, begin, end):
                total += 1
        else:
            for _ in table.range_scan(begin, end):
                total += 1
    return total
