"""Greedy delta-debugging shrinker for failing schedules.

Given a schedule whose replay fails and a predicate that re-runs a
candidate schedule and reports whether it still fails, ``shrink_schedule``
removes chunks of choices (classic ddmin halving, then single-choice
sweeps) until no single removal keeps the failure alive.  Replay mode
skips choices for finished actors, so any subsequence of a valid schedule
is itself a valid schedule — exactly the closure property ddmin needs.
"""

from __future__ import annotations

from typing import Callable, List

from repro.sim.scheduler import Schedule


def shrink_schedule(
    schedule: Schedule,
    fails: Callable[[Schedule], bool],
    *,
    max_probes: int = 400,
) -> Schedule:
    """Minimize ``schedule`` while ``fails`` stays true.

    ``fails`` must be deterministic (it replays a simulation).  The budget
    bounds total replays; the best schedule found so far is returned even
    if the budget runs out mid-pass.
    """
    best: List[str] = list(schedule.choices)
    probes = 0

    def still_fails(candidate: List[str]) -> bool:
        nonlocal probes
        probes += 1
        return fails(Schedule(list(candidate)))

    chunk = max(1, len(best) // 2)
    while chunk >= 1 and probes < max_probes:
        shrunk_this_pass = False
        start = 0
        while start < len(best) and probes < max_probes:
            candidate = best[:start] + best[start + chunk:]
            if candidate != best and still_fails(candidate):
                best = candidate
                shrunk_this_pass = True
                # Retry the same offset: the next chunk slid into place.
            else:
                start += chunk
        if not shrunk_this_pass:
            chunk //= 2
    return Schedule(best)
