"""Crash-schedule explorer: every crash point x every schedule prefix.

The existing fault tests crash once at a hand-picked moment.  The explorer
makes that systematic: first a clean reference run records its schedule,
then for every prefix ``p`` of that schedule and every named crash point,
it replays the same schedule, arms ``FaultPlan().crash_at(site, 1)`` after
``p`` steps and lets the run crash wherever the site is next reached.  The
torn state is recovered with the real recovery path and validated against
the model oracle (with the in-doubt disjunction for the one update that may
have been mid-apply) — so "migration/recovery never lose or double-apply an
update" is checked at every point of the schedule, not one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.obs import use_registry, use_tracer
from repro.sim.harness import SimConfig, SimEnv, build_actor_factories, run_simulation
from repro.sim.scheduler import Schedule, SimScheduler
from repro.storage.faults import FaultPlan, use_fault_plan

#: The durability windows the storage stack instruments.  The two
#: compaction sites bracket the MERGE_SLICE commit point (record logged /
#: product written); they only fire under a scenario that runs the engine
#: in "cost" compaction mode (``--scenario compaction``).
DEFAULT_CRASH_SITES = (
    "masm.flush.run_written",
    "migration.emit",
    "wal.append",
    "compaction.slice_emitted",
    "compaction.slice_committed",
)


@dataclass
class Probe:
    """One (prefix, site) crash experiment."""

    prefix: int
    site: str
    fired: bool  # did the armed crash point actually trip?
    validated: bool
    steps: int  # schedule steps executed before the run ended
    error: str = ""


@dataclass
class ExplorationReport:
    seed: int
    schedule: Schedule
    sites: Sequence[str]
    probes: List[Probe] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        return len(self.probes)

    def fired(self, site: Optional[str] = None) -> int:
        return sum(
            1 for p in self.probes if p.fired and site in (None, p.site)
        )

    def validated(self, site: Optional[str] = None) -> int:
        return sum(
            1 for p in self.probes if p.validated and site in (None, p.site)
        )

    @property
    def failures(self) -> List[Probe]:
        return [p for p in self.probes if not p.validated]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "schedule": self.schedule.to_text(),
            "sites": list(self.sites),
            "attempted": self.attempted,
            "per_site": {
                site: {
                    "fired": self.fired(site),
                    "validated": self.validated(site),
                }
                for site in self.sites
            },
            "failures": [
                {
                    "prefix": p.prefix,
                    "site": p.site,
                    "steps": p.steps,
                    "error": p.error,
                }
                for p in self.failures
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        parts = [
            f"explored {self.attempted} crash probes over "
            f"{len(self.schedule.choices)} schedule prefixes"
        ]
        for site in self.sites:
            parts.append(
                f"  {site}: fired {self.fired(site)}, "
                f"validated {self.validated(site)}"
            )
        if self.failures:
            parts.append(f"  FAILURES: {len(self.failures)}")
        return "\n".join(parts)


def run_crash_probe(
    config: SimConfig,
    seed: int,
    schedule: Schedule,
    prefix: int,
    site: str,
    max_steps: int = 100_000,
) -> Probe:
    """Replay ``schedule``, arm a crash at ``site`` after ``prefix`` steps."""
    with use_registry(), use_tracer():
        env = SimEnv(config, seed)
        factories = build_actor_factories(env, config, seed)
        sched = SimScheduler(
            {name: factories[name]() for name in sorted(factories)},
            seed=seed,
            schedule=schedule,
        )
        for _ in range(prefix):
            if sched.step() is None:
                break
        plan = FaultPlan().crash_at(site, occurrence=1)
        with use_fault_plan(plan):
            while len(sched.steps) < max_steps:
                if sched.step() is None:
                    break
        fired = sched.crashed
        try:
            if fired:
                env.crash_and_recover()
            else:
                env.validate_full()
        except AssertionError as exc:
            return Probe(
                prefix=prefix,
                site=site,
                fired=fired,
                validated=False,
                steps=len(sched.steps),
                error=str(exc),
            )
        return Probe(
            prefix=prefix,
            site=site,
            fired=fired,
            validated=True,
            steps=len(sched.steps),
        )


def explore_crash_schedules(
    config: Optional[SimConfig] = None,
    seed: int = 0,
    sites: Sequence[str] = DEFAULT_CRASH_SITES,
    prefix_stride: int = 1,
) -> ExplorationReport:
    """Sweep every crash site across every schedule prefix of a clean run.

    ``prefix_stride`` > 1 samples every Nth prefix (for quick smoke runs);
    the CI explorer job and the acceptance criterion use stride 1.
    """
    config = config or SimConfig.canonical()
    reference = run_simulation(config, seed)
    schedule = Schedule(list(reference.report.schedule.choices))
    report = ExplorationReport(seed=seed, schedule=schedule, sites=sites)
    for prefix in range(0, len(schedule.choices) + 1, prefix_stride):
        for site in sites:
            report.probes.append(
                run_crash_probe(config, seed, schedule, prefix, site)
            )
    return report
