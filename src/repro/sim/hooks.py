"""Interleave-point hooks for deterministic simulation testing.

Library code marks the moments where concurrent interleavings matter by
calling :func:`interleave` with a stable site name::

    from repro.sim.hooks import interleave as sim_interleave
    ...
    sim_interleave("masm.apply")

Outside a simulation the call is a cheap no-op (one module-global read and
a ``None`` check — gated at <=5% of the ungoverned hot path by
``benchmarks/bench_sim_overhead.py``).  Inside a simulation the active
:class:`repro.sim.scheduler.SimScheduler` records every site reached during
the current actor step, which is what makes a printed schedule trace an
exact, replayable account of the run.

Site naming convention (see DESIGN.md "Deterministic simulation"):
``<module>.<operation>[.<phase>]`` — e.g. ``masm.apply``,
``masm.scan.begin``, ``migration.slice``, ``governor.migrate_step``,
``txn.commit``.  Names are append-only: renaming a site invalidates saved
schedule traces.

This module must stay dependency-free: it is imported by ``repro.core``
modules, so importing anything from ``repro.core``/``repro.txn`` here would
create a cycle.
"""

from __future__ import annotations

from typing import Optional, Protocol


class InterleaveObserver(Protocol):
    """What an active simulation context must provide."""

    def on_interleave(self, site: str) -> None: ...


#: The active simulation context, or None outside a simulation.  A plain
#: module global (not a ContextVar): simulations are single-threaded by
#: design, and the ungoverned hot path cannot afford ContextVar lookups.
_ACTIVE: Optional[InterleaveObserver] = None


def interleave(site: str) -> None:
    """Mark an instrumented interleave point (no-op unless simulating)."""
    ctx = _ACTIVE
    if ctx is not None:
        ctx.on_interleave(site)


def activate(ctx: InterleaveObserver) -> None:
    """Install ``ctx`` as the active simulation context."""
    global _ACTIVE
    _ACTIVE = ctx


def deactivate(ctx: InterleaveObserver) -> None:
    """Remove ``ctx`` if it is the active context (idempotent)."""
    global _ACTIVE
    if _ACTIVE is ctx:
        _ACTIVE = None


def active_context() -> Optional[InterleaveObserver]:
    return _ACTIVE


class simulation_active:
    """Context manager installing an interleave observer for a block."""

    def __init__(self, ctx: InterleaveObserver) -> None:
        self.ctx = ctx

    def __enter__(self) -> InterleaveObserver:
        activate(self.ctx)
        return self.ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        deactivate(self.ctx)
