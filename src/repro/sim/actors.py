"""Actor coroutines for the deterministic simulator.

Each actor is a generator: every ``yield`` is an operation boundary where
the scheduler may interleave another actor.  Actors draw randomness only
from their own ``random.Random(f"{seed}:{name}")`` stream (string seeding
is ``PYTHONHASHSEED``-independent), and always reach the engine through
``env.masm`` — never a captured reference — so they keep working across a
crash+recover performed by another actor.

The scanner actor is where the model oracle bites: it freezes a query
timestamp, computes the expected snapshot from the model *before* pulling
a single record, then checks the engine's output prefix after every batch.
"""

from __future__ import annotations

import random
from itertools import islice

from repro.core.update import UpdateRecord, UpdateType
from repro.sim.model import diff_states


def updater(env, name: str, seed: int, ops: int):
    """Issue ``ops`` randomized updates, one per step, model-acknowledged.

    Workload validity: the engine treats a second INSERT for a live key as
    a conflict, so inserts draw from currently-free keys only.  Keys
    congruent to 3 (mod 4) are reserved for :func:`txn_writer` inserts —
    a plain updater inserting one concurrently with an uncommitted staged
    insert would be an application-level duplicate no isolation level can
    referee.
    """
    rng = random.Random(f"{seed}:{name}")
    universe = env.config.key_universe
    for i in range(ops):
        state = env.model.snapshot(2**62)
        live = sorted(state)
        free = [k for k in range(universe) if k not in state and k % 4 != 3]
        roll = rng.random()
        ts = env.masm.oracle.next()
        if (roll < 0.35 or not live) and free:
            key = rng.choice(free)
            update = UpdateRecord(
                ts, key, UpdateType.INSERT, (key, f"{name}-i{i}")
            )
        elif roll < 0.55 and live:
            key = rng.choice(live)
            update = UpdateRecord(ts, key, UpdateType.DELETE, None)
        elif live:
            key = rng.choice(live)
            update = UpdateRecord(
                ts, key, UpdateType.MODIFY, {"payload": f"{name}-m{i}"}
            )
        else:  # nothing live and nothing free: key space exhausted
            return
        env.issue_update(update)
        yield


def scanner(env, name: str, seed: int, scans: int, batch: int = 8):
    """Run ``scans`` full-range scans, oracle-checked after every batch.

    Each scan freezes its own query timestamp, so updates and migrations
    interleaved mid-scan must not change what it yields.  A crash+recover
    by another actor (``env.epoch`` bump) invalidates the open iterator —
    the actor abandons that scan rather than read a torn-down engine.
    """
    rng = random.Random(f"{seed}:{name}")
    lo, hi = 0, env.config.key_universe
    for _ in range(scans):
        epoch = env.epoch
        query_ts = env.masm.oracle.next()
        expected = env.model.snapshot_records(query_ts, lo, hi)
        stream = env.masm.range_scan(lo, hi, query_ts=query_ts)
        got: list[tuple] = []
        yield  # scan registered; records not yet pulled
        while True:
            if env.epoch != epoch:
                stream.close()
                break
            chunk = list(islice(stream, batch))
            got.extend(chunk)
            prefix = expected[: len(got)]
            if got != prefix:
                want = {env.schema.key(r): r for r in prefix}
                have = {env.schema.key(r): r for r in got}
                raise AssertionError(
                    f"{name}: scan at ts={query_ts} diverged from model "
                    f"after {len(got)} records: {diff_states(want, have)}"
                )
            if len(chunk) < batch:
                if len(got) != len(expected):
                    raise AssertionError(
                        f"{name}: scan at ts={query_ts} ended after "
                        f"{len(got)} records; model expects {len(expected)}"
                    )
                break
            yield
        # Deterministic pause between scans keeps schedules interesting.
        if rng.random() < 0.5:
            yield


def flusher(env, name: str, seed: int, ops: int):
    """Force ``ops`` buffer flushes (runs materialize off-schedule)."""
    del seed  # flushing takes no decisions
    del name
    for _ in range(ops):
        env.masm.flush_buffer()
        yield


def migrator(env, name: str, seed: int, ops: int):
    """Run ``ops`` governor-paced migration slices."""
    del seed
    del name
    for _ in range(ops):
        governor = env.masm.governor
        if governor is not None:
            governor.migrate_step()
        else:
            env.masm.migrate()
        yield


def compactor(env, name: str, seed: int, ops: int):
    """Run ``ops`` cost-based compaction slices (engine in "cost" mode).

    Each step is one ``maybe_step()``: score candidates, emit one WAL-fenced
    merge slice (or publish pending products once no scan is active).  The
    scheduler interleaves scans, updates, flushes and crashes between
    slices, so every intermediate masked-victim state is read through and
    recovered from.  A trailing drain finishes any open plan so the final
    full-state validation also covers the retirement path.
    """
    del seed
    del name
    for _ in range(ops):
        scheduler = env.masm.compactor
        if scheduler is not None:
            scheduler.maybe_step()
        yield
    # Drain: a plan left half-done would be legitimate (recovery resumes
    # it) but finishing it here makes victim retirement part of every
    # simulated run rather than a lucky schedule.
    while True:
        scheduler = env.masm.compactor
        if scheduler is None or not scheduler.busy:
            break
        if not scheduler.maybe_step():
            break
        yield
    yield


def crasher(env, name: str, seed: int, idle_steps: int):
    """Idle for a while, then tear the engine down and recover it.

    This is a *clean* whole-process crash between operations (the torn
    mid-operation crashes are the explorer's job): the surviving heap, SSD
    runs and redo log are handed to recovery and the result is validated
    against the model before any other actor takes another step.
    """
    del seed
    del name
    for _ in range(idle_steps):
        yield
    env.crash_and_recover()
    yield


class _EnvBackend:
    """Router backend that re-reads ``env.masm`` on every call.

    The serving layer's backends capture an engine; in the simulator the
    engine is replaced wholesale by crash+recover, so the sim's backend
    proxies through ``env`` instead — same rule every actor follows.  The
    clock is stable across crashes (the SSD device survives recovery).
    """

    def __init__(self, env) -> None:
        self.env = env
        self.clock = env.masm.ssd.device.clock

    def snapshot_ts(self) -> int:
        return self.env.masm.oracle.next()

    def scan(self, begin_key: int, end_key: int, query_ts: int):
        return self.env.masm.range_scan(begin_key, end_key, query_ts=query_ts)


def server(env, name: str, seed: int, requests: int):
    """Serve quota-gated tenant range queries, model-checked per request.

    Exercises the full serving path — admission (DELAY pays simulated time,
    SHED drops the request), one snapshot timestamp per request, latency
    surfaces — interleaved with updaters, flushers, migrators and crashers.
    Execution is atomic within a step, so the model snapshot at the served
    timestamp taken right after the scan is the ground truth for it.
    """
    from repro.errors import QuotaExceededError
    from repro.server import FrontDoor, QueryRequest, QuotaPolicy, TenantQuota

    rng = random.Random(f"{seed}:{name}")
    fd = FrontDoor(
        _EnvBackend(env),
        quotas={
            "gold": TenantQuota(rate=50.0, burst=8.0),
            "bronze": TenantQuota(
                rate=5.0, burst=2.0, policy=QuotaPolicy.SHED
            ),
        },
        scope=f"sim.{name}",
    )
    universe = env.config.key_universe
    for i in range(requests):
        tenant = "gold" if rng.random() < 0.7 else "bronze"
        lo = rng.randrange(universe)
        hi = lo + rng.randrange(1, universe)
        arrival = fd.clock.now
        waited = 0.0
        shed = False
        while True:
            try:
                wait = fd.try_admit(tenant, waited)
            except QuotaExceededError:
                shed = True
                break
            if wait <= 0.0:
                break
            # The sim serves one request at a time, so DELAY may simply
            # pay the wait on the shared clock before retrying.
            fd.clock.advance(wait)
            waited += wait
            yield
        if shed:
            yield  # the client drops the request and moves on
            continue
        request = QueryRequest(
            tenant=tenant, session=0, seq=i,
            begin_key=lo, end_key=hi, arrival=arrival,
        )
        result = fd.execute(request)
        expected = env.model.snapshot_records(result.query_ts, lo, hi)
        if result.rows != len(expected):
            raise AssertionError(
                f"{name}: served request {i} for {tenant!r} at "
                f"ts={result.query_ts} returned {result.rows} rows; "
                f"model expects {len(expected)} in [{lo}, {hi}]"
            )
        if result.latency_seconds < 0:
            raise AssertionError(
                f"{name}: negative latency {result.latency_seconds} "
                f"for request {i}"
            )
        yield


def txn_writer(env, name: str, seed: int, txns: int, keys_per_txn: int = 3):
    """Snapshot-isolation transactions: stage, maybe conflict, commit.

    Staged writes are model-acknowledged only on successful commit, each as
    the exact update the transaction publishes (same type/content, commit
    timestamp, sorted key order) — aborted transactions leave no trace.
    """
    from repro.errors import TransactionAborted

    rng = random.Random(f"{seed}:{name}")
    for i in range(txns):
        if env.snapshots is None:
            return
        epoch = env.epoch
        txn = env.snapshots.begin()
        for j in range(keys_per_txn):
            # Inserts stay inside the reserved (3 mod 4) stripe; see updater.
            key = rng.randrange(env.config.key_universe // 4) * 4 + 3
            if txn.get(key) is None:
                txn.insert((key, f"{name}-t{i}.{j}"))
            else:
                txn.modify(key, {"payload": f"{name}-t{i}.{j}"})
        yield  # staged but uncommitted: invisible to everyone else
        if env.epoch != epoch:
            # The engine crashed under us: uncommitted writes die with it.
            txn.abort()
            yield
            continue
        try:
            commit_ts = txn.commit()
        except TransactionAborted:
            yield
            continue
        for key in sorted(txn._writes):
            staged = txn._writes[key]
            env.model.record(
                UpdateRecord(commit_ts, key, staged.type, staged.content)
            )
        yield

def replicator(env, name: str, seed: int, ops: int, replication: int = 3):
    """Drive a replica set through updates, crashes, failover and rejoin.

    The set lives beside the main engine (own oracle, own clock, own
    model) so replica chaos never perturbs the other actors' oracle
    checks — what interleaves is the *schedule*.  Every read pins a
    snapshot timestamp, picks a random ONLINE replica (frequently a
    freshly promoted primary or a rejoined catcher-upper) and must match
    the model byte-for-byte; the final step rejoins every crashed node
    and asserts all replicas answer identically.
    """
    from repro.core.replication import ReplicaSet
    from repro.sim.model import ModelTable
    from repro.storage.clock import SimClock
    from repro.txn.timestamps import TimestampOracle

    rng = random.Random(f"{seed}:{name}")
    oracle = TimestampOracle()
    rows = max(env.config.rows // 2, 8)
    stride = env.config.key_stride
    universe = rows * stride
    rset = ReplicaSet.build(
        0,
        env.schema,
        oracle,
        SimClock(),
        replication,
        records_per_node=rows * 4,
        masm_config=env.masm_config,
    )
    base = [(i * stride, f"{name}-base{i}") for i in range(rows)]
    for replica in rset.replicas:
        replica.table.bulk_load(base)
    model = ModelTable(env.schema, base)
    crashed: list[int] = []

    def check_scan(replica_id: int, context: str) -> None:
        query_ts = oracle.next()
        expected = model.snapshot_records(query_ts, 0, universe)
        got = list(rset.scan(0, universe, query_ts, replica_id=replica_id))
        if got != expected:
            want = {env.schema.key(r): r for r in expected}
            have = {env.schema.key(r): r for r in got}
            raise AssertionError(
                f"{name}: {context} read on replica {replica_id} at "
                f"ts={query_ts} diverged from model: "
                f"{diff_states(want, have)}"
            )

    for i in range(ops):
        roll = rng.random()
        online = rset.online_ids()
        if roll < 0.45:
            state = model.snapshot(2**62)
            live = sorted(state)
            free = [k for k in range(universe) if k not in state]
            sub = rng.random()
            ts = oracle.next()
            if (sub < 0.4 or not live) and free:
                key = rng.choice(free)
                update = UpdateRecord(
                    ts, key, UpdateType.INSERT, (key, f"{name}-i{i}")
                )
            elif sub < 0.6 and live:
                key = rng.choice(live)
                update = UpdateRecord(ts, key, UpdateType.DELETE, None)
            elif live:
                key = rng.choice(live)
                update = UpdateRecord(
                    ts, key, UpdateType.MODIFY, {"payload": f"{name}-m{i}"}
                )
            else:  # key space exhausted this step
                yield
                continue
            rset.apply(update)
            model.record(update)
        elif roll < 0.60 and len(online) > 1:
            # Kill a random ONLINE replica — killing the primary forces a
            # failover; the set must keep answering either way.
            victim = rng.choice(online)
            rset.crash_replica(victim)
            crashed.append(victim)
        elif roll < 0.75 and crashed:
            rejoiner = crashed.pop(0)
            rset.recover_replica(rejoiner)
            # Yield while CATCHING_UP: updates shipped in this window are
            # exactly what catch_up() must find in the primary's log.
            yield
            rset.catch_up(rejoiner)
            check_scan(rejoiner, "post-rejoin")
        else:
            check_scan(rng.choice(online), "steady-state")
        yield

    # Drain: bring everyone back and require byte-identical answers.
    while crashed:
        rejoiner = crashed.pop(0)
        rset.recover_replica(rejoiner)
        rset.catch_up(rejoiner)
        yield
    for replica_id in rset.online_ids():
        check_scan(replica_id, "final")
    yield


def durability(env, name: str, seed: int, ops: int, replication: int = 3):
    """Drive a replica set through the full durability lifecycle.

    Everything :func:`replicator` does, plus the churn that makes WALs
    finite and disks lie: forced checkpoints that truncate the primaries'
    logs (so rejoins routinely cross the truncation fence and must
    bootstrap from a snapshot), total replica wipes, and silently flipped
    run bytes immediately chased by an anti-entropy pass that must repair
    them from the log or a peer.  Every read pins a snapshot and must
    match the model byte-for-byte; the final drain rejoins everyone,
    repairs everything, and requires all replicas to answer identically.
    """
    from repro.core.replication import ReplicaSet, ReplicaState
    from repro.sim.model import ModelTable
    from repro.storage.clock import SimClock
    from repro.txn.timestamps import TimestampOracle

    rng = random.Random(f"{seed}:{name}")
    oracle = TimestampOracle()
    rows = max(env.config.rows // 2, 8)
    stride = env.config.key_stride
    universe = rows * stride
    rset = ReplicaSet.build(
        0,
        env.schema,
        oracle,
        SimClock(),
        replication,
        records_per_node=rows * 4,
        masm_config=env.masm_config,
    )
    base = [(i * stride, f"{name}-base{i}") for i in range(rows)]
    for replica in rset.replicas:
        replica.table.bulk_load(base)
    model = ModelTable(env.schema, base)
    crashed: list[int] = []

    def check_scan(replica_id: int, context: str) -> None:
        query_ts = oracle.next()
        expected = model.snapshot_records(query_ts, 0, universe)
        got = list(rset.scan(0, universe, query_ts, replica_id=replica_id))
        if got != expected:
            want = {env.schema.key(r): r for r in expected}
            have = {env.schema.key(r): r for r in got}
            raise AssertionError(
                f"{name}: {context} read on replica {replica_id} at "
                f"ts={query_ts} diverged from model: "
                f"{diff_states(want, have)}"
            )

    def apply_one(i: int) -> bool:
        state = model.snapshot(2**62)
        live = sorted(state)
        free = [k for k in range(universe) if k not in state]
        sub = rng.random()
        ts = oracle.next()
        if (sub < 0.4 or not live) and free:
            key = rng.choice(free)
            update = UpdateRecord(
                ts, key, UpdateType.INSERT, (key, f"{name}-i{i}")
            )
        elif sub < 0.6 and live:
            update = UpdateRecord(
                ts, rng.choice(live), UpdateType.DELETE, None
            )
        elif live:
            update = UpdateRecord(
                ts, rng.choice(live), UpdateType.MODIFY,
                {"payload": f"{name}-m{i}"},
            )
        else:  # key space exhausted this step
            return False
        rset.apply(update)
        model.record(update)
        return True

    for i in range(ops):
        roll = rng.random()
        online = rset.online_ids()
        if roll < 0.40:
            apply_one(i)
        elif roll < 0.50 and len(online) > 1:
            victim = rng.choice(online)
            rset.crash_replica(victim)
            crashed.append(victim)
        elif roll < 0.58 and crashed:
            # rejoin() transparently bootstraps when the rejoiner was
            # wiped or the primary truncated past its watermark.
            rejoiner = crashed.pop(0)
            yield
            rset.rejoin(rejoiner)
            check_scan(rejoiner, "post-rejoin")
        elif roll < 0.66 and len(online) > 1:
            # Total node loss: runs, WAL and heap all destroyed.
            victim = rng.choice(online)
            rset.wipe_replica(victim)
            crashed.append(victim)
        elif roll < 0.76:
            # Checkpoint + WAL truncation on every ONLINE replica (flush
            # first so the fence can advance past recent updates), plus
            # one paced slice of background zeroing.
            for replica in rset.replicas:
                if replica.state is ReplicaState.ONLINE:
                    replica.masm.flush_buffer()
            rset.maintenance(force_checkpoint=True)
        elif roll < 0.86 and len(online) > 1:
            # Silent corruption: flip one run byte on one replica, then
            # run anti-entropy — the damage must be repaired from the
            # replica's own log or a healthy peer, never served.
            victim = rset.replicas[rng.choice(online)]
            runs = victim.masm.runs
            if runs:
                run = rng.choice(runs)
                offset = rng.randrange(run.num_blocks * run.block_size)
                byte = run.file.read(offset, 1)[0]
                run.file.write(offset, bytes([byte ^ (1 << rng.randrange(8))]))
                victim.masm.block_cache.invalidate_run(run.name)
                yield
                report = rset.anti_entropy()
                if report["unrepaired"]:
                    raise AssertionError(
                        f"{name}: anti-entropy left damage unrepaired: "
                        f"{report['unrepaired']}"
                    )
                check_scan(victim.replica_id, "post-repair")
        elif online:
            check_scan(rng.choice(online), "steady-state")
        yield

    # Drain: everyone back (bootstrapping where needed), everything
    # repaired, every replica byte-identical.
    while crashed:
        rset.rejoin(crashed.pop(0))
        yield
    report = rset.anti_entropy()
    if report["unrepaired"]:
        raise AssertionError(
            f"{name}: final anti-entropy left damage: {report['unrepaired']}"
        )
    rset.maintenance(force_checkpoint=True)
    for replica_id in rset.online_ids():
        check_scan(replica_id, "final")
    yield
