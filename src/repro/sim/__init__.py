"""Deterministic simulation testing (DST) for the MaSM engine.

``repro.sim`` has two faces:

* :mod:`repro.sim.hooks` — the ``interleave(site)`` no-op hooks engine code
  calls at instrumented interleave points.  This is the only part imported
  by ``repro.core``/``repro.txn``, so this ``__init__`` must stay light:
  anything heavier is loaded lazily to avoid import cycles.
* The simulator proper — :mod:`~repro.sim.scheduler`,
  :mod:`~repro.sim.harness`, :mod:`~repro.sim.model`,
  :mod:`~repro.sim.explorer`, :mod:`~repro.sim.shrink` — where every
  schedule is a pure function of ``(seed, config)`` and every failure
  replays exactly.  ``python -m repro.sim --seed N`` runs one.
"""

from repro.sim.hooks import (
    active_context,
    interleave,
    simulation_active,
)

__all__ = [
    "active_context",
    "interleave",
    "simulation_active",
    # Lazily loaded (import cycles: they import repro.core, which imports
    # repro.sim.hooks through this package):
    "SimConfig",
    "SimScheduler",
    "Schedule",
    "SimFailure",
    "ModelTable",
    "run_simulation",
    "explore_crash_schedules",
    "shrink_schedule",
]

_LAZY = {
    "SimConfig": ("repro.sim.harness", "SimConfig"),
    "run_simulation": ("repro.sim.harness", "run_simulation"),
    "SimScheduler": ("repro.sim.scheduler", "SimScheduler"),
    "Schedule": ("repro.sim.scheduler", "Schedule"),
    "SimFailure": ("repro.sim.scheduler", "SimFailure"),
    "ModelTable": ("repro.sim.model", "ModelTable"),
    "explore_crash_schedules": ("repro.sim.explorer", "explore_crash_schedules"),
    "shrink_schedule": ("repro.sim.shrink", "shrink_schedule"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
