"""Simulation environment + entry points: (seed, config) -> verdict.

``run_simulation(config, seed)`` builds a miniature but fully real MaSM
stack (simulated disk + SSD, WAL, governor), a :class:`ModelTable` oracle,
and a cast of actors, then lets the seeded scheduler interleave them.  The
whole run executes inside a fresh metrics registry/tracer so nothing leaks
between runs — two calls with the same ``(config, seed)`` produce the same
trace byte-for-byte, which CI asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.core.compaction import CompactionConfig
from repro.core.governor import GovernorConfig
from repro.core.masm import MaSM, MaSMConfig
from repro.core.update import UpdateRecord
from repro.engine.record import synthetic_schema
from repro.engine.table import Table
from repro.obs import use_registry, use_tracer
from repro.sim import actors
from repro.sim.model import ModelTable, diff_states
from repro.sim.scheduler import Schedule, SimScheduler, Step
from repro.storage.disk import SimulatedDisk
from repro.storage.file import StorageVolume
from repro.storage.ssd import SimulatedSSD
from repro.txn.log import RedoLog
from repro.txn.recovery import recover_masm
from repro.txn.snapshot import SnapshotManager
from repro.util.units import KB, MB

FULL_RANGE = (0, 2**62)


@dataclass(frozen=True)
class SimConfig:
    """Everything (besides the seed) that determines a simulated run."""

    rows: int = 96
    key_stride: int = 2  # odd keys stay free for inserts
    ssd_page_size: int = 1 * KB
    block_size: int = 1 * KB
    cache_bytes: int = 64 * KB
    alpha: float = 1.0
    updaters: int = 1
    scanners: int = 1
    flushers: int = 1
    migrators: int = 1
    crashers: int = 0
    txn_writers: int = 0
    #: Serving front doors (see :func:`repro.sim.actors.server`).
    servers: int = 0
    #: Replica-set chaos drivers (see :func:`repro.sim.actors.replicator`).
    replicators: int = 0
    #: Durability-churn drivers: checkpoint/truncate, wipe + snapshot
    #: bootstrap, bit-flip + anti-entropy (see
    #: :func:`repro.sim.actors.durability`).
    durability_actors: int = 0
    #: Cost-based compaction drivers (see :func:`repro.sim.actors.compactor`).
    compactors: int = 0
    update_ops: int = 40
    scans: int = 3
    scan_batch: int = 16
    flush_ops: int = 4
    migrate_ops: int = 3
    crasher_idle: int = 10
    txns: int = 3
    serve_requests: int = 8
    replica_ops: int = 24
    durability_ops: int = 30
    compact_ops: int = 8
    #: Engine compaction mode ("structural" | "cost"); the ``compaction``
    #: scenario switches to "cost" with a tiny run-count trigger so the
    #: miniature workload actually plans, slices and retires victims.
    compaction: str = "structural"
    compact_trigger_runs: int = 1
    compact_slice_records: int = 6
    #: Run-index blocks per kernel merge partition (None = library default).
    #: The ``kernels`` scenario sets this tiny so even the simulation's
    #: small runs split into several partitions, exercising the partition
    #: boundaries under flush/migration interleave.
    kernel_partition_blocks: Optional[int] = None

    @property
    def key_universe(self) -> int:
        return self.rows * self.key_stride

    @classmethod
    def canonical(cls) -> "SimConfig":
        """The 4-actor scenario the crash explorer sweeps exhaustively."""
        return cls()

    def with_crasher(self) -> "SimConfig":
        return replace(self, crashers=1)


@dataclass
class SimReport:
    """Deterministic, text-serializable outcome of one simulated run."""

    seed: int
    verdict: str  # "ok" | "crashed"
    steps: List[Step]
    schedule: Schedule
    updates_acknowledged: int
    final_records: int

    def to_text(self) -> str:
        lines = [
            f"seed: {self.seed}",
            f"verdict: {self.verdict}",
            f"updates_acknowledged: {self.updates_acknowledged}",
            f"final_records: {self.final_records}",
            f"schedule: {self.schedule.to_text()}",
            "trace:",
        ]
        lines.extend("  " + s.to_text() for s in self.steps)
        return "\n".join(lines) + "\n"


class SimEnv:
    """The engine-under-test plus its model oracle and crash machinery."""

    def __init__(self, config: SimConfig, seed: int) -> None:
        self.config = config
        self.seed = seed
        self.schema = synthetic_schema()
        self.disk_vol = StorageVolume(SimulatedDisk(capacity=64 * MB))
        self.ssd_vol = StorageVolume(SimulatedSSD(capacity=8 * MB))
        table = Table.create(self.disk_vol, "sim", self.schema, config.rows)
        table.bulk_load(
            (i * config.key_stride, f"base-{i}") for i in range(config.rows)
        )
        self.masm_config = MaSMConfig(
            alpha=config.alpha,
            ssd_page_size=config.ssd_page_size,
            block_size=config.block_size,
            cache_bytes=config.cache_bytes,
            kernel_blocks_per_partition=config.kernel_partition_blocks,
            auto_migrate=False,
            compaction=config.compaction,
            compaction_config=(
                CompactionConfig(
                    min_slice_records=config.compact_slice_records,
                    trigger_runs=config.compact_trigger_runs,
                )
                if config.compaction == "cost"
                else None
            ),
            # All migration happens through explicitly scheduled actor
            # steps (migrate_step / make_room): no hidden trickle work.
            governor=GovernorConfig(
                admit_rate=None,
                migrate_on_apply=False,
                migrate_between_scans=False,
            ),
        )
        self.log = RedoLog(self.ssd_vol.create("wal", 2 * MB))
        self.masm = MaSM(table, self.ssd_vol, config=self.masm_config)
        self.masm.attach_log(self.log)
        self.snapshots = SnapshotManager(self.masm)
        self.model = ModelTable(
            self.schema,
            ((i * config.key_stride, f"base-{i}") for i in range(config.rows)),
        )
        #: Bumped on every crash+recover; actors holding pre-crash
        #: iterators/transactions check it and abandon them.
        self.epoch = 0
        #: The single update currently inside ``masm.apply`` — in-doubt if
        #: a crash unwinds the call (see :meth:`crash_and_recover`).
        self.in_flight: Optional[UpdateRecord] = None

    # ------------------------------------------------------------- updates
    def issue_update(self, update: UpdateRecord) -> None:
        """Apply ``update`` to the engine; acknowledge to the model after."""
        self.in_flight = update
        self.masm.apply(update)
        self.in_flight = None
        self.model.record(update)

    # ------------------------------------------------------------ crashing
    def crash_and_recover(self) -> None:
        """Simulate a whole-process crash, recover, validate vs the model.

        Only durable state survives: the heap file, the SSD run files and
        the redo log.  The in-memory buffer, open scans and transactions
        die.  An update in flight inside ``masm.apply`` at crash time is
        in-doubt — recovery may legitimately restore it (logged before the
        crash) or not (crashed before the log append): the recovered state
        must match the model with or without exactly that update, and the
        model adopts whichever branch the engine durably took.
        """
        old = self.masm
        bare = Table(old.table.name, old.table.schema, old.table.heap)
        bare.heap.num_pages = old.table.heap.capacity_pages
        fresh_log = RedoLog(self.log.file)
        fresh_log.file._append_pos = 0
        recovered, _report = recover_masm(
            bare, self.ssd_vol, fresh_log, config=self.masm_config
        )
        # Timestamps must stay monotonic across the crash even when the
        # newest issued timestamps never reached the log.
        recovered.oracle.advance_past(old.oracle.current)
        self.masm = recovered
        self.log = fresh_log
        self.snapshots = SnapshotManager(recovered)
        self.epoch += 1
        self._settle_in_doubt()

    def _settle_in_doubt(self) -> None:
        update = self.in_flight
        self.in_flight = None
        got = self.read_engine_state()
        query_ts = self.masm.oracle.current
        without = self.model.snapshot(query_ts)
        if update is None:
            if got != without:
                raise AssertionError(
                    "post-recovery state diverged from model: "
                    + diff_states(without, got)
                )
            return
        with_it = self.model.snapshot(query_ts, extra=update)
        if got == without:
            return  # the in-flight update did not survive: drop it
        if got == with_it:
            self.model.record(update)  # it was durable: adopt it
            return
        raise AssertionError(
            "post-recovery state matches neither in-doubt branch for "
            f"update ts={update.timestamp} key={update.key}: "
            f"vs without: {diff_states(without, got)}; "
            f"vs with: {diff_states(with_it, got)}"
        )

    # ----------------------------------------------------------- validation
    def read_engine_state(self) -> dict[int, tuple]:
        """Current full-range engine contents, keyed by record key."""
        query_ts = self.masm.oracle.current
        return {
            self.schema.key(r): r
            for r in self.masm.range_scan(*FULL_RANGE, query_ts=query_ts)
        }

    def validate_full(self) -> None:
        """Final-state oracle check (beyond the scanners' per-step checks)."""
        if self.in_flight is not None:
            return self._settle_in_doubt()
        got = self.read_engine_state()
        want = self.model.snapshot(self.masm.oracle.current)
        if got != want:
            raise AssertionError(
                "final engine state diverged from model: "
                + diff_states(want, got)
            )


def build_actor_factories(
    env: SimEnv, config: SimConfig, seed: int
) -> Dict[str, Callable[[], object]]:
    """Name -> zero-arg factory for every actor the config asks for."""
    factories: Dict[str, Callable[[], object]] = {}

    def add(kind: str, count: int, make: Callable[[str], object]) -> None:
        for i in range(count):
            name = f"{kind}-{i}"
            factories[name] = (lambda n=name: make(n))

    add(
        "updater",
        config.updaters,
        lambda n: actors.updater(env, n, seed, config.update_ops),
    )
    add(
        "scanner",
        config.scanners,
        lambda n: actors.scanner(
            env, n, seed, config.scans, batch=config.scan_batch
        ),
    )
    add(
        "flusher",
        config.flushers,
        lambda n: actors.flusher(env, n, seed, config.flush_ops),
    )
    add(
        "migrator",
        config.migrators,
        lambda n: actors.migrator(env, n, seed, config.migrate_ops),
    )
    add(
        "crasher",
        config.crashers,
        lambda n: actors.crasher(env, n, seed, config.crasher_idle),
    )
    add(
        "txn",
        config.txn_writers,
        lambda n: actors.txn_writer(env, n, seed, config.txns),
    )
    add(
        "server",
        config.servers,
        lambda n: actors.server(env, n, seed, config.serve_requests),
    )
    add(
        "replicator",
        config.replicators,
        lambda n: actors.replicator(env, n, seed, config.replica_ops),
    )
    add(
        "durability",
        config.durability_actors,
        lambda n: actors.durability(env, n, seed, config.durability_ops),
    )
    add(
        "compactor",
        config.compactors,
        lambda n: actors.compactor(env, n, seed, config.compact_ops),
    )
    return factories


@dataclass
class SimRun:
    """A finished simulation with its environment still inspectable."""

    env: SimEnv
    scheduler: SimScheduler
    report: SimReport


def run_simulation(
    config: Optional[SimConfig] = None,
    seed: int = 0,
    schedule: Optional[Schedule] = None,
    max_steps: int = 100_000,
    validate: bool = True,
) -> SimRun:
    """Run one deterministic simulation; raises SimFailure on divergence."""
    config = config or SimConfig.canonical()
    with use_registry(), use_tracer():
        env = SimEnv(config, seed)
        factories = build_actor_factories(env, config, seed)
        sched = SimScheduler(
            {name: factories[name]() for name in sorted(factories)},
            seed=seed,
            schedule=schedule,
        )
        sched.run(max_steps=max_steps)
        if validate and not sched.crashed:
            env.validate_full()
        verdict = "crashed" if sched.crashed else "ok"
        report = SimReport(
            seed=seed,
            verdict=verdict,
            steps=sched.steps,
            schedule=sched.recorded,
            updates_acknowledged=len(env.model.history),
            final_records=(
                0 if sched.crashed else len(env.model.snapshot(2**62))
            ),
        )
        return SimRun(env=env, scheduler=sched, report=report)
