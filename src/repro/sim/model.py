"""The reference model oracle: a plain dict table with timestamped updates.

The engine's central correctness claim (Sections 5-6 of the paper) is that a
scan with query timestamp ``q`` sees *exactly* the base data plus every
update committed at or before ``q`` — regardless of where those updates
physically live (in-memory buffer, materialized runs, migrated pages) and
regardless of what flushes, merges, migrations or crashes happened around
the scan.  :class:`ModelTable` states that claim executably: a dict of base
records plus an acknowledged-update history, with :func:`snapshot` applying
updates in timestamp order through the engine's own
:func:`~repro.core.update.apply_update` primitive (so INSERT/DELETE/MODIFY
semantics cannot drift between model and engine).

The model records an update only once the issuing engine call *returned*
(acknowledged).  An update in flight when a simulated crash unwound the
stack is *in-doubt*: depending on where the crash hit, recovery may or may
not legitimately restore it, so post-crash validation accepts either state
(see :meth:`snapshot`'s ``extra`` parameter).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.update import UpdateRecord, apply_update
from repro.engine.record import Schema


class ModelTable:
    """Timestamp-ordered reference state for one simulated table."""

    def __init__(self, schema: Schema, base_rows: Iterable[tuple]) -> None:
        self.schema = schema
        self.base: dict[int, tuple] = {
            schema.key(r): tuple(r) for r in base_rows
        }
        #: Acknowledged updates, appended in commit order.  Single-threaded
        #: simulation acknowledges in timestamp order, which ``record``
        #: asserts — snapshot() depends on it.
        self.history: list[UpdateRecord] = []

    def record(self, update: UpdateRecord) -> None:
        """Acknowledge ``update`` (the engine call for it returned)."""
        if self.history and update.timestamp < self.history[-1].timestamp:
            raise ValueError(
                f"model updates must arrive in timestamp order: "
                f"{update.timestamp} after {self.history[-1].timestamp}"
            )
        self.history.append(update)

    @property
    def last_timestamp(self) -> int:
        return self.history[-1].timestamp if self.history else 0

    # ------------------------------------------------------------- snapshots
    def snapshot(
        self, query_ts: int, extra: Optional[UpdateRecord] = None
    ) -> dict[int, tuple]:
        """State visible at ``query_ts``: key -> record.

        ``extra`` speculatively includes one more (in-doubt) update at its
        own timestamp — used after a crash to ask "what if the in-flight
        update did survive?".
        """
        state = dict(self.base)
        updates = self.history
        if extra is not None:
            updates = sorted(
                [*self.history, extra], key=lambda u: u.timestamp
            )
        for update in updates:
            if update.timestamp > query_ts:
                break
            produced = apply_update(state.get(update.key), update, self.schema)
            if produced is None:
                state.pop(update.key, None)
            else:
                state[update.key] = produced
        return state

    def snapshot_records(
        self,
        query_ts: int,
        begin_key: int = 0,
        end_key: int = 2**63 - 1,
        extra: Optional[UpdateRecord] = None,
    ) -> list[tuple]:
        """The records a scan of [begin, end] at ``query_ts`` must yield,
        in key order — directly comparable to engine scan output."""
        state = self.snapshot(query_ts, extra=extra)
        return [
            state[key]
            for key in sorted(state)
            if begin_key <= key <= end_key
        ]

    def live_keys(self, query_ts: int) -> list[int]:
        """Sorted keys present at ``query_ts`` (for actor key choices)."""
        return sorted(self.snapshot(query_ts))


def diff_states(
    want: dict[int, tuple], got: dict[int, tuple], limit: int = 5
) -> str:
    """A compact human-readable difference between two table states."""
    missing = [k for k in sorted(want) if k not in got]
    unexpected = [k for k in sorted(got) if k not in want]
    wrong = [
        k for k in sorted(want) if k in got and want[k] != got[k]
    ]
    parts = []
    if missing:
        parts.append(f"missing keys {missing[:limit]} ({len(missing)} total)")
    if unexpected:
        parts.append(
            f"unexpected keys {unexpected[:limit]} ({len(unexpected)} total)"
        )
    for k in wrong[:limit]:
        parts.append(f"key {k}: want {want[k]!r}, got {got[k]!r}")
    if len(wrong) > limit:
        parts.append(f"... {len(wrong) - limit} more wrong values")
    return "; ".join(parts) if parts else "states identical"
