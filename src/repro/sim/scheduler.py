"""Seeded cooperative scheduler stepping actor coroutines deterministically.

Actors are generator functions: each ``yield`` marks an operation boundary
where the scheduler may switch to a different actor.  The scheduler picks
the next actor with ``rng.choice(sorted(runnable))`` — a pure function of
the seed — and records every choice, so the resulting :class:`Schedule` is
a complete, replayable account of the run.  While an actor executes a step,
the scheduler is installed as the active interleave observer
(:mod:`repro.sim.hooks`), so every ``sim.interleave(site)`` the engine
reaches during that step is attached to the step's trace line.

Replay mode (``schedule=`` given) consumes an explicit choice list instead
of the RNG.  Choices naming actors that have already finished (or never
existed — e.g. after shrinking) are skipped, which is what makes
delta-debugged schedules directly executable.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterable, List, Optional

from repro.storage.faults import SimulatedCrash

Actor = Generator[None, None, None]


@dataclass(frozen=True)
class Step:
    """One scheduler decision and everything that happened during it."""

    index: int
    actor: str
    op: str  # "step" | "end" | "crash" | "fail"
    sites: tuple = ()

    def to_text(self) -> str:
        line = f"{self.index:4d} {self.actor:<12} {self.op}"
        if self.sites:
            line += "  [" + " ".join(self.sites) + "]"
        return line


@dataclass
class Schedule:
    """An ordered list of actor-name choices — the replayable schedule."""

    choices: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        return ",".join(self.choices)

    @classmethod
    def from_text(cls, text: str) -> "Schedule":
        text = text.strip()
        return cls([c for c in text.split(",") if c] if text else [])


class SimFailure(AssertionError):
    """An actor raised (or an oracle check failed) during simulation.

    Carries the schedule trace and replay instructions so the failure is
    reproducible from the message alone.
    """

    def __init__(
        self,
        message: str,
        *,
        seed: int,
        schedule: Schedule,
        steps: List[Step],
        actor: str,
        cause: Optional[BaseException] = None,
    ) -> None:
        self.seed = seed
        self.schedule = schedule
        self.steps = steps
        self.actor = actor
        self.cause_text = (
            "".join(traceback.format_exception(cause)) if cause else ""
        )
        trace = "\n".join(s.to_text() for s in steps[-40:])
        detail = (
            f"{message}\n"
            f"-- actor: {actor}\n"
            f"-- seed: {seed}\n"
            f"-- schedule ({len(schedule.choices)} choices, replayable): "
            f"{schedule.to_text()}\n"
            f"-- last steps:\n{trace}\n"
            f"-- replay: python -m repro.sim --seed {seed} "
            f"--replay '{schedule.to_text()}'"
        )
        if self.cause_text:
            detail += f"\n-- actor traceback:\n{self.cause_text}"
        super().__init__(detail)


class SimScheduler:
    """Steps a fixed set of named actors under a seed or explicit schedule."""

    def __init__(
        self,
        actors: Dict[str, Actor],
        *,
        seed: int = 0,
        schedule: Optional[Schedule] = None,
    ) -> None:
        self.actors = dict(actors)
        self.seed = seed
        self.rng = random.Random(f"sched:{seed}")
        self.replay = schedule
        self._replay_pos = 0
        self.runnable: List[str] = sorted(self.actors)
        self.steps: List[Step] = []
        self.recorded = Schedule()
        self.crashed = False
        #: Sites reached during the step currently executing.
        self._sites: List[str] = []

    # ------------------------------------------------------ hook observer
    def on_interleave(self, site: str) -> None:
        self._sites.append(site)

    # ------------------------------------------------------------- choice
    def _next_choice(self) -> Optional[str]:
        if self.replay is not None:
            while self._replay_pos < len(self.replay.choices):
                name = self.replay.choices[self._replay_pos]
                self._replay_pos += 1
                if name in self.runnable:
                    return name
                # Skip finished/unknown actors: shrunk schedules stay valid.
            return None
        if not self.runnable:
            return None
        return self.rng.choice(self.runnable)

    # --------------------------------------------------------------- step
    def step(self) -> Optional[Step]:
        """Advance one actor by one operation; None when nothing runnable."""
        name = self._next_choice()
        if name is None:
            return None
        self.recorded.choices.append(name)
        actor = self.actors[name]
        self._sites = []
        from repro.sim import hooks

        hooks.activate(self)
        try:
            next(actor)
            op = "step"
        except StopIteration:
            op = "end"
            self.runnable.remove(name)
        except SimulatedCrash:
            op = "crash"
            self.crashed = True
        except BaseException as exc:  # noqa: BLE001 - rewrapped with trace
            step = Step(len(self.steps), name, "fail", tuple(self._sites))
            self.steps.append(step)
            raise SimFailure(
                f"actor {name!r} raised {type(exc).__name__}: {exc}",
                seed=self.seed,
                schedule=self.recorded,
                steps=self.steps,
                actor=name,
                cause=exc,
            ) from exc
        finally:
            hooks.deactivate(self)
        step = Step(len(self.steps), name, op, tuple(self._sites))
        self.steps.append(step)
        if op == "crash":
            # A simulated crash tears down the whole process: every actor
            # is dead, not just the one that tripped the crash point.
            self.runnable = []
        return step

    def run(self, max_steps: int = 100_000) -> List[Step]:
        """Run until every actor finishes (or a crash / step budget)."""
        while len(self.steps) < max_steps:
            if self.step() is None:
                break
        else:
            raise SimFailure(
                f"simulation did not quiesce within {max_steps} steps",
                seed=self.seed,
                schedule=self.recorded,
                steps=self.steps,
                actor="<scheduler>",
            )
        return self.steps

    def trace_text(self) -> str:
        return "\n".join(s.to_text() for s in self.steps)


def run_actors(
    factories: Dict[str, Callable[[], Actor]],
    *,
    seed: int = 0,
    schedule: Optional[Schedule] = None,
    max_steps: int = 100_000,
) -> SimScheduler:
    """Build actors from factories and run them to completion."""
    sched = SimScheduler(
        {name: factories[name]() for name in sorted(factories)},
        seed=seed,
        schedule=schedule,
    )
    sched.run(max_steps=max_steps)
    return sched


def interleavings_of(names: Iterable[str]) -> List[str]:
    """Sorted unique actor names — convenience for reports."""
    return sorted(set(names))
