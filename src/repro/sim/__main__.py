"""CLI entry point: ``python -m repro.sim --seed N``.

Runs one deterministic simulation (or the crash-schedule explorer) and
prints a byte-stable report: same seed, same output, every time — CI runs
it twice and diffs.  ``--replay`` executes an explicit schedule (as printed
in a failure message) instead of the seeded scheduler.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.sim.explorer import DEFAULT_CRASH_SITES, explore_crash_schedules
from repro.sim.harness import SimConfig, run_simulation
from repro.sim.scheduler import Schedule, SimFailure
from repro.sim.shrink import shrink_schedule

SCENARIOS = {
    "canonical": SimConfig.canonical,
    "crasher": lambda: SimConfig.canonical().with_crasher(),
    "txn": lambda: replace(SimConfig.canonical(), txn_writers=1),
    "heavy": lambda: replace(
        SimConfig.canonical(), updaters=2, scanners=2, update_ops=60
    ),
    # Columnar-kernel stress: enough updates to materialize multi-block
    # runs, a tiny partition size so every scan's merge splits into several
    # kernel partitions, and extra scanners so partition boundaries meet
    # concurrent flush/migration steps.
    "kernels": lambda: replace(
        SimConfig.canonical(),
        scanners=2,
        update_ops=80,
        flush_ops=6,
        kernel_partition_blocks=1,
    ),
    # Serving-path stress: a quota-gated front door serving tenant range
    # queries (one snapshot timestamp each, model-checked per request)
    # interleaved with updates, flushes, migrations and a crash+recover.
    "serving": lambda: replace(
        SimConfig.canonical(),
        servers=1,
        serve_requests=10,
        update_ops=50,
        crashers=1,
    ),
    # Replication chaos: a 3-way replica set beside the main engine,
    # driven through updates, replica kills (often the primary, forcing
    # failover), recover + catch-up rejoins, and reads on random ONLINE
    # replicas — every read model-checked, final state byte-identical
    # across all replicas.
    "replication": lambda: replace(
        SimConfig.canonical(),
        replicators=1,
        replica_ops=30,
    ),
    # Cost-based compaction stress: the engine runs in "cost" mode with a
    # tiny run-count trigger, a dedicated actor paces WAL-fenced merge
    # slices between updates/scans/flushes, and a crasher tears the whole
    # process down mid-plan — recovery must resume the half-merged state
    # and every scan stays model-checked throughout.
    "compaction": lambda: replace(
        SimConfig.canonical(),
        compaction="cost",
        compactors=1,
        compact_ops=10,
        update_ops=60,
        flush_ops=6,
        crashers=1,
    ),
    # Durability churn: a 3-way replica set driven through checkpointed
    # WAL truncation, total replica wipes revived by snapshot bootstrap,
    # rejoins that must cross the truncation fence, and silent bit-flips
    # chased by anti-entropy peer repair — every read model-checked.
    "durability": lambda: replace(
        SimConfig.canonical(),
        durability_actors=1,
        durability_ops=30,
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Deterministic MaSM simulation: schedule = f(seed, config).",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default="canonical"
    )
    parser.add_argument(
        "--replay",
        metavar="SCHEDULE",
        help="comma-separated actor choices from a failure report",
    )
    parser.add_argument(
        "--explore-crashes",
        action="store_true",
        help=f"sweep crash sites {DEFAULT_CRASH_SITES} over every prefix",
    )
    parser.add_argument(
        "--stride",
        type=int,
        default=1,
        help="sample every Nth schedule prefix when exploring (default 1)",
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="on failure, delta-debug the schedule to a minimal reproducer",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the report as JSON"
    )
    args = parser.parse_args(argv)
    config = SCENARIOS[args.scenario]()

    if args.explore_crashes:
        report = explore_crash_schedules(
            config, seed=args.seed, prefix_stride=args.stride
        )
        print(report.summary())
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(report.to_json() + "\n")
        return 1 if report.failures else 0

    schedule = Schedule.from_text(args.replay) if args.replay else None
    try:
        run = run_simulation(config, seed=args.seed, schedule=schedule)
    except SimFailure as failure:
        sys.stdout.write(str(failure) + "\n")
        if args.shrink:
            def fails(candidate: Schedule) -> bool:
                try:
                    run_simulation(config, seed=args.seed, schedule=candidate)
                except SimFailure:
                    return True
                return False

            minimal = shrink_schedule(failure.schedule, fails)
            sys.stdout.write(
                f"shrunk to {len(minimal.choices)} choices: "
                f"{minimal.to_text()}\n"
            )
        return 1
    sys.stdout.write(run.report.to_text())
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(
                {
                    "seed": run.report.seed,
                    "verdict": run.report.verdict,
                    "updates_acknowledged": run.report.updates_acknowledged,
                    "final_records": run.report.final_records,
                    "schedule": run.report.schedule.to_text(),
                },
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
