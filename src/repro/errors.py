"""Exception hierarchy for the repro library.

Every error the library raises deliberately derives from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """A simulated storage device or file rejected an operation."""


class OutOfSpaceError(StorageError):
    """An allocation exceeded the capacity of a device or file."""


class DeviceBoundsError(StorageError):
    """An access referenced a byte range outside a device's capacity."""


class DuplicateFileError(StorageError):
    """A file creation reused a name that already exists on the volume."""


class TransientIOError(StorageError):
    """A simulated, retryable I/O failure (injected by a fault plan).

    The retry policy in :mod:`repro.storage.iosched` treats this — and only
    this — error class as retryable; persistent damage surfaces as
    :class:`ChecksumError` and is never retried.
    """


class ChecksumError(StorageError):
    """Stored data failed checksum verification (media corruption)."""


class SimulatedCrash(ReproError):
    """A fault plan's crash point fired (process death / power loss).

    Deliberately *not* a :class:`StorageError`: nothing in the library
    catches it, so it unwinds like a real crash would.  Tests catch it at
    the workload boundary and then exercise recovery.
    """


class PageError(ReproError):
    """A slotted page operation failed (overflow, bad slot, corruption)."""


class SchemaError(ReproError):
    """A record did not conform to its table schema."""


class KeyNotFoundError(ReproError):
    """A lookup referenced a primary key that does not exist."""


class DuplicateKeyError(ReproError):
    """An insert used a primary key that already exists."""


class UpdateCacheFullError(ReproError):
    """The SSD update cache is full and migration has not freed space."""


class BackpressureError(ReproError):
    """Admission control rejected an update under the SHED overload policy.

    Raised *before* the update is logged or buffered, so a shed update is
    never partially applied; every shed is counted on the governor's
    ``shed`` counter.  Callers may retry later or route to a fallback.
    """


class QuotaExceededError(BackpressureError):
    """A tenant exhausted its admission quota at the serving front door.

    Raised before the request touches any shard, so a rejected query does
    no work and holds no snapshot.  The error is *retryable*: it carries the
    simulated time until the tenant's token bucket accrues a token, so a
    well-behaved client backs off for ``retry_after`` seconds and retries.
    """

    retryable = True

    def __init__(self, message: str, *, tenant: str, retry_after: float) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after = retry_after


class DeadlineExceededError(ReproError):
    """A request's end-to-end deadline budget expired mid-execution.

    Raised only under the STRICT partial-result policy; DEGRADED tenants
    instead receive a partial :class:`~repro.server.router.QueryResult`
    carrying the uncovered key ranges.  Carries how far over budget the
    request was when the overrun was detected, for operator visibility.
    """

    retryable = True

    def __init__(self, message: str, *, budget: float, elapsed: float) -> None:
        super().__init__(message)
        self.budget = budget
        self.elapsed = elapsed


class ReplicationError(ReproError):
    """A replica-set operation failed (ship, promote, or catch-up)."""


class NoHealthyReplicaError(ReplicationError):
    """Every replica of a shard was crashed or circuit-broken.

    Raised when a scan (or write) cannot find any replica to serve it —
    the shard is fully unavailable until a replica recovers.  *Retryable*:
    the failure holds no snapshot and did no partial work, and the shard
    comes back the moment any replica finishes recovery or a snapshot
    bootstrap, so a well-behaved client backs off and retries.
    """

    retryable = True


class BootstrapRequiredError(ReplicationError):
    """A crashed replica's durable state cannot be caught up incrementally.

    Raised when the rejoin path discovers a gap that incremental catch-up
    cannot close: the replica's watermark predates the primary's WAL
    truncation fence, its own WAL was wiped, or recovery found damaged runs
    the (truncated) log no longer covers.  The remedy is a full
    snapshot-based bootstrap from a healthy peer.
    """


class ReplicaUnavailableError(StorageError):
    """An operation reached a replica that is crashed or stuck.

    A :class:`StorageError` (unlike :class:`SimulatedCrash`) because the
    *caller* survives: the router treats it as a typed failure, records it
    on the replica's circuit breaker, and fails over to a healthy peer.
    """


class TransactionError(ReproError):
    """A transaction violated the concurrency-control protocol."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (conflict, deadlock, or explicit abort)."""


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""


class RecoveryError(ReproError):
    """Crash recovery encountered an inconsistent or truncated log."""


class BenchmarkError(ReproError):
    """An experiment driver was configured inconsistently."""
