"""Shim for legacy editable installs (no-network environments lack the
``wheel`` package that PEP 517 editable builds require). All metadata lives
in pyproject.toml."""

from setuptools import setup

setup()
