"""Availability benchmark: replication keeps serving through chaos.

Drives the ``availability-under-chaos`` experiment (a 3-way replicated
warehouse serving through a primary kill, failover, rejoin and a
brownout) and distills the robustness acceptance surface:

* **no wrong answers** — every hedged or failed-over response was
  byte-compared against the fault-free model oracle at its pinned
  snapshot timestamp; a single mismatch fails the run.
* **success-rate floor** — chaos may slow requests, not lose them: the
  overall success rate must stay >= ``SUCCESS_RATE_FLOOR``.
* **bounded failover window** — p99 latency while the killed primary is
  being routed around must stay within ``FAILOVER_P99_BOUND`` (2x) of
  the fault-free baseline p99 from the same run.
* **non-vacuous chaos** — the run must actually record read failovers
  and hedge wins; a pass where the faults never engaged proves nothing.
* **determinism** — the driver runs TWICE; the exported metrics reports
  must be byte-identical (virtual time, seeded chaos).

Writes ``benchmarks/results/BENCH_availability.json`` so the availability
surface is tracked across PRs (``check_regression.py`` gates on it).

Run standalone:  PYTHONPATH=src python benchmarks/bench_availability.py
Smoke (CI):      ... bench_availability.py --smoke
Under pytest:    pytest benchmarks/bench_availability.py -s
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.bench.figures import ALL_DRIVERS
from repro.bench.harness import FigureResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = "BENCH_availability.json"
SMOKE_RESULT_FILE = "BENCH_availability.smoke.json"

#: Chaos may add latency, never lose requests: the acceptance floor.
SUCCESS_RATE_FLOOR = 0.999
#: Failover-window p99 over same-run fault-free baseline p99.
FAILOVER_P99_BOUND = 2.0

SMOKE_KWARGS = dict(scale=0.4)


def run_availability_bench(scale: float = 1.0) -> FigureResult:
    """Run the chaos driver twice; distill the acceptance surface."""
    driver = ALL_DRIVERS["availability-under-chaos"]
    first = driver(scale=scale)
    second = driver(scale=scale)
    deterministic = json.dumps(first.metrics, sort_keys=True) == json.dumps(
        second.metrics, sort_keys=True
    )

    result = FigureResult(
        figure="BENCH availability",
        title="replicated serving under chaos: kill, failover, rejoin, brownout",
        row_label="row",
        columns=[
            "requests",
            "ok",
            "failed",
            "wrong",
            "p50_ms",
            "p99_ms",
            "success_rate",
            "p99_vs_baseline",
            "failovers",
            "hedges",
            "hedge_wins",
        ],
    )
    for phase in ("baseline", "failover-window", "brownout-window", "recovered"):
        result.add_row(
            phase,
            requests=first.cell(phase, "requests"),
            ok=first.cell(phase, "ok"),
            failed=first.cell(phase, "failed"),
            wrong=first.cell(phase, "wrong"),
            p50_ms=first.cell(phase, "p50 (ms)"),
            p99_ms=first.cell(phase, "p99 (ms)"),
            success_rate=first.cell(phase, "success_rate"),
            p99_vs_baseline=first.cell(phase, "p99_vs_baseline"),
        )
    result.add_row(
        "all",
        requests=first.cell("all", "requests"),
        ok=first.cell("all", "ok"),
        failed=first.cell("all", "failed"),
        wrong=first.cell("all", "wrong"),
        success_rate=first.cell("all", "success_rate"),
        failovers=first.cell("all", "failovers"),
        hedges=first.cell("all", "hedges"),
        hedge_wins=first.cell("all", "hedge_wins"),
    )
    for note in first.notes:
        result.note(note)
    result.note(f"double run byte-identical: {deterministic}")
    result.metrics = first.metrics
    result._deterministic = deterministic  # type: ignore[attr-defined]
    return result


def write_results(result: FigureResult, file_name: str = RESULT_FILE) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / file_name
    path.write_text(result.to_json(unit="milliseconds (latency), counts"))
    result.write_metrics(path.with_name(path.stem + ".metrics.json"))
    return path


def check_gates(result: FigureResult, full: bool) -> list[str]:
    """The availability acceptance gates; returns failures (empty = ok)."""
    del full  # every gate applies at smoke size too
    failures: list[str] = []
    if not getattr(result, "_deterministic", False):
        failures.append(
            "availability metrics differ between two runs at the same "
            "seed: the chaos run is not deterministic"
        )
    wrong = result.cell("all", "wrong")
    if wrong > 0:
        failures.append(
            f"{wrong:.0f} responses diverged from the fault-free oracle: "
            "failover/hedging changed an answer"
        )
    rate = result.cell("all", "success_rate")
    if rate < SUCCESS_RATE_FLOOR:
        failures.append(
            f"success rate {rate:.4f} under chaos is below the "
            f"{SUCCESS_RATE_FLOOR} floor"
        )
    ratio = result.cell("failover-window", "p99_vs_baseline")
    if ratio > FAILOVER_P99_BOUND:
        failures.append(
            f"failover-window p99 is {ratio:.2f}x the fault-free baseline "
            f"(bound {FAILOVER_P99_BOUND:g}x)"
        )
    if result.cell("all", "failovers") <= 0:
        failures.append(
            "no read failovers recorded: the primary kill never engaged, "
            "so the availability result is vacuous"
        )
    if result.cell("all", "hedge_wins") <= 0:
        failures.append(
            "no hedge wins recorded: the brownout never triggered hedged "
            "reads, so the hedging result is vacuous"
        )
    return failures


def test_availability_bench():
    """Pytest entry: smoke-sized chaos run must pass every gate."""
    result = run_availability_bench(**SMOKE_KWARGS)
    print()
    print(result.format())
    failures = check_gates(result, full=False)
    assert not failures, "; ".join(failures)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    started = time.perf_counter()
    result = run_availability_bench(**(SMOKE_KWARGS if smoke else {}))
    elapsed = time.perf_counter() - started
    print(result.format())
    print(f"[finished in {elapsed:.1f}s wall time]")
    path = write_results(result, SMOKE_RESULT_FILE if smoke else RESULT_FILE)
    print(f"wrote {path}")
    failures = check_gates(result, full=not smoke)
    if failures:
        print("\nFAILED availability gates:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        "OK: zero wrong answers, success rate holds, failover window "
        "bounded, chaos engaged, deterministic"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
