"""Durability benchmark: checkpoints, bootstrap and repair keep serving.

Drives the ``durability-under-churn`` experiment (a 3-way replicated
warehouse serving through checkpointed WAL truncation, a replica wipe +
snapshot bootstrap, and a silent bit-flip chased by read-repair) and
distills the durability acceptance surface:

* **no wrong answers** — every response was byte-compared against the
  fault-free model oracle at its pinned snapshot timestamp; truncation,
  bootstrap and repair may move bytes, never change an answer.
* **bounded WAL** — the peak live WAL across primaries must stay under
  ``WAL_BOUND_RATIO`` of the bytes ever appended: checkpointing makes the
  log flat where an untruncated log is linear.
* **non-vacuous churn** — the run must actually record checkpoints, a
  snapshot bootstrap, and at least one completed repair (scheduled via
  the router's read-repair queue); a pass where the machinery never
  engaged proves nothing.
* **nothing left broken** — the final fleet-wide anti-entropy pass must
  find zero unrepaired runs, and the success-rate floor holds.
* **determinism** — the driver runs TWICE; the exported metrics reports
  must be byte-identical (virtual time, seeded churn).

Writes ``benchmarks/results/BENCH_durability.json`` so the durability
surface is tracked across PRs (``check_regression.py`` gates on it).

Run standalone:  PYTHONPATH=src python benchmarks/bench_durability.py
Smoke (CI):      ... bench_durability.py --smoke
Under pytest:    pytest benchmarks/bench_durability.py -s
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.bench.figures import ALL_DRIVERS
from repro.bench.harness import FigureResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = "BENCH_durability.json"
SMOKE_RESULT_FILE = "BENCH_durability.smoke.json"

#: Churn may slow requests, not lose them.
SUCCESS_RATE_FLOOR = 0.999
#: Peak live WAL over cumulative appended bytes: flat, not linear.
WAL_BOUND_RATIO = 0.35

SMOKE_KWARGS = dict(scale=0.4)

PHASES = (
    "baseline",
    "wiped-window",
    "bootstrapped",
    "corruption-window",
    "recovered",
)


def run_durability_bench(scale: float = 1.0) -> FigureResult:
    """Run the churn driver twice; distill the acceptance surface."""
    driver = ALL_DRIVERS["durability-under-churn"]
    first = driver(scale=scale)
    second = driver(scale=scale)
    deterministic = json.dumps(first.metrics, sort_keys=True) == json.dumps(
        second.metrics, sort_keys=True
    )

    result = FigureResult(
        figure="BENCH durability",
        title=(
            "replicated serving under churn: checkpointed truncation, "
            "wipe + bootstrap, bit-flip read-repair"
        ),
        row_label="row",
        columns=[
            "requests",
            "ok",
            "failed",
            "wrong",
            "p50_ms",
            "p99_ms",
            "success_rate",
            "max_wal_kb",
            "appended_kb",
            "wal_bound_ratio",
            "checkpoints",
            "bootstraps",
            "repairs",
            "repairs_scheduled",
            "unrepaired",
        ],
    )
    for phase in PHASES:
        result.add_row(
            phase,
            requests=first.cell(phase, "requests"),
            ok=first.cell(phase, "ok"),
            failed=first.cell(phase, "failed"),
            wrong=first.cell(phase, "wrong"),
            p50_ms=first.cell(phase, "p50 (ms)"),
            p99_ms=first.cell(phase, "p99 (ms)"),
            success_rate=first.cell(phase, "success_rate"),
        )
    result.add_row(
        "all",
        requests=first.cell("all", "requests"),
        ok=first.cell("all", "ok"),
        failed=first.cell("all", "failed"),
        wrong=first.cell("all", "wrong"),
        success_rate=first.cell("all", "success_rate"),
        max_wal_kb=first.cell("all", "max_wal_kb"),
        appended_kb=first.cell("all", "appended_kb"),
        wal_bound_ratio=first.cell("all", "wal_bound_ratio"),
        checkpoints=first.cell("all", "checkpoints"),
        bootstraps=first.cell("all", "bootstraps"),
        repairs=first.cell("all", "repairs"),
        repairs_scheduled=first.cell("all", "repairs_scheduled"),
        unrepaired=first.cell("all", "unrepaired"),
    )
    for note in first.notes:
        result.note(note)
    result.note(f"double run byte-identical: {deterministic}")
    result.metrics = first.metrics
    result._deterministic = deterministic  # type: ignore[attr-defined]
    return result


def write_results(result: FigureResult, file_name: str = RESULT_FILE) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / file_name
    path.write_text(result.to_json(unit="milliseconds (latency), counts, KB"))
    result.write_metrics(path.with_name(path.stem + ".metrics.json"))
    return path


def check_gates(result: FigureResult, full: bool) -> list[str]:
    """The durability acceptance gates; returns failures (empty = ok)."""
    del full  # every gate applies at smoke size too
    failures: list[str] = []
    if not getattr(result, "_deterministic", False):
        failures.append(
            "durability metrics differ between two runs at the same "
            "seed: the churn run is not deterministic"
        )
    wrong = result.cell("all", "wrong")
    if wrong > 0:
        failures.append(
            f"{wrong:.0f} responses diverged from the fault-free oracle: "
            "checkpoint/bootstrap/repair changed an answer"
        )
    rate = result.cell("all", "success_rate")
    if rate < SUCCESS_RATE_FLOOR:
        failures.append(
            f"success rate {rate:.4f} under churn is below the "
            f"{SUCCESS_RATE_FLOOR} floor"
        )
    ratio = result.cell("all", "wal_bound_ratio")
    if ratio > WAL_BOUND_RATIO:
        failures.append(
            f"peak live WAL is {ratio:.0%} of bytes ever appended "
            f"(bound {WAL_BOUND_RATIO:.0%}): checkpointing is not "
            "keeping the log flat"
        )
    if result.cell("all", "checkpoints") <= 0:
        failures.append("no checkpoints recorded: truncation never engaged")
    if result.cell("all", "bootstraps") <= 0:
        failures.append(
            "no snapshot bootstrap recorded: the wiped replica was never "
            "rebuilt, so the bootstrap result is vacuous"
        )
    if result.cell("all", "repairs") <= 0:
        failures.append(
            "no repairs recorded: the injected bit-flip was never "
            "repaired, so the anti-entropy result is vacuous"
        )
    if result.cell("all", "unrepaired") > 0:
        failures.append(
            f"{result.cell('all', 'unrepaired'):.0f} runs still "
            "quarantined after the final anti-entropy pass"
        )
    return failures


def test_durability_bench():
    """Pytest entry: smoke-sized churn run must pass every gate."""
    result = run_durability_bench(**SMOKE_KWARGS)
    print()
    print(result.format())
    failures = check_gates(result, full=False)
    assert not failures, "; ".join(failures)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    started = time.perf_counter()
    result = run_durability_bench(**(SMOKE_KWARGS if smoke else {}))
    elapsed = time.perf_counter() - started
    print(result.format())
    print(f"[finished in {elapsed:.1f}s wall time]")
    path = write_results(result, SMOKE_RESULT_FILE if smoke else RESULT_FILE)
    print(f"wrote {path}")
    failures = check_gates(result, full=not smoke)
    if failures:
        print("\nFAILED durability gates:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        "OK: zero wrong answers, WAL stays flat, bootstrap and repair "
        "both engaged, nothing left broken, deterministic"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
