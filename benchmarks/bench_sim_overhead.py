"""Microbenchmark: what the simulation interleave hooks cost when inactive.

``repro.sim.hooks.interleave`` is called on every engine operation (apply,
flush, scan begin/end, migration slice) so the deterministic simulator can
observe interleavings.  Outside a simulation the hook is one module-global
load plus an is-None test — but it sits on the ungoverned apply/scan hot
path, so that "nothing" must be measured and gated.

Two measurements:

* an A/B throughput comparison of the ungoverned hot path (randomized
  applies + full range scans) with the shipped hooks versus every consumer
  module rebound to a bare no-op — the end-to-end overhead;
* the per-call cost of ``interleave`` itself versus one ``masm.apply``,
  the analytic bound on what the hook can possibly cost per operation.

The acceptance bar: the shipped path must stay within 5% of the no-op
path (apply rate, best-of-N to shed scheduler noise).

Writes ``benchmarks/results/BENCH_sim_overhead.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_sim_overhead.py
Smoke (CI):      ... bench_sim_overhead.py --smoke
Under pytest:    pytest benchmarks/bench_sim_overhead.py -s
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import time

from repro import obs
from repro.bench.harness import FigureResult
from repro.core.masm import MaSM, MaSMConfig
from repro.engine.record import synthetic_schema
from repro.engine.table import Table
from repro.sim.hooks import interleave
from repro.storage.disk import SimulatedDisk
from repro.storage.file import StorageVolume
from repro.storage.ssd import SimulatedSSD
from repro.util.units import KB, MB

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = "BENCH_sim_overhead.json"

#: The acceptance bar from the issue: inactive interleave hooks must cost
#: no more than this fraction of the hook-free hot-path rate.
OVERHEAD_TOLERANCE = 0.05

#: Every module that binds ``interleave`` at import time; the no-op mode
#: rebinds these, not the hooks module, because ``from ... import`` copies.
_CONSUMERS = (
    "repro.core.masm",
    "repro.core.migration",
    "repro.core.governor",
    "repro.txn.snapshot",
)


def _noop(site):
    return None


def _rebind(fn):
    import importlib

    previous = {}
    for mod_name in _CONSUMERS:
        mod = importlib.import_module(mod_name)
        previous[mod_name] = mod.sim_interleave
        mod.sim_interleave = fn
    return previous


def _restore(previous):
    import importlib

    for mod_name, fn in previous.items():
        importlib.import_module(mod_name).sim_interleave = fn


def build_engine(rows: int):
    schema = synthetic_schema()
    disk_vol = StorageVolume(SimulatedDisk(capacity=256 * MB))
    ssd_vol = StorageVolume(SimulatedSSD(capacity=32 * MB))
    table = Table.create(disk_vol, "bench", schema, rows)
    table.bulk_load((i * 2, f"rec-{i}") for i in range(rows))
    masm = MaSM(
        table,
        ssd_vol,
        config=MaSMConfig(
            alpha=1.0,
            ssd_page_size=8 * KB,
            block_size=4 * KB,
            auto_migrate=False,
        ),
    )
    return schema, masm


def measure_hot_path(rows: int, applies: int, scans: int) -> tuple[float, float]:
    """(applies/sec, scan records/sec) on a fresh ungoverned engine."""
    schema, masm = build_engine(rows)
    rng = random.Random(1234)
    keys = [rng.randrange(rows) * 2 for _ in range(applies)]
    start = time.perf_counter()
    for i, key in enumerate(keys):
        masm.modify(key, {"payload": f"u{i}"})
    apply_rate = applies / (time.perf_counter() - start)
    start = time.perf_counter()
    produced = 0
    for _ in range(scans):
        produced += sum(1 for _ in masm.range_scan(0, 2**62))
    scan_rate = produced / (time.perf_counter() - start)
    assert produced == scans * rows
    return apply_rate, scan_rate


def measure_hook_call_cost(calls: int = 200_000) -> float:
    """Seconds per inactive ``interleave`` call."""
    start = time.perf_counter()
    for _ in range(calls):
        interleave("bench.site")
    return (time.perf_counter() - start) / calls


def run_overhead_bench(
    rows: int = 4_000, applies: int = 30_000, scans: int = 6
) -> FigureResult:
    with obs.use_registry() as registry, obs.use_tracer() as tracer:
        result = _run_overhead_bench(rows, applies, scans)
    result.metrics = obs.report_dict(registry, tracer, experiment="bench-sim-overhead")
    return result


def _run_overhead_bench(rows: int, applies: int, scans: int) -> FigureResult:
    result = FigureResult(
        figure="BENCH sim overhead",
        title="ungoverned hot path, interleave hooks shipped vs no-op",
        row_label="mode",
        columns=["apply_rate", "scan_rps"],
    )
    # Interleave repetitions of both modes and keep the best of each, so a
    # stray scheduling hiccup cannot land entirely on one side of the ratio.
    best = {"noop": (0.0, 0.0), "shipped": (0.0, 0.0)}
    for _ in range(5):
        for mode in ("noop", "shipped"):
            previous = _rebind(_noop) if mode == "noop" else None
            try:
                rates = measure_hot_path(rows, applies, scans)
            finally:
                if previous is not None:
                    _restore(previous)
            best[mode] = tuple(
                max(b, r) for b, r in zip(best[mode], rates)
            )
    for mode in ("noop", "shipped"):
        apply_rate, scan_rps = best[mode]
        result.add_row(mode, apply_rate=apply_rate, scan_rps=scan_rps)

    per_call = measure_hook_call_cost()
    per_apply = 1.0 / best["shipped"][0]
    overhead = 1.0 - best["shipped"][0] / best["noop"][0]
    result.note(
        f"workload: {rows} rows, {applies} applies, {scans} scans; "
        f"apply-path overhead {overhead * 100:.2f}% "
        f"(tolerance {OVERHEAD_TOLERANCE * 100:.0f}%); "
        f"inactive hook {per_call * 1e9:.0f} ns/call = "
        f"{per_call / per_apply * 100:.2f}% of one apply"
    )
    return result


def write_results(result: FigureResult, file_name: str = RESULT_FILE) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / file_name
    path.write_text(result.to_json(unit="ops/sec"))
    result.write_metrics(path.with_name(path.stem + ".metrics.json"))
    return path


def _overhead(result: FigureResult) -> float:
    noop = result.cell("noop", "apply_rate")
    shipped = result.cell("shipped", "apply_rate")
    return 1.0 - shipped / noop


def test_sim_overhead(benchmark=None):
    """Pytest entry: shipped apply rate within 5% of the no-op rate."""
    if benchmark is not None:
        result = benchmark.pedantic(run_overhead_bench, rounds=1, iterations=1)
    else:
        result = run_overhead_bench()
    print()
    print(result.format(precision=0))
    write_results(result)
    overhead = _overhead(result)
    assert overhead <= OVERHEAD_TOLERANCE, (
        f"inactive interleave hooks cost {overhead * 100:.1f}% on the apply "
        f"path (tolerance {OVERHEAD_TOLERANCE * 100:.0f}%)"
    )


SMOKE_KWARGS = dict(rows=1_000, applies=6_000, scans=3)
SMOKE_RESULT_FILE = "BENCH_sim_overhead.smoke.json"


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    result = run_overhead_bench(**SMOKE_KWARGS) if smoke else run_overhead_bench()
    print(result.format(precision=0))
    path = write_results(result, SMOKE_RESULT_FILE if smoke else RESULT_FILE)
    print(f"\nwrote {path}")
    payload = json.loads(path.read_text())
    rows = {r["label"]: r["values"] for r in payload["rows"]}
    overhead = 1.0 - rows["shipped"]["apply_rate"] / rows["noop"]["apply_rate"]
    # Smoke workloads are small enough that timing noise dominates; allow
    # extra slack there, the committed full run enforces the real bar.
    tolerance = 0.15 if smoke else OVERHEAD_TOLERANCE
    if overhead > tolerance:
        print(f"FAIL: interleave hook overhead {overhead * 100:.1f}% > {tolerance * 100:.0f}%")
        return 1
    print(f"OK: interleave hook overhead {overhead * 100:.1f}% (tolerance {tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
