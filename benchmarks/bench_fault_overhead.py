"""Microbenchmark: what the fault-tolerance machinery costs on the hot path.

The robustness layer adds two things to every block on the warm scan/merge
path: a CRC32C verification per freshly-read block, and a retry-policy
wrapper around every file I/O.  Both must be cheap enough to leave on by
default.  This benchmark measures records/second through
``RunScan -> MergeUpdates`` with the machinery disabled (checksum
verification off, retry policy off) and enabled, on cold and warm caches.

The acceptance bar: the enabled path must stay within 20% of the disabled
path (warm-cache merge rate).  Warm scans never re-verify — the decoded
block cache only holds blocks that already passed — so the steady-state
overhead is dominated by the retry wrapper's lambda indirection.

Writes ``benchmarks/results/BENCH_fault_overhead.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_fault_overhead.py
Smoke (CI):      ... bench_fault_overhead.py --smoke
Under pytest:    pytest benchmarks/bench_fault_overhead.py -s
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro import obs
from repro.bench.harness import FigureResult
from repro.core.blockcache import DecodedBlockCache
from repro.core.operators import MergeUpdates, RunScan
from repro.core.sortedrun import write_run
from repro.core.update import UpdateCodec, UpdateRecord, UpdateType
from repro.engine.record import synthetic_schema
from repro.storage import checksum
from repro.storage.file import StorageVolume
from repro.storage.ssd import SimulatedSSD
from repro.util.units import MB

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = "BENCH_fault_overhead.json"

#: The acceptance bar from the issue: checksums + retries on the hot path
#: must cost no more than this fraction of the unprotected rate.
OVERHEAD_TOLERANCE = 0.20

FULL_KEY_RANGE = (0, 2**60)


def build_runs(num_runs: int, per_run: int):
    schema = synthetic_schema()
    codec = UpdateCodec(schema)
    ssd = StorageVolume(SimulatedSSD(capacity=256 * MB))
    runs = []
    for r in range(num_runs):
        updates = [
            UpdateRecord(
                r * per_run + i + 1,
                (i * num_runs + r) * 2,
                UpdateType.INSERT,
                ((i * num_runs + r) * 2, f"payload-{r}-{i}"),
            )
            for i in range(per_run)
        ]
        runs.append(write_run(ssd, f"overhead-run-{r}", updates, codec))
    return schema, runs, ssd


def measure_merge(schema, runs, cache) -> float:
    start = time.perf_counter()
    stream = MergeUpdates(
        [RunScan(run, *FULL_KEY_RANGE, cache=cache) for run in runs], schema
    )
    produced = sum(1 for _ in stream)
    elapsed = time.perf_counter() - start
    assert produced == sum(run.count for run in runs)
    return produced / elapsed


def measure_pair(schema, runs, volume, protected: bool) -> tuple[float, float]:
    """(cold_rps, warm_rps) with the fault machinery on or off."""
    previous_verify = checksum.set_verification(protected)
    previous_policy = volume.retry_policy
    if not protected:
        volume.retry_policy = None
    try:
        total_blocks = sum(run.num_blocks for run in runs)
        cache = DecodedBlockCache(total_blocks)
        cold = measure_merge(schema, runs, cache)
        warm = measure_merge(schema, runs, cache)
        return cold, warm
    finally:
        checksum.set_verification(previous_verify)
        volume.retry_policy = previous_policy


def run_overhead_bench(num_runs: int = 4, per_run: int = 30_000) -> FigureResult:
    with obs.use_registry() as registry, obs.use_tracer() as tracer:
        result = _run_overhead_bench(num_runs, per_run)
    result.metrics = obs.report_dict(registry, tracer, experiment="bench-fault-overhead")
    return result


def _run_overhead_bench(num_runs: int, per_run: int) -> FigureResult:
    schema, runs, volume = build_runs(num_runs, per_run)
    result = FigureResult(
        figure="BENCH fault overhead",
        title="scan/merge records/sec, fault machinery disabled vs enabled",
        row_label="mode",
        columns=["cold_rps", "warm_rps"],
    )
    # Interleave repetitions of both modes and keep the best of each, so a
    # stray scheduling hiccup cannot land entirely on one side of the ratio.
    best = {"disabled": (0.0, 0.0), "enabled": (0.0, 0.0)}
    for _ in range(3):
        for mode, protected in (("disabled", False), ("enabled", True)):
            cold, warm = measure_pair(schema, runs, volume, protected)
            best[mode] = (max(best[mode][0], cold), max(best[mode][1], warm))
    for mode in ("disabled", "enabled"):
        cold, warm = best[mode]
        result.add_row(mode, cold_rps=cold, warm_rps=warm)

    overhead = 1.0 - best["enabled"][1] / best["disabled"][1]
    result.note(
        f"workload: {num_runs} runs x {per_run} updates; "
        f"warm overhead {overhead * 100:.1f}% (tolerance {OVERHEAD_TOLERANCE * 100:.0f}%)"
    )
    return result


def write_results(result: FigureResult, file_name: str = RESULT_FILE) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / file_name
    path.write_text(result.to_json(unit="records/sec"))
    result.write_metrics(path.with_name(path.stem + ".metrics.json"))
    return path


def _overhead(result: FigureResult) -> float:
    disabled = result.cell("disabled", "warm_rps")
    enabled = result.cell("enabled", "warm_rps")
    return 1.0 - enabled / disabled


def test_fault_overhead(benchmark=None):
    """Pytest entry: enabled warm rate within 20% of the disabled rate."""
    if benchmark is not None:
        result = benchmark.pedantic(run_overhead_bench, rounds=1, iterations=1)
    else:
        result = run_overhead_bench()
    print()
    print(result.format(precision=0))
    write_results(result)
    overhead = _overhead(result)
    assert overhead <= OVERHEAD_TOLERANCE, (
        f"fault machinery costs {overhead * 100:.1f}% on the warm merge path "
        f"(tolerance {OVERHEAD_TOLERANCE * 100:.0f}%)"
    )


SMOKE_KWARGS = dict(num_runs=3, per_run=4_000)
SMOKE_RESULT_FILE = "BENCH_fault_overhead.smoke.json"


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    result = run_overhead_bench(**SMOKE_KWARGS) if smoke else run_overhead_bench()
    print(result.format(precision=0))
    path = write_results(result, SMOKE_RESULT_FILE if smoke else RESULT_FILE)
    print(f"\nwrote {path}")
    payload = json.loads(path.read_text())
    rows = {r["label"]: r["values"] for r in payload["rows"]}
    overhead = 1.0 - rows["enabled"]["warm_rps"] / rows["disabled"]["warm_rps"]
    # Smoke workloads are small enough that timing noise dominates; allow
    # extra slack there, the committed full run enforces the real bar.
    tolerance = 0.35 if smoke else OVERHEAD_TOLERANCE
    if overhead > tolerance:
        print(f"FAIL: fault machinery overhead {overhead * 100:.1f}% > {tolerance * 100:.0f}%")
        return 1
    print(f"OK: fault machinery overhead {overhead * 100:.1f}% (tolerance {tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
