"""Ablation: duplicate merging under zipfian update skew (Section 3.5)."""

from repro.bench.figures import ablations


def test_ablation_skew(figure_bench):
    result = figure_bench(ablations.run_skew, "ablation-skew", scale=0.5)

    keep_bytes = result.cell("keep duplicates", "cache bytes used")
    merge_bytes = result.cell("merge duplicates", "cache bytes used")
    keep_stored = result.cell("keep duplicates", "updates stored")
    merge_stored = result.cell("merge duplicates", "updates stored")
    merged = result.cell("merge duplicates", "duplicates merged")

    # Merging duplicates under skew shrinks both stored records and bytes.
    assert merge_stored < keep_stored
    assert merge_bytes < keep_bytes
    assert merged > 0
